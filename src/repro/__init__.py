"""repro — a reproduction of *Discovering Graph Functional Dependencies*
(Fan, Hu, Liu, Lu — SIGMOD 2018).

The package implements the paper end to end:

* :mod:`repro.graph` — the property-graph substrate (storage, IO,
  statistics, vertex-cut fragmentation);
* :mod:`repro.pattern` — graph patterns with wildcards and pivots,
  canonical forms, subgraph-isomorphism matching, embeddings;
* :mod:`repro.gfd` — GFDs, their semantics, closure/chase, the FPT
  satisfiability and implication analyses (Theorem 1), a textual syntax;
* :mod:`repro.core` — the discovery problem (Section 4) and the sequential
  algorithms ``SeqDis``/``SeqCover`` (Section 5);
* :mod:`repro.parallel` — the parallel-scalable ``ParDis``/``ParCover``
  (Section 6) over a metered cluster simulation;
* :mod:`repro.baselines` — ParAMIE, DisGCFD/ParCGFD, ParArab, and the
  ablations ParGFDn / ParGFDnb / ParCovern (Section 7);
* :mod:`repro.datasets` — the Figure-1 examples, the paper's synthetic
  generator, and DBpedia/YAGO2/IMDB scale models with planted rules;
* :mod:`repro.quality` — violation detection and Exp-5 accuracy metrics;
* :mod:`repro.enforce` — the rule enforcement engine: compiled multi-GFD
  validation with incremental delta maintenance;
* :mod:`repro.session` — the resource-owning :class:`~repro.session.
  Session` facade: one backend and index snapshot shared across the whole
  discover → cover → enforce → refresh pipeline;
* :mod:`repro.obs` — unified telemetry: hierarchical span tracing with
  per-worker lanes, a metrics registry, and Chrome-trace / JSONL /
  Prometheus exports;
* :mod:`repro.serve` — enforcement-as-a-service: the asyncio serving
  layer over MVCC index snapshots with group-commit writes (readers pin
  a consistent version per request, writes batch through the delta log).

Quickstart::

    from repro import Graph, DiscoveryConfig, Session

    graph = ...  # build or load a property graph
    with Session(graph, DiscoveryConfig(k=3, sigma=100)) as session:
        result = session.discover()
        session.cover()
        report = session.enforce()   # serve Σ against the live graph
"""

from .core import (
    CoverResult,
    DiscoveryConfig,
    DiscoveryResult,
    EnforcementConfig,
    FaultConfig,
    MiningStats,
    SequentialDiscovery,
    discover,
    gfd_support,
    pattern_support,
    sequential_cover,
)
from .core.config import CandidateBudgetExceeded
from .enforce import EnforcementEngine, EnforcementReport, RuleSketchMonitor
from .gfd import (
    FALSE,
    GFD,
    ConstantLiteral,
    VariableLiteral,
    Violation,
    find_violations,
    format_gfd,
    graph_satisfies,
    implies,
    is_satisfiable,
    parse_gfd,
    validate_set,
)
from .graph import Graph, GraphBuilder
from .obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    write_chrome_trace,
    write_event_log,
    write_prometheus,
)
from .parallel import (
    ChaseCostModel,
    ParallelDiscovery,
    SimulatedCluster,
    discover_parallel,
    parallel_cover,
)
from .pattern import WILDCARD, Pattern, find_matches, pivot_image
from .serve import EnforcementService, ServeConfig
from .session import Session, SessionMetrics

#: The single source of the package version — ``setup.py`` reads it from
#: this file, and every telemetry/bench artifact stamps it.
__version__ = "1.3.0"

__all__ = [
    "__version__",
    # graph
    "Graph",
    "GraphBuilder",
    # patterns
    "WILDCARD",
    "Pattern",
    "find_matches",
    "pivot_image",
    # GFDs
    "GFD",
    "FALSE",
    "ConstantLiteral",
    "VariableLiteral",
    "Violation",
    "parse_gfd",
    "format_gfd",
    "graph_satisfies",
    "find_violations",
    "validate_set",
    "implies",
    "is_satisfiable",
    # discovery
    "DiscoveryConfig",
    "DiscoveryResult",
    "MiningStats",
    "CoverResult",
    "CandidateBudgetExceeded",
    "FaultConfig",
    "SequentialDiscovery",
    "discover",
    "sequential_cover",
    "pattern_support",
    "gfd_support",
    # parallel
    "ParallelDiscovery",
    "SimulatedCluster",
    "ChaseCostModel",
    "discover_parallel",
    "parallel_cover",
    # enforcement
    "EnforcementConfig",
    "EnforcementEngine",
    "EnforcementReport",
    "RuleSketchMonitor",
    # session facade
    "Session",
    "SessionMetrics",
    # serving
    "EnforcementService",
    "ServeConfig",
    # observability
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "write_chrome_trace",
    "write_event_log",
    "write_prometheus",
]
