"""GCFD mining: CFDs with *path* patterns (the paper's DisGCFD/ParCGFD).

He et al. [24] extend relational conditional functional dependencies to RDF
using path-shaped patterns.  The paper implements "ParCGFD for mining GCFDs,
an extension of relational CFDs with path patterns, which makes a special
case of GFDs" and uses it as the expressiveness baseline of Exp-1d and
Exp-5.

Here GCFD discovery *is* GFD discovery restricted to that special case:

* patterns must be simple directed chains rooted at the pivot (no branching,
  no cycles, no wildcards), and
* only positive GFDs are mined (CFDs have no negative form).

Both restrictions are enforced by filtering vertical spawning, so the
machinery (match tables, lattices, pruning, the metered cluster) is shared
with ``SeqDis``/``ParDis`` — exactly the comparison the paper makes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from ..core.config import DiscoveryConfig
from ..core.discovery import SequentialDiscovery
from ..core.generation_tree import TreeNode
from ..core.results import DiscoveryResult
from ..graph.graph import Graph
from ..parallel.cluster import SimulatedCluster
from ..parallel.pardis import ParallelDiscovery
from ..pattern.incremental import Extension
from ..pattern.pattern import Pattern

__all__ = ["discover_gcfd", "discover_gcfd_parallel", "is_path_pattern"]


def is_path_pattern(pattern: Pattern) -> bool:
    """Whether ``pattern`` is a simple chain starting at the pivot.

    Chain means: undirected degrees form a path (two endpoints of degree 1,
    the rest degree 2), the pivot is an endpoint, and there are no parallel
    or cyclic edges — the path-pattern class of [24].
    """
    if pattern.num_nodes == 1:
        return pattern.num_edges == 0
    if pattern.num_edges != pattern.num_nodes - 1:
        return False
    degrees = [0] * pattern.num_nodes
    for edge in pattern.edges:
        degrees[edge.src] += 1
        degrees[edge.dst] += 1
    endpoints = [v for v in pattern.variables() if degrees[v] == 1]
    if len(endpoints) != 2 or any(d > 2 for d in degrees):
        return False
    return pattern.pivot in endpoints or pattern.num_nodes == 2


def _path_config(config: DiscoveryConfig) -> DiscoveryConfig:
    """The GCFD restriction of a discovery configuration."""
    return replace(
        config,
        mine_negative=False,
        speculative_closing_edges=False,
        enable_wildcards=False,
    )


def _filter_path_extensions(
    node: TreeNode, extensions: List[Extension]
) -> List[Extension]:
    """Keep only extensions growing the chain at its non-pivot end."""
    pattern = node.pattern
    degrees = [0] * pattern.num_nodes
    for edge in pattern.edges:
        degrees[edge.src] += 1
        degrees[edge.dst] += 1
    if pattern.num_nodes == 1:
        tail = {0}
    else:
        tail = {
            v for v in pattern.variables()
            if degrees[v] == 1 and v != pattern.pivot
        }
    return [
        extension
        for extension in extensions
        if extension.new_node_label is not None and extension.src in tail
    ]


class _GCFDSequential(SequentialDiscovery):
    """``DisGCFD``: SeqDis restricted to path patterns."""

    def _generate_extensions(self, parent: TreeNode) -> List[Extension]:
        return _filter_path_extensions(parent, super()._generate_extensions(parent))


class _GCFDParallel(ParallelDiscovery):
    """``ParCGFD``: ParDis restricted to path patterns."""

    def _spawn_extensions(self, parent: TreeNode) -> List[Extension]:
        return _filter_path_extensions(parent, super()._spawn_extensions(parent))


def discover_gcfd(
    graph: Graph,
    config: Optional[DiscoveryConfig] = None,
    stats=None,
    index=None,
) -> DiscoveryResult:
    """Mine GCFDs (path-pattern CFDs) sequentially.

    ``stats``/``index`` accept precomputed graph snapshots (shared with the
    GFD run of the same benchmark) so the graph is scanned once per dataset.
    """
    return _GCFDSequential(
        graph, _path_config(config or DiscoveryConfig()), stats=stats, index=index
    ).run()


def discover_gcfd_parallel(
    graph: Graph,
    config: Optional[DiscoveryConfig] = None,
    num_workers: int = 4,
    stats=None,
    index=None,
) -> Tuple[DiscoveryResult, SimulatedCluster]:
    """Mine GCFDs with the metered cluster (``ParCGFD``)."""
    runner = _GCFDParallel(
        graph,
        _path_config(config or DiscoveryConfig()),
        num_workers,
        stats=stats,
        index=index,
    )
    result = runner.run()
    return result, runner.cluster
