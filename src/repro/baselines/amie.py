"""Mini-AMIE: Horn-rule mining with PCA confidence (the paper's ParAMIE).

The paper compares GFD discovery against AMIE [8, 22], which mines *closed
Horn rules* over a knowledge base's binary relations, e.g.::

    create(x, y) ∧ receive(y, z)  ⇒  award_of(x, z)

with quality measured under the *partial completeness assumption* (PCA):

* ``support(rule)``        — number of distinct ``(x, y)`` groundings of the
  head witnessed together with the body;
* ``head coverage``        — support / size of the head relation;
* ``PCA confidence``       — support / number of body groundings whose ``x``
  has *some* head-relation edge (absent facts about a subject that has no
  facts at all are not counted as counterexamples — the open-world reading).

This reimplementation covers the rule shapes the comparison needs (rules of
≤ 3 atoms over edge labels, closed, no constants — the paper stresses that
AMIE "supports neither pattern matching via subgraph isomorphism nor
constant-value binding, ... cannot express negative rules and rules with
wildcard").  ``ParAMIE`` distributes head relations over the metered cluster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.graph import Graph
from ..graph.index import sort_unique
from ..parallel.cluster import SimulatedCluster

__all__ = ["Atom", "AmieRule", "AmieMiner", "AmieResult", "mine_amie", "mine_amie_parallel"]


@dataclass(frozen=True)
class Atom:
    """A relational atom ``relation(subject_var, object_var)``.

    Variables are small integers; 0 and 1 are the head variables ``x, y``.
    """

    relation: str
    subject: int
    object: int

    def __str__(self) -> str:
        names = "xyzuvw"
        return f"{self.relation}({names[self.subject]},{names[self.object]})"


@dataclass(frozen=True)
class AmieRule:
    """A closed Horn rule ``body ⇒ head`` with its quality measures."""

    head: Atom
    body: Tuple[Atom, ...]
    support: int = 0
    head_coverage: float = 0.0
    pca_confidence: float = 0.0

    def __str__(self) -> str:
        body = " ∧ ".join(str(atom) for atom in self.body)
        return (
            f"{body} ⇒ {self.head}"
            f"  [supp={self.support}, hc={self.head_coverage:.2f},"
            f" pca={self.pca_confidence:.2f}]"
        )


@dataclass
class AmieResult:
    """Outcome of a mining run."""

    rules: List[AmieRule] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def average_support(self) -> float:
        """Mean rule support (Figure 6's per-system statistic)."""
        if not self.rules:
            return 0.0
        return sum(rule.support for rule in self.rules) / len(self.rules)


class _RelationIndex:
    """Forward/backward indexes of one edge relation.

    After construction, :meth:`finalize` freezes the relation into sorted
    numpy join structures: path-body groundings then become ragged
    ``searchsorted`` joins and membership tests become binary searches over
    integer pair keys ``subject·N + object`` — the same flat-layout idiom as
    :class:`~repro.graph.index.GraphIndex`.
    """

    __slots__ = (
        "pairs",
        "by_subject",
        "by_object",
        "subjects",
        "subj_sorted",
        "obj_of_subj",
        "obj_sorted",
        "subj_of_obj",
        "pair_keys",
        "subjects_sorted",
    )

    def __init__(self) -> None:
        self.pairs: Set[Tuple[int, int]] = set()
        self.by_subject: Dict[int, List[int]] = {}
        self.by_object: Dict[int, List[int]] = {}
        self.subjects: Set[int] = set()

    def add(self, subject: int, obj: int) -> None:
        if (subject, obj) in self.pairs:
            return
        self.pairs.add((subject, obj))
        self.by_subject.setdefault(subject, []).append(obj)
        self.by_object.setdefault(obj, []).append(subject)
        self.subjects.add(subject)

    def finalize(self, num_nodes: int) -> None:
        subjects = np.fromiter(
            (s for s, _ in self.pairs), dtype=np.int64, count=len(self.pairs)
        )
        objects = np.fromiter(
            (o for _, o in self.pairs), dtype=np.int64, count=len(self.pairs)
        )
        by_subject = np.argsort(subjects, kind="stable")
        self.subj_sorted = subjects[by_subject]
        self.obj_of_subj = objects[by_subject]
        by_object = np.argsort(objects, kind="stable")
        self.obj_sorted = objects[by_object]
        self.subj_of_obj = subjects[by_object]
        self.pair_keys = np.sort(subjects * num_nodes + objects)
        self.subjects_sorted = np.unique(subjects)


class AmieMiner:
    """Mine closed Horn rules of 2 or 3 atoms from a graph's edge relations.

    Args:
        graph: the knowledge graph (edge labels are the relations).
        min_head_coverage: head-coverage threshold (AMIE default 0.01).
        min_pca_confidence: PCA confidence threshold (the paper uses 0.5,
            and discusses the confidence-1.0 subset).
        min_support: absolute support threshold.
    """

    def __init__(
        self,
        graph: Graph,
        min_head_coverage: float = 0.01,
        min_pca_confidence: float = 0.5,
        min_support: int = 2,
    ) -> None:
        self.graph = graph
        self.min_head_coverage = min_head_coverage
        self.min_pca_confidence = min_pca_confidence
        self.min_support = min_support
        self.num_nodes = graph.num_nodes
        self.relations = self._index_relations(graph)
        # body groundings are head-independent: cache the (rel1, dir1,
        # rel2, dir2) joins so the sweep over head relations reuses them
        self._path_cache: Dict[Tuple[str, bool, str, bool], np.ndarray] = {}

    def _index_relations(self, graph: Graph) -> Dict[str, _RelationIndex]:
        relations: Dict[str, _RelationIndex] = {}
        for src, dst, label in graph.edges():
            relations.setdefault(label, _RelationIndex()).add(src, dst)
        for relation in relations.values():
            relation.finalize(self.num_nodes)
        return relations

    # ------------------------------------------------------------------
    def mine(self) -> AmieResult:
        """Mine rules for every head relation."""
        started = time.perf_counter()
        rules: List[AmieRule] = []
        for head in sorted(self.relations):
            rules.extend(self.mine_head(head))
        rules.sort(key=lambda rule: (-rule.support, str(rule)))
        return AmieResult(rules=rules, elapsed_seconds=time.perf_counter() - started)

    def mine_head(self, head_relation: str) -> List[AmieRule]:
        """Mine all rules predicting ``head_relation``."""
        rules: List[AmieRule] = []
        head = Atom(head_relation, 0, 1)
        for rule in self._two_atom_rules(head):
            rules.append(rule)
        for rule in self._three_atom_rules(head):
            rules.append(rule)
        return rules

    # ------------------------------------------------------------------
    @staticmethod
    def _sorted_membership(sorted_keys: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Boolean membership of ``keys`` in a sorted key array."""
        if sorted_keys.size == 0 or keys.size == 0:
            return np.zeros(keys.size, dtype=bool)
        position = np.searchsorted(sorted_keys, keys)
        position[position == sorted_keys.size] = sorted_keys.size - 1
        return sorted_keys[position] == keys

    def _body_groundings_2(self, atom: Atom) -> np.ndarray:
        """Distinct grounding keys ``x·N + y`` of a single body atom."""
        index = self.relations[atom.relation]
        if (atom.subject, atom.object) == (0, 1):
            return index.pair_keys
        return np.unique(
            index.obj_of_subj * self.num_nodes + index.subj_sorted
        )

    def _two_atom_rules(self, head: Atom):
        head_index = self.relations[head.relation]
        head_size = len(head_index.pairs)
        for relation in sorted(self.relations):
            for subject, obj in ((0, 1), (1, 0)):
                body_atom = Atom(relation, subject, obj)
                if body_atom == head:
                    continue
                groundings = self._body_groundings_2(body_atom)
                rule = self._score(head, (body_atom,), groundings, head_size)
                if rule is not None:
                    yield rule

    def _three_atom_rules(self, head: Atom):
        """Path-shaped bodies ``r1(x~z) ∧ r2(z~y)`` in all four orientations."""
        head_index = self.relations[head.relation]
        head_size = len(head_index.pairs)
        names = sorted(self.relations)
        for rel1 in names:
            for dir1 in (True, False):  # True: r1(x, z); False: r1(z, x)
                for rel2 in names:
                    for dir2 in (True, False):  # True: r2(z, y); False: r2(y, z)
                        atom1 = Atom(rel1, 0, 2) if dir1 else Atom(rel1, 2, 0)
                        atom2 = Atom(rel2, 2, 1) if dir2 else Atom(rel2, 1, 2)
                        body = (atom1, atom2)
                        groundings = self._path_groundings(rel1, dir1, rel2, dir2)
                        rule = self._score(head, body, groundings, head_size)
                        if rule is not None:
                            yield rule

    def _path_groundings(
        self, rel1: str, dir1: bool, rel2: str, dir2: bool
    ) -> np.ndarray:
        """Distinct ``x·N + y`` keys connected through some z by the body.

        A ragged sorted-merge join: atom1's ``(x, z)`` pairs probe atom2's
        join column (sorted by z) with two ``searchsorted`` calls, the
        matching runs expand by ``np.repeat``, and a sort-dedup finishes.
        Cached per orientation — the join does not depend on the head.
        """
        cache_key = (rel1, dir1, rel2, dir2)
        cached = self._path_cache.get(cache_key)
        if cached is not None:
            return cached
        result = self._path_groundings_uncached(rel1, dir1, rel2, dir2)
        self._path_cache[cache_key] = result
        return result

    def _path_groundings_uncached(
        self, rel1: str, dir1: bool, rel2: str, dir2: bool
    ) -> np.ndarray:
        index1, index2 = self.relations[rel1], self.relations[rel2]
        if dir1:  # r1(x, z): x = subject, z = object
            x_arr, z_arr = index1.subj_sorted, index1.obj_of_subj
        else:  # r1(z, x)
            x_arr, z_arr = index1.obj_sorted, index1.subj_of_obj
        if dir2:  # r2(z, y): join on subject, values are objects
            join_col, values = index2.subj_sorted, index2.obj_of_subj
        else:  # r2(y, z): join on object, values are subjects
            join_col, values = index2.obj_sorted, index2.subj_of_obj
        if x_arr.size == 0 or join_col.size == 0:
            return np.empty(0, dtype=np.int64)
        lo = np.searchsorted(join_col, z_arr, side="left")
        hi = np.searchsorted(join_col, z_arr, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        x_rep = np.repeat(x_arr, counts)
        exclusive = np.cumsum(counts) - counts
        position = (
            np.arange(total, dtype=np.int64)
            - np.repeat(exclusive, counts)
            + np.repeat(lo, counts)
        )
        y_flat = values[position]
        keep = x_rep != y_flat
        if not keep.any():
            return np.empty(0, dtype=np.int64)
        return sort_unique(x_rep[keep] * self.num_nodes + y_flat[keep])

    def _score(
        self,
        head: Atom,
        body: Tuple[Atom, ...],
        groundings: np.ndarray,
        head_size: int,
    ) -> Optional[AmieRule]:
        if groundings.size == 0 or head_size == 0:
            return None
        head_index = self.relations[head.relation]
        support = int(
            np.count_nonzero(
                self._sorted_membership(head_index.pair_keys, groundings)
            )
        )
        if support < self.min_support:
            return None
        head_coverage = support / head_size
        if head_coverage < self.min_head_coverage:
            return None
        # PCA denominator: body groundings whose x has *some* head edge
        denominator = int(
            np.count_nonzero(
                self._sorted_membership(
                    head_index.subjects_sorted, groundings // self.num_nodes
                )
            )
        )
        if denominator == 0:
            return None
        pca = support / denominator
        if pca < self.min_pca_confidence:
            return None
        return AmieRule(
            head=head,
            body=body,
            support=support,
            head_coverage=head_coverage,
            pca_confidence=pca,
        )

    # ------------------------------------------------------------------
    def predicted_missing(self, rule: AmieRule) -> Set[Tuple[int, int]]:
        """Body groundings lacking the head fact (AMIE's error predictions).

        Under PCA, only subjects that do have some head-relation fact count:
        these are the pairs AMIE flags as erroneous/missing in Exp-5.
        """
        if len(rule.body) == 1:
            groundings = self._body_groundings_2(rule.body[0])
        else:
            atom1, atom2 = rule.body
            groundings = self._path_groundings(
                atom1.relation,
                atom1.subject == 0,
                atom2.relation,
                atom2.subject == 2,
            )
        head_index = self.relations[rule.head.relation]
        keep = ~self._sorted_membership(head_index.pair_keys, groundings)
        keep &= self._sorted_membership(
            head_index.subjects_sorted, groundings // self.num_nodes
        )
        missing = groundings[keep]
        return {
            (int(key // self.num_nodes), int(key % self.num_nodes))
            for key in missing.tolist()
        }


def mine_amie(
    graph: Graph,
    min_head_coverage: float = 0.01,
    min_pca_confidence: float = 0.5,
    min_support: int = 2,
) -> AmieResult:
    """Sequential AMIE mining over ``graph``."""
    return AmieMiner(
        graph, min_head_coverage, min_pca_confidence, min_support
    ).mine()


def mine_amie_parallel(
    graph: Graph,
    num_workers: int = 4,
    min_head_coverage: float = 0.01,
    min_pca_confidence: float = 0.5,
    min_support: int = 2,
    cluster: Optional[SimulatedCluster] = None,
) -> Tuple[AmieResult, SimulatedCluster]:
    """``ParAMIE``: head relations distributed over the metered cluster."""
    started = time.perf_counter()
    cluster = cluster or SimulatedCluster(num_workers)
    miner = AmieMiner(graph, min_head_coverage, min_pca_confidence, min_support)
    heads = sorted(miner.relations)
    weights = [len(miner.relations[head].pairs) for head in heads]
    from .. import parallel  # local import to avoid a package cycle

    assignment = parallel.assign_units_lpt(weights, cluster.num_workers)
    rules: List[AmieRule] = []
    with cluster.superstep() as step:
        for worker, unit_ids in enumerate(assignment):
            def work(unit_ids: List[int] = unit_ids) -> List[AmieRule]:
                found: List[AmieRule] = []
                for unit_id in unit_ids:
                    found.extend(miner.mine_head(heads[unit_id]))
                return found
            rules.extend(step.run(worker, work))
    cluster.ship_to_master(len(rules))
    rules.sort(key=lambda rule: (-rule.support, str(rule)))
    result = AmieResult(rules=rules, elapsed_seconds=time.perf_counter() - started)
    return result, cluster
