"""Baselines and ablations from the paper's evaluation (Section 7)."""

from .amie import (
    AmieMiner,
    AmieResult,
    AmieRule,
    Atom,
    mine_amie,
    mine_amie_parallel,
)
from .gcfd import discover_gcfd, discover_gcfd_parallel, is_path_pattern
from .pararab import ParArabResult, run_pararab
from .variants import (
    UnprunedRun,
    parallel_cover_ungrouped,
    run_pargfd_n,
    run_pargfd_nb,
)

__all__ = [
    "AmieMiner",
    "AmieResult",
    "AmieRule",
    "Atom",
    "mine_amie",
    "mine_amie_parallel",
    "discover_gcfd",
    "discover_gcfd_parallel",
    "is_path_pattern",
    "ParArabResult",
    "run_pararab",
    "UnprunedRun",
    "run_pargfd_n",
    "run_pargfd_nb",
    "parallel_cover_ungrouped",
]
