"""``ParArab`` — the split-phase baseline (Section 7, "Infeasibility of ...").

The paper's first baseline decouples what ``DisGFD`` integrates:

1. **Phase 1** mines all frequent patterns with a general-purpose pattern
   miner (Arabesque [39] in the paper) — *without* any dependency-awareness:
   no pivoted support pruning of the literal space, no covered-pair
   inheritance, and materializing every frequent pattern's full embedding
   set up front;
2. **Phase 2** extends each mined pattern with literals and validates every
   resulting GFD candidate — with none of Lemma 4's early termination,
   because phase 2 sees patterns only after phase 1 has committed to them.

The candidate space is the full per-pattern literal lattice; on real graphs
the paper reports that the verification step fails outright.  This
reimplementation reproduces the *protocol* and reports how many candidates
it generates; a configurable budget lets benches demonstrate the blow-up
without exhausting memory (the run is marked ``completed=False``, matching
"fails to complete").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Optional, Tuple

from ..core.config import CandidateBudgetExceeded, DiscoveryConfig
from ..core.discovery import SequentialDiscovery
from ..core.generation_tree import GenerationTree, TreeNode
from ..core.match_table import MatchTable
from ..gfd.gfd import GFD, is_trivial
from ..graph.graph import Graph
from ..pattern.incremental import apply_extension, extend_matches

__all__ = ["ParArabResult", "run_pararab"]


@dataclass
class ParArabResult:
    """Outcome of a split-phase run."""

    completed: bool
    gfds: List[GFD] = field(default_factory=list)
    patterns_mined: int = 0
    candidates_generated: int = 0
    elapsed_seconds: float = 0.0


class _PatternOnlyMiner(SequentialDiscovery):
    """Phase 1: frequent-pattern mining with literal processing disabled."""

    def _hspawn(self, node: TreeNode) -> None:  # noqa: D102 - phase 1 skips FD mining
        return


def run_pararab(
    graph: Graph,
    config: Optional[DiscoveryConfig] = None,
    candidate_budget: Optional[int] = 2_000_000,
    stats=None,
    index=None,
) -> ParArabResult:
    """Execute the split-phase protocol; see the module docstring."""
    started = time.perf_counter()
    config = config or DiscoveryConfig()

    # ---- phase 1: pattern mining only --------------------------------
    miner = _PatternOnlyMiner(graph, config, stats=stats, index=index)
    phase1 = miner.run()
    tree = phase1.tree
    assert tree is not None
    frequent = [
        node
        for node in tree.all_nodes()
        if node.support >= config.sigma and node.table is not None
        and not node.table.truncated
    ]

    # ---- phase 2: exhaustive literal extension and validation --------
    candidates = 0
    gfds: List[GFD] = []
    for node in frequent:
        table = node.table
        literals = list(
            table.candidate_constant_literals(
                config.max_constants, config.min_literal_rows
            )
        )
        if config.variable_literals and node.pattern.num_nodes > 1:
            literals.extend(
                table.candidate_variable_literals(
                    config.variable_literals_same_attr_only,
                    config.min_literal_rows,
                )
            )
        all_rows = frozenset(table.all_rows())
        for rhs in literals:
            others = [l for l in literals if l != rhs]
            # the full lattice: every LHS subset up to the size cap, with no
            # early termination on validity — the integrated algorithm's
            # Lemma 4(b)/(c) prunes are exactly what is missing here.
            subsets = [()]
            for size in range(1, config.max_lhs_size + 1):
                subsets.extend(combinations(others, size))
            for subset in subsets:
                candidates += 1
                if candidate_budget is not None and candidates > candidate_budget:
                    return ParArabResult(
                        completed=False,
                        gfds=[],
                        patterns_mined=len(frequent),
                        candidates_generated=candidates,
                        elapsed_seconds=time.perf_counter() - started,
                    )
                lhs = frozenset(subset)
                gfd = GFD(node.pattern, lhs, rhs)
                if is_trivial(gfd):
                    continue
                rows_lhs = table.rows_satisfying_all(lhs, all_rows)
                rows_both = table.rows_satisfying(rhs, rows_lhs)
                if not rows_lhs or len(rows_both) != len(rows_lhs):
                    continue
                if table.support(rows_both) >= config.sigma:
                    gfds.append(gfd)
    return ParArabResult(
        completed=True,
        gfds=gfds,
        patterns_mined=len(frequent),
        candidates_generated=candidates,
        elapsed_seconds=time.perf_counter() - started,
    )
