"""Ablation variants of DisGFD (Section 7's baselines).

* ``ParGFDn``  — DisGFD *without the pruning strategies of Lemma 4*.  The
  paper reports it "fails to complete on all real-life graphs even when
  n = 20; it quickly consumes the available memory, due to a large number of
  GFD candidates."  Here the un-pruned run aborts through the candidate
  budget and reports how far it got.
* ``ParGFDnb`` — DisGFD *without load balancing* (skewed match shards stay
  where the joins produced them), used across Figures 5(a)-(h).
* ``ParCovern`` — ParCover *without GFD grouping* (Lemma 6 unused), used in
  Figures 5(i)-(l); re-exported from :mod:`repro.parallel.parcover`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..core.config import CandidateBudgetExceeded, DiscoveryConfig
from ..core.results import DiscoveryResult
from ..graph.graph import Graph
from ..parallel.cluster import SimulatedCluster
from ..parallel.parcover import parallel_cover_ungrouped
from ..parallel.pardis import ParallelDiscovery

__all__ = [
    "UnprunedRun",
    "run_pargfd_n",
    "run_pargfd_nb",
    "parallel_cover_ungrouped",
]


@dataclass
class UnprunedRun:
    """Outcome of a ``ParGFDn`` attempt."""

    completed: bool
    result: Optional[DiscoveryResult] = None
    candidates_checked: int = 0
    patterns_spawned: int = 0
    cluster: Optional[SimulatedCluster] = None


def run_pargfd_n(
    graph: Graph,
    config: DiscoveryConfig,
    num_workers: int = 4,
    candidate_budget: Optional[int] = 500_000,
    stats=None,
    index=None,
) -> UnprunedRun:
    """``ParGFDn``: parallel discovery with Lemma 4 pruning disabled.

    A candidate budget stands in for the paper's memory exhaustion; the run
    reports ``completed=False`` when it trips.
    """
    unpruned = replace(config, prune=False, max_candidates=candidate_budget)
    runner = ParallelDiscovery(graph, unpruned, num_workers, stats=stats, index=index)
    try:
        result = runner.run()
    except CandidateBudgetExceeded as blowup:
        return UnprunedRun(
            completed=False,
            candidates_checked=blowup.candidates_checked,
            patterns_spawned=blowup.patterns_spawned,
            cluster=runner.cluster,
        )
    return UnprunedRun(
        completed=True,
        result=result,
        candidates_checked=result.stats.candidates_checked,
        patterns_spawned=result.stats.patterns_spawned,
        cluster=runner.cluster,
    )


def run_pargfd_nb(
    graph: Graph,
    config: DiscoveryConfig,
    num_workers: int = 4,
    stats=None,
    index=None,
) -> Tuple[DiscoveryResult, SimulatedCluster]:
    """``ParGFDnb``: parallel discovery with load balancing disabled."""
    runner = ParallelDiscovery(
        graph, config, num_workers, balance=False, stats=stats, index=index
    )
    result = runner.run()
    return result, runner.cluster
