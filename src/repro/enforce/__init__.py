"""Rule enforcement: compiled multi-GFD violation detection (PR 3).

Discovery (the paper's contribution) produces a rule set ``Σ``; this
package is the *consumer* side — using ``Σ`` for consistency checking
against a live, changing graph, continuously and fast.  Three layers:

**Plan compilation** (:mod:`~repro.enforce.plan`).  ``Σ`` is grouped by the
canonical representative of each pattern's pivot-preserving isomorphism
class, so every distinct pattern is matched exactly once per validation no
matter how many rules share it.  Grouped rules evaluate as columnar boolean
masks over the pattern's :class:`~repro.core.match_table.MatchTable`
(constant, variable, and negative/``false`` literals, with the paper's
missing-attribute semantics), and each rule carries a column permutation
mapping canonical match rows back to its original variable order — grouped
results are exactly the per-rule reference results.

**Delta maintenance** (:mod:`~repro.enforce.delta`).  A :class:`~repro.
enforce.delta.DeltaLog` attached to the graph records the node ids every
mutation touches.  On :meth:`~repro.enforce.engine.EnforcementEngine.
refresh`, matches whose pivot lies outside the radius-``d_Q`` ball around
the touched nodes are reused verbatim; the ball is re-matched from scratch
(pivot-seeded), and mask evaluation reruns over the spliced tables.  A
delta wider than ``EnforcementConfig.max_delta_fraction`` of the graph
falls back to full revalidation.

**Backend selection** (:mod:`~repro.enforce.engine`).  Evaluation shards
match tables over the PR 2 :class:`~repro.parallel.backend.ShardWorker` op
layer: ``backend="serial"`` runs the shards in-process (the default; the
sharding exists for differential testing), ``backend="multiprocess"`` on
real per-worker processes that attach the frozen CSR
:class:`~repro.graph.index.GraphIndex` zero-copy via shared memory.  Every
combination — serial/multiprocess × full/incremental × any worker count —
reports identical violation sets (asserted by ``tests/test_enforce.py`` on
randomized graphs and rule sets).

Entry points: :class:`~repro.enforce.engine.EnforcementEngine` (library),
``repro-gfd enforce`` (CLI), and :func:`repro.quality.detector.
detect_gfd_violations` (the Exp-5 metrics path, rewired onto the engine).
"""

from .delta import DeltaLog, affected_nodes
from .engine import EnforcementEngine, EnforcementReport, RuleReport
from .monitor import RuleSketchMonitor
from .plan import CompiledRule, EnforcementPlan, PatternGroup, compile_plan

__all__ = [
    "DeltaLog",
    "affected_nodes",
    "EnforcementEngine",
    "EnforcementReport",
    "RuleReport",
    "RuleSketchMonitor",
    "CompiledRule",
    "EnforcementPlan",
    "PatternGroup",
    "compile_plan",
]
