"""Delta maintenance: mutation capture and affected-neighborhood localization.

Validating ``Σ`` from scratch after every edit wastes the structure of the
problem: a match of a pattern ``Q`` can appear, disappear, or change its
violation status only if it *contains* a touched node, and every such match
maps the pivot within graph distance ``d_Q`` (the pattern's pivot
eccentricity, Section 4.1's ``d_Q``-neighborhood locality) of some touched
node.  So incremental enforcement is two steps:

1. a :class:`DeltaLog` attached to the mutable :class:`~repro.graph.graph.
   Graph` records the node ids every mutation touches (both endpoints of an
   edge insert/delete, the node of an attribute or label change);
2. on refresh, :func:`affected_nodes` expands the touched set to the
   radius-``d_Q`` ball — pivots outside the ball keep their stored matches,
   pivots inside are re-matched from scratch (pivot-seeded matching).

Why the ball over the *post-delta* graph suffices even for deletions: take
an old match ``h`` containing touched node ``t = h(u)`` with pivot
``p = h(z)``, and walk the pattern path ``z → u`` (length ``≤ d_Q``) through
``h``'s images.  If every walked edge survived, ``p`` is within ``d_Q`` of
``t`` in the new graph.  Otherwise the *first* deleted edge on the walk has
touched endpoints, and the prefix up to it consists of surviving edges — so
``p`` is within ``d_Q`` of *that* touched node.  Either way ``p`` lands in
the ball.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from ..graph.graph import Graph
from ..graph.index import GraphIndex

__all__ = ["DeltaLog", "affected_nodes"]


class DeltaLog:
    """Accumulates the node ids touched by graph mutations.

    Attach with :meth:`Graph.attach_delta_log`; the graph calls
    :meth:`record` from every mutator.  The log is deliberately coarse — a
    set of node ids plus an op counter — because localization only needs
    *where* the graph changed, not *what* changed: the ball re-match
    re-derives the exact effect.
    """

    __slots__ = ("_touched", "num_ops")

    def __init__(self) -> None:
        self._touched: Set[int] = set()
        #: Number of mutations recorded since the last :meth:`clear`.
        self.num_ops = 0

    def record(self, nodes: Iterable[int]) -> None:
        """Record one mutation touching ``nodes`` (called by the graph)."""
        self._touched.update(nodes)
        self.num_ops += 1

    def touched_nodes(self) -> Set[int]:
        """A copy of the touched node-id set."""
        return set(self._touched)

    def clear(self) -> None:
        """Reset the log (a validation consumed the delta)."""
        self._touched.clear()
        self.num_ops = 0

    def drain(self) -> Set[int]:
        """Take the touched set and reset the log in one step.

        Validation passes call this *at pass start*: the returned set is
        exactly what the pass consumes, and any mutation recorded while the
        pass runs lands in the emptied log — to be consumed by the *next*
        pass — instead of being wiped by a clear-at-the-end.  This is what
        makes refresh safe when a writer publishes a new graph version
        while a pass is in flight.
        """
        taken = set(self._touched)
        self._touched.clear()
        self.num_ops = 0
        return taken

    def __len__(self) -> int:
        return len(self._touched)

    def __bool__(self) -> bool:
        return bool(self._touched)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaLog(touched={len(self._touched)}, ops={self.num_ops})"


def affected_nodes(
    graph: Graph,
    touched: Iterable[int],
    radius: int,
    index: Optional[GraphIndex] = None,
) -> np.ndarray:
    """The undirected radius-``radius`` ball around ``touched``, sorted.

    Every pivot of a match gained, lost, or re-judged by the delta lies in
    this ball (see the module docstring).  With ``index`` the expansion is
    one ragged CSR gather per direction per level; otherwise dict adjacency.
    Touched ids beyond the current node range (impossible today — nodes are
    never deleted) would be ignored by the CSR gather and must not occur.
    """
    ball: Set[int] = set(int(node) for node in touched)
    frontier = np.fromiter(sorted(ball), dtype=np.int64, count=len(ball))
    for _ in range(radius):
        if frontier.size == 0:
            break
        if index is not None:
            pools = []
            for outward in (True, False):
                _, pool, _ = index.gather_neighborhoods(frontier, outward)
                if pool.size:
                    pools.append(pool)
            candidates = (
                np.unique(np.concatenate(pools)).tolist() if pools else []
            )
        else:
            candidates = []
            for node in frontier.tolist():
                candidates.extend(graph.out_neighbors(node))
                candidates.extend(graph.in_neighbors(node))
        fresh = [node for node in candidates if node not in ball]
        ball.update(fresh)
        frontier = np.fromiter(sorted(set(fresh)), dtype=np.int64)
    return np.fromiter(sorted(ball), dtype=np.int64, count=len(ball))
