"""Streaming per-rule violation monitoring via cardinality sketches.

Between full validations, a serving process wants to answer "how many
distinct nodes has rule ``φ`` *ever* pivoted a violation on?" without
keeping the (unbounded) union of every pass's flagged-node sets.  The
:class:`RuleSketchMonitor` maintains one registry-pluggable
:class:`~repro.core.sketch.CardinalitySketch` per rule, fed continuously by
the :class:`~repro.enforce.engine.EnforcementEngine` as passes consume the
:class:`~repro.enforce.delta.DeltaLog`: every evaluated rule streams its
violating pivot-id column into its sketch.

Why this composes with incremental refresh: an incremental pass
re-evaluates only the pattern groups dirtied by the delta, so the monitor
sees only *their* pivots — but the sketch is a monotone union (duplicates
free, registers only grow), and every clean group's violating pivots were
absorbed on the pass that last evaluated it.  The invariant is exactly
"distinct pivots ever observed in violation", the cumulative-damage gauge
a remediation pipeline wants, as opposed to the point-in-time
``distinct_pivots`` a single :class:`~repro.enforce.engine.RuleReport`
carries.

The monitor is thread-safe (a serving process absorbs from its execution
lane while ``/metrics`` scrapes from the event loop) and serializable
(:meth:`as_state`/:meth:`from_state`) so a fresh process warm-starts with
the violation history persisted beside Σ by
:meth:`~repro.session.Session.save_sigma`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

import numpy as np

from ..core.sketch import dump_sketch_state, load_sketch_state, make_sketch
from ..gfd.gfd import GFD
from ..gfd.parser import format_gfd

__all__ = ["RuleSketchMonitor"]

#: Monitor state-dict schema version (bump on layout change).
MONITOR_STATE_VERSION = 1


class RuleSketchMonitor:
    """One distinct-pivot sketch per rule, keyed by the rule's text form.

    Keying by :func:`~repro.gfd.parser.format_gfd` output (stable across
    processes and Σ re-orderings) rather than by list position is what
    makes the persisted state re-attachable to a freshly loaded Σ.

    Args:
        backend: registry name of the estimator
            (:func:`~repro.core.sketch.make_sketch`); ``"exact"`` keeps the
            true distinct sets, ``"hll"`` (the default) bounds memory at
            ``2^precision`` bytes per rule.
        precision: the estimator's precision parameter.
    """

    def __init__(self, backend: str = "hll", precision: int = 12) -> None:
        self.backend = backend
        self.precision = precision
        #: Total absorb calls (pass-level feed rate, exported as a counter).
        self.absorbed = 0
        self._sketches: Dict[str, Any] = {}
        self._texts: Dict[int, str] = {}  # id(gfd) -> formatted text cache
        self._lock = threading.Lock()

    def _key(self, rule: GFD) -> str:
        text = self._texts.get(id(rule))
        if text is None:
            text = format_gfd(rule)
            self._texts[id(rule)] = text
        return text

    def absorb(self, rule: GFD, pivots: np.ndarray) -> None:
        """Stream one pass's violating pivot ids for ``rule`` (engine hook)."""
        pivots = np.asarray(pivots, dtype=np.int64)
        key = self._key(rule)
        with self._lock:
            sketch = self._sketches.get(key)
            if sketch is None:
                sketch = make_sketch(self.backend, self.precision)
                self._sketches[key] = sketch
            sketch.add_array(pivots)
            self.absorbed += 1

    def estimates(self) -> Dict[str, float]:
        """``{rule text: distinct-pivots-ever estimate}``, sorted by rule."""
        with self._lock:
            return {
                key: float(self._sketches[key].estimate())
                for key in sorted(self._sketches)
            }

    def estimate(self, rule: GFD) -> float:
        """The distinct-pivots-ever estimate for one rule (0.0 if unseen)."""
        key = self._key(rule)
        with self._lock:
            sketch = self._sketches.get(key)
            return float(sketch.estimate()) if sketch is not None else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sketches)

    # ------------------------------------------------------------------
    # registry export
    # ------------------------------------------------------------------
    def fill_registry(
        self,
        registry: Any,
        names: Optional[Dict[str, str]] = None,
        prefix: str = "repro_serve",
    ) -> None:
        """Publish the estimates as gauges on a ``MetricsRegistry``.

        ``names`` optionally maps rule text to a short label (a serving
        layer passes Σ positions); unmapped rules fall back to the full
        text.  Label values pass through the registry's Prometheus escaping
        (rule texts contain quotes).
        """
        for text, value in self.estimates().items():
            label = names.get(text, text) if names is not None else text
            registry.gauge(
                f"{prefix}_rule_distinct_pivots_ever", rule=label
            ).set(value)
        registry.gauge(f"{prefix}_monitor_absorbed").set(float(self.absorbed))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def as_state(self) -> Dict[str, Any]:
        """A JSON-safe snapshot (skips sketches that cannot serialize)."""
        with self._lock:
            rules: Dict[str, Any] = {}
            for key in sorted(self._sketches):
                state = dump_sketch_state(self._sketches[key])
                if state is not None:
                    rules[key] = state
            return {
                "version": MONITOR_STATE_VERSION,
                "backend": self.backend,
                "precision": self.precision,
                "absorbed": self.absorbed,
                "rules": rules,
            }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RuleSketchMonitor":
        """Rebuild a monitor from :meth:`as_state` output.

        Unknown estimator backends or structurally mismatched sketch
        states are skipped, not fatal — those rules cold-start.
        """
        monitor = cls(
            backend=str(state.get("backend", "hll")),
            precision=int(state.get("precision", 12)),
        )
        monitor.absorbed = int(state.get("absorbed", 0))
        for key, sketch_state in state.get("rules", {}).items():
            try:
                sketch = load_sketch_state(sketch_state, monitor.backend)
            except (ValueError, KeyError):
                sketch = None
            if sketch is not None:
                monitor._sketches[key] = sketch
        return monitor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RuleSketchMonitor(backend={self.backend!r}, "
            f"rules={len(self)}, absorbed={self.absorbed})"
        )
