"""Compilation of a rule set ``Σ`` into a grouped execution plan.

Naive enforcement evaluates each GFD independently: match its pattern, then
probe every match's attributes per literal.  Discovered rule sets are highly
redundant topologically — ``HSpawn`` emits many dependencies per pattern,
and isomorphic patterns recur under different variable orders — so the
compiler normalizes every GFD onto the canonical representative of its
pattern's pivot-preserving isomorphism class (:mod:`repro.pattern.
canonical`) and groups rules by that representative:

* each distinct pattern is **matched once** per validation, however many
  rules share it;
* all grouped rules evaluate as columnar boolean masks over one
  :class:`~repro.core.match_table.MatchTable` (``MatchTable.
  violation_mask``) — C-speed vector compares instead of per-match
  ``get_attr`` probes;
* each rule keeps a ``column_map`` permutation so violating canonical match
  rows convert back to the rule's original variable order, making grouped
  results indistinguishable from per-rule reference validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gfd.gfd import GFD
from ..gfd.literals import FalseLiteral, Literal, rename_literal
from ..pattern.canonical import canonical_ordering, canonicalize
from ..pattern.pattern import Pattern

__all__ = ["CompiledRule", "PatternGroup", "EnforcementPlan", "compile_plan"]


@dataclass(frozen=True)
class CompiledRule:
    """One GFD rewritten over its group's canonical pattern.

    Attributes:
        position: the rule's index in the input ``Σ`` (report alignment).
        gfd: the original, unrewritten GFD (reports cite this object).
        lhs: the LHS literals over canonical variables (deterministic order).
        rhs: the RHS literal over canonical variables, or ``None`` for a
            negative GFD (``rhs = false``).
        column_map: permutation with ``original_row = canonical_row[
            column_map]`` — converts a canonical match row back to the
            original pattern's variable order.
    """

    position: int
    gfd: GFD
    lhs: Tuple[Literal, ...]
    rhs: Optional[Literal]
    column_map: np.ndarray

    @property
    def is_negative(self) -> bool:
        """Whether the compiled rule has the negative form ``X → false``."""
        return self.rhs is None


@dataclass
class PatternGroup:
    """All rules sharing one canonical pattern (matched once per pass)."""

    pattern: Pattern
    rules: List[CompiledRule] = field(default_factory=list)

    @property
    def radius(self) -> int:
        """``d_Q`` of the canonical pattern (delta-localization radius)."""
        return self.pattern.radius_at_pivot()

    def attributes(self) -> Tuple[str, ...]:
        """Sorted union of attribute names the grouped rules mention."""
        names = set()
        for rule in self.rules:
            names.update(rule.gfd.attributes())
        return tuple(sorted(names))


@dataclass
class EnforcementPlan:
    """The compiled form of ``Σ``: pattern groups in first-seen order."""

    groups: List[PatternGroup]
    num_rules: int

    def attributes(self) -> Tuple[str, ...]:
        """Sorted union of attributes across the whole plan (the workers'
        active-attribute set ``Γ`` — every shard table carries these
        columns)."""
        names = set()
        for group in self.groups:
            names.update(group.attributes())
        return tuple(sorted(names))

    def __len__(self) -> int:
        return self.num_rules


def compile_rule(position: int, gfd: GFD) -> Tuple[Pattern, CompiledRule]:
    """Normalize one GFD onto its canonical pattern.

    Returns the canonical pattern (the group key — pivot is variable 0) and
    the compiled rule.  Renaming preserves semantics exactly: matches of the
    canonical pattern, permuted through ``column_map``, are precisely the
    matches of the original pattern, and the renamed literals read the same
    cells of each match.
    """
    ordering = canonical_ordering(gfd.pattern)
    remap = {old: new for new, old in enumerate(ordering)}
    pattern = canonicalize(gfd.pattern)
    lhs = tuple(
        sorted((rename_literal(l, remap) for l in gfd.lhs), key=str)
    )
    rhs: Optional[Literal]
    if isinstance(gfd.rhs, FalseLiteral):
        rhs = None
    else:
        rhs = rename_literal(gfd.rhs, remap)
    column_map = np.asarray(
        [remap[old] for old in range(gfd.pattern.num_nodes)], dtype=np.int64
    )
    return pattern, CompiledRule(position, gfd, lhs, rhs, column_map)


def compile_plan(sigma: Sequence[GFD]) -> EnforcementPlan:
    """Group ``Σ`` by canonical pattern; deterministic in ``Σ`` order."""
    groups: Dict[Pattern, PatternGroup] = {}
    ordered: List[PatternGroup] = []
    for position, gfd in enumerate(sigma):
        pattern, rule = compile_rule(position, gfd)
        group = groups.get(pattern)
        if group is None:
            group = PatternGroup(pattern)
            groups[pattern] = group
            ordered.append(group)
        group.rules.append(rule)
    return EnforcementPlan(ordered, len(sigma))
