"""The enforcement engine: grouped, sharded, incrementally maintained.

:class:`EnforcementEngine` binds a compiled plan (:mod:`repro.enforce.plan`)
to one live graph and serves two entry points:

* :meth:`EnforcementEngine.validate` — full validation: match every group
  pattern once against the current graph snapshot (CSR index by default)
  and evaluate all grouped rules as columnar masks, sharded over the PR 2
  :class:`~repro.parallel.backend.ShardWorker` backend (serial in-process
  shards, or real worker processes attaching the index via shared memory);
* :meth:`EnforcementEngine.refresh` — delta-aware revalidation: consume the
  attached :class:`~repro.enforce.delta.DeltaLog`, re-match only the
  radius-``d_Q`` neighborhood of touched nodes per pattern group
  (:func:`~repro.enforce.delta.affected_nodes`), splice the re-derived rows
  into the stored match arrays, and re-evaluate the masks.  When the delta
  exceeds ``EnforcementConfig.max_delta_fraction`` of the graph the engine
  falls back to :meth:`validate`.

With ``EnforcementConfig.persistent_tables`` (the default) the match
shards — and the per-rule violation masks computed over them — stay
*resident in the workers* between passes: a full pass installs them once,
a dirty incremental pass ships only ``(affected-pivot ball, fresh rows)``
per dirty group, and a clean pass ships nothing at all (the backend's
:class:`~repro.parallel.backend.TransferLedger` makes the zero-row claim
testable).  Graph mutations re-point the backend at the new index snapshot
(:meth:`~repro.parallel.backend.ExecutionBackend.refresh_index`) instead of
rebuilding the worker processes.

Reports are deterministic across backends, worker counts and refresh modes:
violating matches are mapped back to each rule's original variable order,
sorted lexicographically, and (when ``max_violation_samples`` binds) sampled
with a seeded RNG — never "first ``k`` in enumeration order".
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.config import EnforcementConfig
from ..core.support import sketch_distinct_upper_bound
from ..gfd.gfd import GFD
from ..gfd.satisfaction import Violation
from ..graph.graph import Graph
from ..graph.index import GraphIndex
from ..obs.tracer import NULL_TRACER
from ..parallel.backend import ExecutionBackend, make_backend, next_node_key
from ..pattern.matcher import Match, find_matches
from ..pattern.pattern import Pattern
from .delta import DeltaLog, affected_nodes
from .plan import CompiledRule, EnforcementPlan, PatternGroup, compile_plan

__all__ = ["RuleReport", "EnforcementReport", "EnforcementEngine"]


@dataclass(frozen=True)
class RuleReport:
    """Per-rule outcome of one validation pass.

    ``violation_count`` is always exact (a mask popcount per shard).
    ``nodes`` is exact too unless ``EnforcementConfig.
    max_violations_per_rule`` bound — then ``witnesses_truncated`` is set
    and the node set, ``sample`` and ``distinct_pivots`` cover only the
    retained violating rows (the graceful-degradation mode for adversarial
    rules).  ``sample`` is additionally capped by ``max_violation_samples``
    (``sample_truncated``).  ``distinct_pivots`` is the number of distinct
    graph nodes the pivot takes over violating matches — exact by default,
    a sketch upper bound under ``EnforcementConfig.sketch_cardinality``.
    """

    gfd: GFD
    violation_count: int
    nodes: FrozenSet[int]
    sample: Tuple[Match, ...]
    sample_truncated: bool
    distinct_pivots: int
    witnesses_truncated: bool = False

    def violations(self) -> List[Violation]:
        """The sampled violations as :class:`Violation` objects."""
        return [Violation(self.gfd, match) for match in self.sample]


@dataclass
class EnforcementReport:
    """Structured result of one :meth:`EnforcementEngine.validate`/`refresh`.

    ``rules`` aligns with the engine's ``Σ`` (one report per input rule,
    shared-pattern rules included individually).
    """

    rules: List[RuleReport]
    mode: str
    backend: str
    num_workers: int
    patterns_matched: int
    #: Pattern groups whose masks were (re-)evaluated this pass — equals
    #: ``patterns_matched`` on a full pass; on an incremental pass, groups
    #: with no dropped and no re-derived matches reuse their previous rule
    #: reports verbatim (no match of theirs contains a touched node, so no
    #: violation status changed).
    groups_revalidated: int
    elapsed_seconds: float
    graph_version: int

    @property
    def total_violations(self) -> int:
        """Sum of exact per-rule violation counts."""
        return sum(rule.violation_count for rule in self.rules)

    @property
    def is_clean(self) -> bool:
        """``G ⊨ Σ`` — no rule has a violating match."""
        return self.total_violations == 0

    def flagged_nodes(self) -> Set[int]:
        """``V^GFD``: every node contained in some violating match.

        Exact, unless ``EnforcementConfig.max_violations_per_rule`` bound on
        some rule — then that rule's contribution covers only its retained
        witness rows (its report entry has ``witnesses_truncated`` set).
        """
        flagged: Set[int] = set()
        for rule in self.rules:
            flagged.update(rule.nodes)
        return flagged

    def violations(self) -> List[Violation]:
        """All sampled violations, grouped per rule in ``Σ`` order."""
        result: List[Violation] = []
        for rule in self.rules:
            result.extend(rule.violations())
        return result


class EnforcementEngine:
    """Continuous validation of a fixed ``Σ`` against one live graph.

    The engine compiles ``Σ`` once, attaches a :class:`DeltaLog` to the
    graph, and caches per-group canonical match arrays between passes so
    :meth:`refresh` can splice localized re-matches instead of re-matching
    the world.  The evaluation backend (``config.backend``) is long-lived:
    with ``config.persistent_tables`` its workers keep each group's match
    shard and cached violation masks across passes, so repeated refreshes
    against a mutating graph exchange deltas and scalars only.  Call
    :meth:`close` (or use as a context manager) to detach the log and
    release backend resources (worker processes, shared memory).

    Args:
        graph: the live graph to validate; its mutators feed the engine's
            delta log from the moment the engine is constructed.
        sigma: the rule set ``Σ`` (compiled once, grouped by canonical
            pattern).
        config: evaluation parameters; ``None`` uses the
            :class:`~repro.core.config.EnforcementConfig` defaults.
        backend: a pre-started
            :class:`~repro.parallel.backend.ExecutionBackend` to *borrow*
            — e.g. the pool set a :class:`repro.session.Session` shares
            across discover/cover/enforce.  The caller keeps ownership: on
            :meth:`close` the engine only drops its resident groups, never
            the pools, and a graph-snapshot change re-points the borrowed
            backend via ``refresh_index`` instead of rebuilding it.
            ``None`` (the default) makes the engine construct and own a
            backend per ``config``.
        delta: a :class:`~repro.enforce.delta.DeltaLog` already attached to
            ``graph`` (session-owned).  ``None`` attaches (and on close
            detaches) a private log.
        monitor: an optional :class:`~repro.enforce.monitor.
            RuleSketchMonitor`: every evaluated rule's violating pivot ids
            stream into its per-rule distinct-count sketches as passes run.

    Thread-safety: none — one engine serves one caller, like the discovery
    engines.  A serving layer must serialize passes against mutations on
    one lane; the engine's own guarantee under a racing mutation is
    narrower but exact: every pass captures ``graph.version`` and drains
    the delta log *at pass start*, so the report is stamped with the
    version whose delta it consumed and a mutation landing mid-pass stays
    queued for the next refresh — never silently absorbed into a report
    that does not reflect it, never lost.
    """

    def __init__(
        self,
        graph: Graph,
        sigma: Sequence[GFD],
        config: Optional[EnforcementConfig] = None,
        backend: Optional[ExecutionBackend] = None,
        delta: Optional[DeltaLog] = None,
        tracer: Any = NULL_TRACER,
        monitor: Any = None,
    ) -> None:
        self.graph = graph
        self.sigma = list(sigma)
        #: Optional streaming violation monitor (duck-typed: ``absorb(gfd,
        #: pivots)``); fed from every evaluated rule's violating rows.
        self.monitor = monitor
        #: The session tracer (``NULL_TRACER`` by default): validation
        #: passes open ``validate``/``refresh`` stage spans and report an
        #: ``enforce_pass`` typed event; worker-lane op spans come from the
        #: (shared) backend's own instrumentation.
        self.tracer = tracer
        self.config = config if config is not None else EnforcementConfig()
        self.plan: EnforcementPlan = compile_plan(self.sigma)
        self._owns_delta = delta is None
        self.delta = delta if delta is not None else DeltaLog()
        if self._owns_delta:
            graph.attach_delta_log(self.delta)
        self._arrays: List[Optional[np.ndarray]] = [None] * len(self.plan.groups)
        self._report: Optional[EnforcementReport] = None
        self._validated_version: Optional[int] = None
        self._owns_backend = backend is None
        self._backend: Optional[ExecutionBackend] = backend
        self._backend_index: Optional[GraphIndex] = None
        #: Worker-state keys of the pattern groups — allocated from the
        #: process-wide counter so engines sharing one backend (sessions,
        #: or an engine rebuilt over the same pools) never collide.
        self._group_keys: List[int] = [
            next_node_key() for _ in self.plan.groups
        ]
        #: Group positions whose match shards are resident in the current
        #: backend's workers (valid only while that backend lives).
        self._resident: set = set()
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """The evaluation shard count in effect."""
        if self._backend is not None:
            return self._backend.num_workers
        return self.config.resolved_workers

    def invalidate_residency(self) -> None:
        """Forget worker-resident shards (a shared backend was reset).

        A session-shared backend is wiped (``op_reset``) whenever a
        discovery run returns it; the session calls this so the next
        enforcement pass re-installs its shards instead of updating state
        that no longer exists.
        """
        self._resident.clear()

    def _drop_resident(self) -> None:
        """Free this engine's resident groups on a backend that outlives it."""
        if not self._resident or self._backend is None:
            return
        try:
            self._backend.run_unmetered(
                [
                    (worker, "enforce_drop", self._group_keys[position], {})
                    for position in sorted(self._resident)
                    for worker in range(self._backend.num_workers)
                ],
                wait=False,
            )
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        self._resident.clear()

    def close(self) -> None:
        """Release (or hand back) the delta log and backend (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_delta:
            self.graph.detach_delta_log(self.delta)
        if self._backend is not None:
            if self._owns_backend:
                self._backend.shutdown()
            else:
                self._drop_resident()
            self._backend = None

    def __enter__(self) -> "EnforcementEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # validation entry points
    # ------------------------------------------------------------------
    def validate(self) -> EnforcementReport:
        """Full validation of ``Σ`` against the current graph state."""
        with self.tracer.span(
            "validate", "stage", groups=len(self.plan.groups)
        ):
            started = time.perf_counter()
            # capture the version this pass is about *before* consuming the
            # delta: a mutation racing the pass bumps graph.version but its
            # touched nodes land in the drained log, so the next refresh
            # sees version != _validated_version and consumes them
            version = self.graph.version
            self.delta.drain()
            index = self.graph.index() if self.config.use_index else None
            for position, group in enumerate(self.plan.groups):
                self._arrays[position] = self._match_array(
                    group.pattern, index
                )
            return self._finish(index, "full", started, version=version)

    def refresh(self) -> EnforcementReport:
        """Revalidate, reusing stored matches outside the delta's reach.

        Returns the cached report when nothing changed; falls back to
        :meth:`validate` on the first call or when the touched-node
        fraction exceeds ``config.max_delta_fraction``.
        """
        if self._report is None:
            return self.validate()
        if self.graph.version == self._validated_version and not self.delta:
            return self._report
        # version + delta are taken atomically at pass start: mutations
        # recorded after the drain belong to the *next* pass (the old
        # clear-at-the-end wiped them unprocessed when a writer raced the
        # ball re-match)
        version = self.graph.version
        touched = self.delta.drain()
        limit = self.config.max_delta_fraction * max(1, self.graph.num_nodes)
        if not touched or len(touched) > limit:
            # version moved without touched nodes (cannot happen while the
            # log is attached) or the delta is too wide to localize
            return self.validate()
        with self.tracer.span(
            "refresh", "stage", touched_nodes=len(touched)
        ):
            started = time.perf_counter()
            index = self.graph.index() if self.config.use_index else None
            balls: Dict[int, np.ndarray] = {}
            dirty: List[int] = []
            updates: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
            for position, group in enumerate(self.plan.groups):
                radius = group.radius
                ball = balls.get(radius)
                if ball is None:
                    ball = affected_nodes(
                        self.graph, touched, radius, index=index
                    )
                    balls[radius] = ball
                stored = self._arrays[position]
                dropped = 0
                kept = stored
                if stored.shape[0]:
                    in_ball = np.isin(stored[:, 0], ball)
                    dropped = int(np.count_nonzero(in_ball))
                    if dropped:
                        kept = stored[~in_ball]
                fresh = self._match_array(group.pattern, index, seeds=ball)
                if dropped or fresh.shape[0]:
                    # only these groups can have gained, lost, or re-judged
                    # matches: every affected match has its pivot in the ball
                    dirty.append(position)
                    updates[position] = (ball, fresh)
                    self._arrays[position] = (
                        np.concatenate([kept, fresh])
                        if fresh.shape[0]
                        else kept
                    )
            return self._finish(
                index,
                "incremental",
                started,
                positions=dirty,
                updates=updates,
                version=version,
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _match_array(
        self,
        pattern: Pattern,
        index: Optional[GraphIndex],
        seeds: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Matches of a canonical pattern as an ``(N, vars)`` int64 array."""
        width = pattern.num_nodes
        if seeds is not None and seeds.size == 0:
            return np.empty((0, width), dtype=np.int64)
        rows = list(
            find_matches(self.graph, pattern, seeds=seeds, index=index)
        )
        if not rows:
            return np.empty((0, width), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    def _ensure_backend(self, index: Optional[GraphIndex]) -> ExecutionBackend:
        """The evaluation backend for this snapshot.

        With ``config.persistent_tables`` (the default), an existing
        backend is *re-pointed* at a new index snapshot via
        :meth:`~repro.parallel.backend.ExecutionBackend.refresh_index` —
        free on the serial backend, one shared-memory index export on the
        multiprocess backend — so the worker-resident match shards and
        cached violation masks survive graph mutations.  An *owned*
        backend without persistent tables is instead rebuilt from scratch
        on every snapshot change (its workers hold no state worth
        preserving); a *borrowed* backend is never rebuilt — the session
        that lent it keeps exactly one pool set alive, so snapshot changes
        always go through ``refresh_index``.
        """
        if self._backend is not None and self._backend_index is index:
            return self._backend
        if self._backend is not None:
            if self._backend.source_token == (id(self.graph), id(index)):
                # the backend already holds this snapshot (e.g. the owning
                # session re-pointed it) — adopt without re-shipping
                self._backend_index = index
                return self._backend
            keep = not self._owns_backend or (
                self.config.persistent_tables
                and index is not None
                and self._backend_index is not None
            )
            if keep:
                self._backend.refresh_index(index)
                self._backend_index = index
                return self._backend
            self._backend.shutdown()
            self._backend = None
            self._resident.clear()
        self._backend = make_backend(
            self.config.backend,
            self.num_workers,
            self.graph,
            index,
            self.plan.attributes(),
            use_shared_memory=self.config.shared_memory,
            fault=self.config.fault,
            tracer=self.tracer,
        )
        self._backend_index = index
        return self._backend

    def _shard_matches(
        self, chunk: np.ndarray, index: Optional[GraphIndex]
    ) -> Any:
        """One worker's slice of a match array, in the path's native form."""
        if index is None:
            # dict-path tables expect match tuples, not arrays
            return [tuple(row) for row in chunk.tolist()]
        return chunk

    def _finish(
        self,
        index: Optional[GraphIndex],
        mode: str,
        started: float,
        positions: Optional[List[int]] = None,
        updates: Optional[Dict[int, Tuple[np.ndarray, np.ndarray]]] = None,
        version: Optional[int] = None,
    ) -> EnforcementReport:
        """Sharded mask evaluation over the stored match arrays + report.

        ``positions`` (incremental mode) restricts evaluation to the dirty
        pattern groups; every other rule reuses its previous report entry —
        none of its matches contained a touched node, so nothing changed.
        ``updates`` maps a dirty position to its ``(ball, fresh)`` delta:
        with ``config.persistent_tables``, a group already resident in the
        workers receives only that delta (``enforce_update``) — the kept
        rows and their cached violation masks never re-cross the process
        boundary — while first-time (or non-persistent) groups receive a
        full shard install.

        ``version`` is the graph version captured at pass start; the report
        is stamped with it (not with ``graph.version`` at finish time) so a
        mutation racing the pass cannot make the report claim a version it
        does not reflect.
        """
        if version is None:
            version = self.graph.version
        if positions is None:
            evaluate = list(range(len(self.plan.groups)))
            rule_reports: List[Optional[RuleReport]] = [None] * len(self.sigma)
        else:
            evaluate = positions
            assert self._report is not None
            rule_reports = list(self._report.rules)
        if evaluate:
            backend = self._ensure_backend(index)
            shards = backend.num_workers
            backend_name = backend.name
            persistent = self.config.persistent_tables
            gamma = list(self.plan.attributes())
            cap = self.config.max_violations_per_rule
            requests: List[Tuple[int, str, int, Dict[str, Any]]] = []
            drops: List[Tuple[int, str, int, Dict[str, Any]]] = []
            for position in evaluate:
                group = self.plan.groups[position]
                key = self._group_keys[position]
                update = (
                    updates.get(position)
                    if persistent
                    and updates is not None
                    and position in self._resident
                    else None
                )
                if update is not None:
                    ball, fresh = update
                    for worker, chunk in enumerate(
                        np.array_split(fresh, shards)
                    ):
                        requests.append(
                            (
                                worker,
                                "enforce_update",
                                key,
                                {
                                    "ball": ball,
                                    "fresh": self._shard_matches(chunk, index),
                                },
                            )
                        )
                else:
                    array = self._arrays[position]
                    rules_payload = [
                        (rule.lhs, rule.rhs) for rule in group.rules
                    ]
                    for worker, chunk in enumerate(
                        np.array_split(array, shards)
                    ):
                        requests.append(
                            (
                                worker,
                                "enforce_install",
                                key,
                                {
                                    "pattern": group.pattern,
                                    "matches": self._shard_matches(chunk, index),
                                    "rules": rules_payload,
                                    "gamma": gamma,
                                    "cap": cap,
                                },
                            )
                        )
                    if persistent:
                        self._resident.add(position)
                if not persistent:
                    drops.extend(
                        (worker, "enforce_drop", key, {})
                        for worker in range(shards)
                    )
            outcomes = backend.run_unmetered(requests)
            if drops:
                backend.run_unmetered(drops, wait=False)
            cursor = 0
            for position in evaluate:
                group = self.plan.groups[position]
                shard_results = outcomes[cursor:cursor + shards]
                cursor += shards
                for offset, rule in enumerate(group.rules):
                    parts = [result[offset] for result in shard_results]
                    rule_reports[rule.position] = self._rule_report(rule, parts)
        else:
            # nothing to re-evaluate: keep metadata consistent without
            # touching (or rebuilding) the backend
            shards = self.num_workers
            backend_name = (
                self._backend.name
                if self._backend is not None
                else self.config.backend
            )
        report = EnforcementReport(
            rules=rule_reports,
            mode=mode,
            backend=backend_name,
            num_workers=shards,
            patterns_matched=len(self.plan.groups),
            groups_revalidated=len(evaluate),
            elapsed_seconds=time.perf_counter() - started,
            graph_version=version,
        )
        self._report = report
        self._validated_version = version
        if self.tracer.enabled:
            self.tracer.event(
                "enforce_pass",
                mode=mode,
                backend=backend_name,
                groups_revalidated=len(evaluate),
                graph_version=version,
            )
        return report

    def _rule_report(
        self, rule: CompiledRule, parts: List[Tuple]
    ) -> RuleReport:
        """Merge one rule's per-shard results into its report entry."""
        count = sum(part[0] for part in parts)
        witnesses_truncated = any(part[3] for part in parts)
        node_arrays = [part[1] for part in parts if part[1].size]
        nodes = (
            frozenset(np.unique(np.concatenate(node_arrays)).tolist())
            if node_arrays
            else frozenset()
        )
        width = rule.gfd.pattern.num_nodes
        row_arrays = [part[2] for part in parts if part[2].shape[0]]
        if row_arrays:
            canonical = np.concatenate(row_arrays)
        else:
            canonical = np.empty((0, width), dtype=np.int64)
        if self.monitor is not None and canonical.shape[0]:
            # stream the violating pivot ids into the per-rule sketch;
            # incremental passes re-evaluate only dirty groups, and the
            # sketch is a monotone union, so clean groups' pivots (absorbed
            # on earlier passes) stay counted
            self.monitor.absorb(rule.gfd, canonical[:, 0])
        if self.config.sketch_cardinality and canonical.shape[0]:
            distinct_pivots = sketch_distinct_upper_bound(
                canonical[:, 0], kind=self.config.sketch_backend
            )
        else:
            distinct_pivots = (
                int(np.unique(canonical[:, 0]).size) if canonical.shape[0] else 0
            )
        # back to the rule's original variable order, then a lexicographic
        # sort: the retained sample must not depend on shard boundaries,
        # backend, or match enumeration order (under the per-rule violation
        # cap the retained rows already depend on shard boundaries — the
        # documented degradation — but the sort keeps the sample stable for
        # a fixed sharding)
        mapped = canonical[:, rule.column_map]
        if mapped.shape[0] > 1:
            mapped = mapped[np.lexsort(mapped.T[::-1])]
        cap = self.config.max_violation_samples
        retained = int(mapped.shape[0])
        truncated = cap is not None and retained > cap
        if truncated:
            chosen = sorted(
                random.Random(self.config.sample_seed).sample(
                    range(retained), cap
                )
            )
            mapped = mapped[chosen]
        sample = tuple(tuple(row) for row in mapped.tolist())
        return RuleReport(
            gfd=rule.gfd,
            violation_count=count,
            nodes=nodes,
            sample=sample,
            sample_truncated=truncated,
            distinct_pivots=distinct_pivots,
            witnesses_truncated=witnesses_truncated,
        )
