"""In-memory directed property graph.

This is the substrate the paper's algorithms run on: a directed graph
``G = (V, E, L, F_A)`` where every node and edge carries a label drawn from an
alphabet ``Theta`` and every node carries a tuple of attribute/value pairs
(Section 2.1 of the paper).  Real-life graphs in the paper (DBpedia, YAGO2,
IMDB) are schemaless knowledge graphs; nodes of the same label may carry
different attribute sets.

The structure is optimized for the access paths GFD discovery needs:

* candidate seeding by node label  -> ``nodes_with_label``,
* edge extension during matching   -> ``out_neighbors`` / ``in_neighbors``,
* O(1) edge-existence tests        -> ``has_edge``,
* frequent-triple statistics       -> ``edges`` iteration and label indexes.

``networkx`` was measured to be far too slow for the inner matching loops at
the scales the benchmarks use, so adjacency is stored directly in
dict-of-dict-of-set form (per source node: destination -> set of edge labels).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = ["Graph", "Edge"]

#: An edge as exposed by iteration APIs: (source, destination, label).
Edge = Tuple[int, int, str]


class Graph:
    """A directed, node- and edge-labeled property graph.

    Nodes are dense integer ids assigned by :meth:`add_node` (0, 1, 2, ...).
    At most one edge exists per ``(src, dst, label)`` triple; distinct labels
    between the same endpoints are distinct edges, matching the paper's model
    where ``E ⊆ V × V`` with a label per edge (we additionally allow parallel
    edges with different labels, which knowledge graphs need).

    Node attributes are stored per node as a plain ``dict`` mapping attribute
    name to a constant value; graphs are schemaless, so any node may carry any
    attributes (Section 2.1).
    """

    __slots__ = (
        "_labels",
        "_attrs",
        "_out",
        "_in",
        "_label_index",
        "_edge_label_count",
        "_num_edges",
        "_version",
        "_index_cache",
        "_delta_logs",
    )

    def __init__(self) -> None:
        self._labels: List[str] = []
        self._attrs: List[Dict[str, Any]] = []
        # adjacency: per node, dst -> set of edge labels (and the reverse)
        self._out: List[Dict[int, Set[str]]] = []
        self._in: List[Dict[int, Set[str]]] = []
        self._label_index: Dict[str, List[int]] = {}
        self._edge_label_count: Dict[str, int] = {}
        self._num_edges = 0
        self._version = 0
        self._index_cache = None
        self._delta_logs: Tuple = ()

    # ------------------------------------------------------------------
    # mutation tracking (frozen-index invalidation)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone mutation counter; any structural/attribute change bumps it."""
        return self._version

    def _touch(self) -> None:
        """Record a mutation: bump the version and drop the cached index."""
        self._version += 1
        self._index_cache = None

    def attach_delta_log(self, log) -> None:
        """Subscribe a :class:`~repro.enforce.delta.DeltaLog`-like observer.

        Every mutation reports its touched node ids via ``log.record(nodes)``
        — the hook incremental enforcement uses to localize revalidation.
        Observers are held strongly; pair with :meth:`detach_delta_log`.
        """
        if log not in self._delta_logs:
            self._delta_logs = self._delta_logs + (log,)

    def detach_delta_log(self, log) -> None:
        """Unsubscribe a previously attached delta observer (idempotent)."""
        self._delta_logs = tuple(l for l in self._delta_logs if l is not log)

    def _record_delta(self, *nodes: int) -> None:
        for log in self._delta_logs:
            log.record(nodes)

    def index(self):
        """The frozen :class:`~repro.graph.index.GraphIndex` of this graph.

        Cached per mutation version: the first call after any mutation
        rebuilds, later calls reuse the snapshot.  Hot paths (matching,
        spawning, match tables) consume this index; the mutable dict
        structure stays authoritative for construction and editing.
        """
        cached = self._index_cache
        if cached is None or cached.version != self._version:
            from .index import GraphIndex

            cached = GraphIndex.build(self)
            self._index_cache = cached
        return cached

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: str, attrs: Optional[Dict[str, Any]] = None) -> int:
        """Add a node with the given label and attribute dict; return its id."""
        self._touch()
        node = len(self._labels)
        self._labels.append(label)
        self._attrs.append(dict(attrs) if attrs else {})
        self._out.append({})
        self._in.append({})
        self._label_index.setdefault(label, []).append(node)
        if self._delta_logs:
            self._record_delta(node)
        return node

    def add_edge(self, src: int, dst: int, label: str) -> bool:
        """Add edge ``src -[label]-> dst``; return False if it already exists."""
        self._check_node(src)
        self._check_node(dst)
        out_labels = self._out[src].setdefault(dst, set())
        if label in out_labels:
            return False
        self._touch()
        out_labels.add(label)
        self._in[dst].setdefault(src, set()).add(label)
        self._edge_label_count[label] = self._edge_label_count.get(label, 0) + 1
        self._num_edges += 1
        if self._delta_logs:
            self._record_delta(src, dst)
        return True

    def remove_edge(self, src: int, dst: int, label: str) -> bool:
        """Remove edge ``src -[label]-> dst``; return False if absent."""
        labels = self._out[src].get(dst)
        if labels is None or label not in labels:
            return False
        self._touch()
        labels.discard(label)
        if not labels:
            del self._out[src][dst]
        in_labels = self._in[dst][src]
        in_labels.discard(label)
        if not in_labels:
            del self._in[dst][src]
        self._edge_label_count[label] -= 1
        if not self._edge_label_count[label]:
            del self._edge_label_count[label]
        self._num_edges -= 1
        if self._delta_logs:
            self._record_delta(src, dst)
        return True

    def set_attr(self, node: int, attr: str, value: Any) -> None:
        """Set attribute ``attr`` of ``node`` to ``value``."""
        self._check_node(node)
        self._touch()
        self._attrs[node][attr] = value
        if self._delta_logs:
            self._record_delta(node)

    def remove_attr(self, node: int, attr: str) -> None:
        """Delete attribute ``attr`` from ``node`` if present."""
        if attr in self._attrs[node]:
            self._touch()
            del self._attrs[node][attr]
            if self._delta_logs:
                self._record_delta(node)

    def relabel_node(self, node: int, label: str) -> None:
        """Change the label of ``node`` (updates the label index)."""
        self._check_node(node)
        old = self._labels[node]
        if old == label:
            return
        self._touch()
        bucket = self._label_index[old]
        bucket.remove(node)
        if not bucket:
            del self._label_index[old]
        self._labels[node] = label
        self._label_index.setdefault(label, []).append(node)
        if self._delta_logs:
            self._record_delta(node)

    def relabel_edge(self, src: int, dst: int, old: str, new: str) -> bool:
        """Replace the label of an existing edge; return False if absent."""
        if not self.remove_edge(src, dst, old):
            return False
        self.add_edge(src, dst, new)
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of (src, dst, label) edges in the graph."""
        return self._num_edges

    def nodes(self) -> range:
        """All node ids."""
        return range(len(self._labels))

    def node_label(self, node: int) -> str:
        """The label of ``node``."""
        return self._labels[node]

    def node_attrs(self, node: int) -> Dict[str, Any]:
        """The attribute dict of ``node`` (live reference; treat as read-only)."""
        return self._attrs[node]

    def get_attr(self, node: int, attr: str, default: Any = None) -> Any:
        """The value of ``attr`` at ``node`` or ``default`` if absent."""
        return self._attrs[node].get(attr, default)

    def has_attr(self, node: int, attr: str) -> bool:
        """Whether ``node`` carries attribute ``attr``."""
        return attr in self._attrs[node]

    def edges(self) -> Iterator[Edge]:
        """Iterate all edges as ``(src, dst, label)`` triples."""
        for src, adjacency in enumerate(self._out):
            for dst, labels in adjacency.items():
                for label in labels:
                    yield (src, dst, label)

    def has_edge(self, src: int, dst: int, label: Optional[str] = None) -> bool:
        """Whether edge ``src -> dst`` exists (with ``label`` if given)."""
        labels = self._out[src].get(dst)
        if labels is None:
            return False
        return True if label is None else label in labels

    def edge_labels(self, src: int, dst: int) -> Set[str]:
        """Labels of edges from ``src`` to ``dst`` (empty set if none)."""
        return self._out[src].get(dst, set())

    def out_neighbors(self, node: int) -> Dict[int, Set[str]]:
        """Outgoing adjacency of ``node``: dst -> edge-label set."""
        return self._out[node]

    def in_neighbors(self, node: int) -> Dict[int, Set[str]]:
        """Incoming adjacency of ``node``: src -> edge-label set."""
        return self._in[node]

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges of ``node`` (counting parallel labels)."""
        return sum(len(labels) for labels in self._out[node].values())

    def in_degree(self, node: int) -> int:
        """Number of incoming edges of ``node`` (counting parallel labels)."""
        return sum(len(labels) for labels in self._in[node].values())

    def degree(self, node: int) -> int:
        """Total degree of ``node``."""
        return self.out_degree(node) + self.in_degree(node)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: str) -> List[int]:
        """All nodes carrying exactly ``label`` (no wildcard semantics here)."""
        return self._label_index.get(label, [])

    def node_labels(self) -> Set[str]:
        """The set of node labels used in the graph."""
        return set(self._label_index)

    def edge_label_counts(self) -> Dict[str, int]:
        """Edge label -> number of edges with that label."""
        return dict(self._edge_label_count)

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label``."""
        return len(self._label_index.get(label, ()))

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[int]) -> "Graph":
        """The subgraph induced by ``nodes`` (all edges among them), re-indexed.

        Node ids are remapped densely in iteration order of ``nodes``.
        """
        subgraph = Graph()
        mapping: Dict[int, int] = {}
        for node in nodes:
            mapping[node] = subgraph.add_node(self._labels[node], self._attrs[node])
        for old, new in mapping.items():
            for dst, labels in self._out[old].items():
                if dst in mapping:
                    for label in labels:
                        subgraph.add_edge(new, mapping[dst], label)
        return subgraph

    def copy(self) -> "Graph":
        """A deep, independent copy of the graph."""
        clone = Graph()
        for node in self.nodes():
            clone.add_node(self._labels[node], self._attrs[node])
        for src, dst, label in self.edges():
            clone.add_edge(src, dst, label)
        return clone

    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._labels):
            raise KeyError(f"node {node} does not exist")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"
