"""Graph statistics that drive discovery.

``VSpawn`` extends patterns with *frequent edges* (Section 5.1) and
``NVSpawn`` needs frequent label shapes that may have **zero** matches when
attached to a particular pattern (that is what makes a negative GFD).  Both
are served by the label-triple statistics computed here.  The module also
collects the attribute statistics used to pick active attributes ``Γ`` and
the "5 most frequent values per attribute" protocol of Section 7.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .graph import Graph

__all__ = ["LabelTriple", "GraphStatistics", "compute_statistics"]

#: (source node label, edge label, destination node label)
LabelTriple = Tuple[str, str, str]


@dataclass
class GraphStatistics:
    """Aggregate statistics of a property graph.

    Attributes:
        node_label_counts: node label -> count.
        edge_label_counts: edge label -> count.
        triple_counts: (src label, edge label, dst label) -> count.
        attr_counts: attribute name -> number of nodes carrying it.
        attr_value_counts: (node label, attribute) -> Counter of values.
        max_degree: maximum total degree over nodes.
    """

    node_label_counts: Dict[str, int] = field(default_factory=dict)
    edge_label_counts: Dict[str, int] = field(default_factory=dict)
    triple_counts: Dict[LabelTriple, int] = field(default_factory=dict)
    attr_counts: Dict[str, int] = field(default_factory=dict)
    attr_value_counts: Dict[Tuple[str, str], Counter] = field(default_factory=dict)
    max_degree: int = 0

    def frequent_triples(self, threshold: int) -> List[LabelTriple]:
        """Label triples occurring at least ``threshold`` times, most frequent first."""
        frequent = [
            (count, triple)
            for triple, count in self.triple_counts.items()
            if count >= threshold
        ]
        frequent.sort(key=lambda pair: (-pair[0], pair[1]))
        return [triple for _, triple in frequent]

    def top_attributes(self, limit: int) -> List[str]:
        """The ``limit`` most common attribute names (the default ``Γ``)."""
        ranked = sorted(self.attr_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [attr for attr, _ in ranked[:limit]]

    def top_values(self, node_label: str, attr: str, limit: int) -> List[Any]:
        """The ``limit`` most frequent values of ``attr`` on ``node_label`` nodes."""
        counter = self.attr_value_counts.get((node_label, attr))
        if not counter:
            return []
        ranked = sorted(counter.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return [value for value, _ in ranked[:limit]]


def compute_statistics(graph: Graph) -> GraphStatistics:
    """Single-pass computation of :class:`GraphStatistics` for ``graph``."""
    stats = GraphStatistics()
    node_labels: Counter = Counter()
    attr_names: Counter = Counter()
    for node in graph.nodes():
        label = graph.node_label(node)
        node_labels[label] += 1
        for attr, value in graph.node_attrs(node).items():
            attr_names[attr] += 1
            stats.attr_value_counts.setdefault((label, attr), Counter())[value] += 1
        degree = graph.degree(node)
        if degree > stats.max_degree:
            stats.max_degree = degree
    triples: Counter = Counter()
    for src, dst, label in graph.edges():
        triples[(graph.node_label(src), label, graph.node_label(dst))] += 1
    stats.node_label_counts = dict(node_labels)
    stats.edge_label_counts = graph.edge_label_counts()
    stats.triple_counts = dict(triples)
    stats.attr_counts = dict(attr_names)
    return stats
