"""Vertex-cut fragmentation of a graph across workers.

Section 6 of the paper partitions ``G`` "evenly into n fragments via vertex
cut [31]": every **edge** is assigned to exactly one fragment, and a node may
be replicated on every fragment holding one of its edges.  Parallel pattern
matching then computes ``Q'(F_s) = ⋃_t Q(F_s) ⋈ e(F_t)``, so a fragment needs

* its local edge set (to seed single-edge matches it *owns*), and
* read access to endpoint labels/attributes (vertex-cut replicas).

In this reproduction workers share the immutable global node table (the
replicas the vertex cut would ship) and own disjoint edge sets; the
communication that the real system would pay for shipping ``e(F_t)`` between
workers is accounted by the cluster's cost model (see
:mod:`repro.parallel.cluster`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .graph import Edge, Graph

__all__ = ["Fragment", "partition_edges", "fragment_graph"]


@dataclass
class Fragment:
    """One worker's share of a vertex-cut fragmented graph.

    Attributes:
        index: fragment number in ``[0, n)``.
        edges: the edges owned by this fragment (disjoint across fragments).
        border_nodes: nodes incident to an owned edge (the vertex-cut replicas).
    """

    index: int
    edges: List[Edge] = field(default_factory=list)
    border_nodes: Set[int] = field(default_factory=set)

    @property
    def num_edges(self) -> int:
        """Number of edges owned by the fragment."""
        return len(self.edges)

    def edges_with_label(self, label: str) -> List[Edge]:
        """Owned edges carrying ``label``."""
        return [edge for edge in self.edges if edge[2] == label]


def partition_edges(
    graph: Graph, num_fragments: int, strategy: str = "block"
) -> List[List[Edge]]:
    """Split the edges of ``graph`` into ``num_fragments`` even groups.

    Strategies:

    * ``"block"`` — contiguous ranges of the edge stream.  Keeps edges of the
      same source node together, which mimics locality of real partitioners
      and deliberately produces *skew* in the number of matches per fragment
      (the situation the paper's load balancing addresses).
    * ``"hash"`` — round-robin by a hash of the edge.  Near-perfectly even.

    Returns a list of ``num_fragments`` edge lists covering every edge once.
    """
    if num_fragments < 1:
        raise ValueError("num_fragments must be >= 1")
    edges = list(graph.edges())
    buckets: List[List[Edge]] = [[] for _ in range(num_fragments)]
    if strategy == "block":
        size, remainder = divmod(len(edges), num_fragments)
        start = 0
        for index in range(num_fragments):
            stop = start + size + (1 if index < remainder else 0)
            buckets[index] = edges[start:stop]
            start = stop
    elif strategy == "hash":
        for position, edge in enumerate(edges):
            buckets[position % num_fragments].append(edge)
    else:
        raise ValueError(f"unknown partition strategy {strategy!r}")
    return buckets


def fragment_graph(
    graph: Graph, num_fragments: int, strategy: str = "block"
) -> List[Fragment]:
    """Build :class:`Fragment` objects for a vertex-cut partition of ``graph``."""
    fragments = []
    for index, edges in enumerate(partition_edges(graph, num_fragments, strategy)):
        border: Set[int] = set()
        for src, dst, _ in edges:
            border.add(src)
            border.add(dst)
        fragments.append(Fragment(index=index, edges=edges, border_nodes=border))
    return fragments


def replication_factor(fragments: Sequence[Fragment]) -> float:
    """Average number of fragments a node is replicated on (vertex-cut cost).

    1.0 means no replication; higher values mean more node copies shipped.
    """
    counts: Dict[int, int] = {}
    for fragment in fragments:
        for node in fragment.border_nodes:
            counts[node] = counts.get(node, 0) + 1
    if not counts:
        return 0.0
    return sum(counts.values()) / len(counts)


def edge_balance(fragments: Sequence[Fragment]) -> Tuple[int, int]:
    """(min, max) edges per fragment — evenness check for tests."""
    sizes = [fragment.num_edges for fragment in fragments]
    return (min(sizes), max(sizes)) if sizes else (0, 0)
