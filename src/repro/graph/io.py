"""Serialization for property graphs.

Two formats are supported:

* **JSON**: a single document with ``nodes`` (label + attributes) and
  ``edges`` arrays — lossless round-trip of everything :class:`Graph` holds.
* **TSV**: the classic knowledge-graph exchange shape, three files or
  sections — node labels, node attributes and labeled edges.  This mirrors
  how dumps of DBpedia / YAGO-style datasets are commonly shipped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .graph import Graph

__all__ = [
    "graph_to_json",
    "graph_from_json",
    "save_json",
    "load_json",
    "save_tsv",
    "load_tsv",
]

PathLike = Union[str, Path]


def graph_to_json(graph: Graph) -> dict:
    """Encode ``graph`` as a JSON-serializable dict."""
    return {
        "nodes": [
            {"label": graph.node_label(v), "attrs": graph.node_attrs(v)}
            for v in graph.nodes()
        ],
        "edges": [[src, dst, label] for src, dst, label in graph.edges()],
    }


def graph_from_json(document: dict) -> Graph:
    """Decode a dict produced by :func:`graph_to_json`."""
    graph = Graph()
    for node in document["nodes"]:
        graph.add_node(node["label"], node.get("attrs") or {})
    for src, dst, label in document["edges"]:
        graph.add_edge(int(src), int(dst), label)
    return graph


def save_json(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_json(graph), handle)


def load_json(path: PathLike) -> Graph:
    """Read a graph written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_json(json.load(handle))


def save_tsv(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` as a sectioned TSV file.

    Sections are introduced by ``#nodes``, ``#attrs`` and ``#edges`` header
    lines; rows are tab-separated:

    * nodes: ``id<TAB>label``
    * attrs: ``id<TAB>attr<TAB>value`` (values stored via ``json.dumps``)
    * edges: ``src<TAB>dst<TAB>label``
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("#nodes\n")
        for node in graph.nodes():
            handle.write(f"{node}\t{graph.node_label(node)}\n")
        handle.write("#attrs\n")
        for node in graph.nodes():
            for attr, value in graph.node_attrs(node).items():
                handle.write(f"{node}\t{attr}\t{json.dumps(value)}\n")
        handle.write("#edges\n")
        for src, dst, label in graph.edges():
            handle.write(f"{src}\t{dst}\t{label}\n")


def load_tsv(path: PathLike) -> Graph:
    """Read a graph written by :func:`save_tsv`.

    Node rows must appear in id order (they are written that way); a
    ``ValueError`` is raised on gaps so corrupt files fail loudly.
    """
    graph = Graph()
    section = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                section = line[1:]
                continue
            fields = line.split("\t")
            if section == "nodes":
                node_id, label = int(fields[0]), fields[1]
                if node_id != graph.num_nodes:
                    raise ValueError(
                        f"line {line_number}: node id {node_id} out of order"
                    )
                graph.add_node(label)
            elif section == "attrs":
                graph.set_attr(int(fields[0]), fields[1], json.loads(fields[2]))
            elif section == "edges":
                graph.add_edge(int(fields[0]), int(fields[1]), fields[2])
            else:
                raise ValueError(f"line {line_number}: data before section header")
    return graph
