"""Frozen, integer-coded CSR index over a :class:`~repro.graph.graph.Graph`.

The mutable dict-of-dict-of-set :class:`Graph` is the right structure for
*construction* and for the noise/cleaning workloads that edit graphs in
place, but it is the wrong structure for the matching hot loop: every
candidate test chases Python pointers one node at a time.  This module
freezes a graph into flat numpy arrays once, and the discovery engines run
against those arrays:

* **label interning** — node labels, edge labels and attribute values are
  mapped to dense integer codes; all hot-path comparisons become integer
  compares (attribute code ``0`` is reserved for "attribute absent").
* **CSR adjacency** — per direction, ``indptr``/``neighbors``/``edge label
  codes`` arrays, sorted by ``(neighbor, label)`` within each node's slice,
  so neighborhood filters are vectorized masks instead of dict scans.
* **sorted edge keys** — every edge as one integer ``(src·N + dst)·L +
  label``; edge-existence for whole candidate arrays is one
  ``np.searchsorted`` instead of per-element dict lookups.
* **per-label node arrays** — candidate seeding pulls a ready sorted array.
* **label-triple counts** — the ``(src label, edge label, dst label)``
  statistics that drive ``NVSpawn``, computed by one vectorized group-by.
* **columnar attribute codes** — per attribute, one ``int64`` code per node;
  match-table columns become a single fancy-indexing gather instead of a
  per-row ``get_attr`` loop.

The index is a *snapshot*: it records the graph's mutation version at build
time and :meth:`GraphIndex.is_fresh` reports staleness.  The cached accessor
:meth:`Graph.index` rebuilds automatically after any mutation; code holding
an index across mutations must re-fetch it.

For multiprocess execution (:mod:`repro.parallel.backend`) the index is the
zero-copy payload: :meth:`GraphIndex.export_buffers` splits a *fresh* index
into a picklable metadata dict plus its flat numpy arrays, and
:meth:`GraphIndex.from_buffers` reassembles a **detached** index (no backing
:class:`Graph`) around those arrays — typically views into a
``multiprocessing.shared_memory`` block, so worker processes attach once and
never copy the graph.  A detached index supports every array-backed
operation (matching, joins, tallies, match tables, statistics); only
``graph``-touching accessors are unavailable.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .graph import Graph
from .statistics import GraphStatistics

__all__ = ["GraphIndex", "MISSING", "sort_unique"]

#: Sentinel for "attribute absent at this node" — distinct from stored None.
#: (Re-exported by :mod:`repro.core.match_table` for backward compatibility.)
MISSING = object()


def sort_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an integer array.

    Result-equivalent to ``np.unique``, but via an explicit sort +
    adjacent-run extract: recent numpy routes integer ``np.unique`` through
    a hash table, which profiled measurably slower on the hot join paths
    (AMIE path groundings, spawning group-bys) than sorting.
    """
    if values.size == 0:
        return values
    ordered = np.sort(values)
    distinct = np.empty(ordered.size, dtype=bool)
    distinct[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=distinct[1:])
    return ordered[distinct]


class GraphIndex:
    """An immutable, integer-coded view of one graph snapshot.

    Build with :meth:`build` (or the cached :meth:`Graph.index`).  All arrays
    are read-only by convention; the index never mutates after construction.
    """

    __slots__ = (
        "graph",
        "version",
        "num_nodes",
        "num_edges",
        # label interning
        "node_label_codes",
        "node_label_values",
        "node_label_code_of",
        "edge_label_values",
        "edge_label_code_of",
        # per-label sorted node arrays
        "_nodes_by_label",
        # CSR adjacency (per direction)
        "out_indptr",
        "out_neighbors",
        "out_edge_labels",
        "in_indptr",
        "in_neighbors",
        "in_edge_labels",
        # global sorted existence keys
        "_edge_keys",
        "_pair_keys",
        # columnar attributes
        "attr_names",
        "_attr_codes",
        "value_of_code",
        "code_of_value",
        # label-triple statistics
        "_triple_keys",
        "_triple_counts",
        "_statistics",
        # on-disk persistence (see repro.graph.store)
        "store_path",
        "store_mapping",
    )

    #: Process-local count of full ``__init__`` freezes — a diagnostic the
    #: persistence tests use to prove an mmap attach performs *zero*
    #: rebuilds (``from_buffers``/``load`` never touch it).
    builds_performed = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def __init__(self, graph: Graph) -> None:
        GraphIndex.builds_performed += 1
        self.graph = graph
        self.version = graph.version
        self.store_path = None
        self.store_mapping = None
        n = graph.num_nodes
        self.num_nodes = n

        # -- node labels ------------------------------------------------
        node_label_code_of: Dict[str, int] = {}
        node_label_values: List[str] = []
        node_codes = np.empty(n, dtype=np.int64)
        for node in range(n):
            label = graph.node_label(node)
            code = node_label_code_of.get(label)
            if code is None:
                code = len(node_label_values)
                node_label_code_of[label] = code
                node_label_values.append(label)
            node_codes[node] = code
        self.node_label_codes = node_codes
        self.node_label_values = node_label_values
        self.node_label_code_of = node_label_code_of

        # per-label sorted node arrays (stable argsort keeps ids ascending)
        order = np.argsort(node_codes, kind="stable")
        counts = np.bincount(node_codes, minlength=len(node_label_values))
        bounds = np.concatenate(([0], np.cumsum(counts)))
        self._nodes_by_label = [
            order[bounds[i]: bounds[i + 1]] for i in range(len(node_label_values))
        ]

        # -- attributes (columnar value codes; 0 = missing) -------------
        code_of_value: Dict[Any, int] = {}
        value_of_code: List[Any] = [MISSING]
        attr_codes: Dict[str, np.ndarray] = {}
        for node in range(n):
            for attr, value in graph.node_attrs(node).items():
                column = attr_codes.get(attr)
                if column is None:
                    column = np.zeros(n, dtype=np.int64)
                    attr_codes[attr] = column
                code = code_of_value.get(value)
                if code is None:
                    code = len(value_of_code)
                    code_of_value[value] = code
                    value_of_code.append(value)
                column[node] = code
        self._attr_codes = attr_codes
        self.attr_names = sorted(attr_codes)
        self.code_of_value = code_of_value
        self.value_of_code = value_of_code

        # -- edges ------------------------------------------------------
        edge_label_code_of: Dict[str, int] = {}
        edge_label_values: List[str] = []
        src_list: List[int] = []
        dst_list: List[int] = []
        lab_list: List[int] = []
        for src, dst, label in graph.edges():
            code = edge_label_code_of.get(label)
            if code is None:
                code = len(edge_label_values)
                edge_label_code_of[label] = code
                edge_label_values.append(label)
            src_list.append(src)
            dst_list.append(dst)
            lab_list.append(code)
        self.edge_label_values = edge_label_values
        self.edge_label_code_of = edge_label_code_of
        src_arr = np.asarray(src_list, dtype=np.int64)
        dst_arr = np.asarray(dst_list, dtype=np.int64)
        lab_arr = np.asarray(lab_list, dtype=np.int64)
        self.num_edges = len(src_arr)
        num_labels = max(1, len(edge_label_values))

        def csr(major: np.ndarray, minor: np.ndarray, labels: np.ndarray):
            order = np.lexsort((labels, minor, major))
            counts = np.bincount(major, minlength=n)
            indptr = np.concatenate(([0], np.cumsum(counts)))
            return indptr, minor[order], labels[order]

        self.out_indptr, self.out_neighbors, self.out_edge_labels = csr(
            src_arr, dst_arr, lab_arr
        )
        self.in_indptr, self.in_neighbors, self.in_edge_labels = csr(
            dst_arr, src_arr, lab_arr
        )

        # global sorted existence keys (labeled and any-label)
        pair = src_arr * n + dst_arr
        self._edge_keys = np.sort(pair * num_labels + lab_arr)
        self._pair_keys = np.unique(pair)

        # label-triple counts: one vectorized group-by over all edges
        num_node_labels = max(1, len(node_label_values))
        if self.num_edges:
            tkey = (
                node_codes[src_arr] * num_labels + lab_arr
            ) * num_node_labels + node_codes[dst_arr]
            self._triple_keys, self._triple_counts = np.unique(
                tkey, return_counts=True
            )
        else:
            self._triple_keys = np.empty(0, dtype=np.int64)
            self._triple_counts = np.empty(0, dtype=np.int64)
        self._statistics: Optional[GraphStatistics] = None

    @classmethod
    def build(cls, graph: Graph) -> "GraphIndex":
        """Freeze ``graph`` into a new index (one full scan)."""
        return cls(graph)

    def is_fresh(self) -> bool:
        """Whether the underlying graph is unmutated since the build.

        A *detached* index (reassembled by :meth:`from_buffers`, no backing
        graph) is always fresh: it is an immutable snapshot by construction.
        """
        if self.graph is None:
            return True
        return self.version == self.graph.version

    @property
    def detached(self) -> bool:
        """Whether this index was rebuilt from buffers without a graph."""
        return self.graph is None

    # ------------------------------------------------------------------
    # buffer export / attach (the multiprocess zero-copy protocol)
    # ------------------------------------------------------------------
    #: Array fields shipped by :meth:`export_buffers` (attribute columns are
    #: added dynamically under ``"attr:<name>"`` keys).
    _BUFFER_FIELDS = (
        "node_label_codes",
        "out_indptr",
        "out_neighbors",
        "out_edge_labels",
        "in_indptr",
        "in_neighbors",
        "in_edge_labels",
        "_edge_keys",
        "_pair_keys",
        "_triple_keys",
        "_triple_counts",
    )

    def export_buffers(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """Split the index into ``(meta, arrays)`` for cross-process shipping.

        ``meta`` is a small picklable dict (label/value tables, sizes);
        ``arrays`` maps stable names to the flat int64 arrays.  Raises
        :class:`RuntimeError` when the index is stale — shipping a snapshot
        of a graph that has since mutated would silently desynchronize the
        workers from the master.
        """
        if not self.is_fresh():
            raise RuntimeError(
                "cannot export a stale GraphIndex (graph version "
                f"{self.graph.version} != snapshot version {self.version}); "
                "re-fetch graph.index() first"
            )
        arrays: Dict[str, np.ndarray] = {
            name: getattr(self, name) for name in self._BUFFER_FIELDS
        }
        for attr, column in self._attr_codes.items():
            arrays[f"attr:{attr}"] = column
        meta: Dict[str, Any] = {
            "version": self.version,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "node_label_values": list(self.node_label_values),
            "edge_label_values": list(self.edge_label_values),
            # MISSING (code 0) is a process-local sentinel: ship values from
            # code 1 up and re-anchor on the importing side's MISSING object
            "values": list(self.value_of_code[1:]),
            "attr_names": list(self.attr_names),
        }
        return meta, arrays

    @classmethod
    def from_buffers(
        cls,
        meta: Dict[str, Any],
        arrays: Dict[str, np.ndarray],
        nodes_order: Optional[np.ndarray] = None,
        nodes_bounds: Optional[np.ndarray] = None,
    ) -> "GraphIndex":
        """Reassemble a detached index around exported ``(meta, arrays)``.

        The arrays are adopted as-is (typically zero-copy views into a
        shared-memory block or memory-mapped store file); only the small
        derived structures (interning dicts, per-label node slices) are
        rebuilt.  ``nodes_order``/``nodes_bounds`` — persisted by
        :mod:`repro.graph.store` — supply the per-label node ordering
        precomputed, skipping the ``O(n log n)`` argsort that would
        otherwise dominate a million-node attach.
        """
        self = cls.__new__(cls)
        self.graph = None
        self.version = meta["version"]
        self.num_nodes = meta["num_nodes"]
        self.num_edges = meta["num_edges"]
        self.store_path = None
        self.store_mapping = None
        for name in cls._BUFFER_FIELDS:
            setattr(self, name, arrays[name])
        self.node_label_values = list(meta["node_label_values"])
        self.node_label_code_of = {
            label: code for code, label in enumerate(self.node_label_values)
        }
        self.edge_label_values = list(meta["edge_label_values"])
        self.edge_label_code_of = {
            label: code for code, label in enumerate(self.edge_label_values)
        }
        if nodes_order is None or nodes_bounds is None:
            codes = self.node_label_codes
            nodes_order = np.argsort(codes, kind="stable")
            counts = np.bincount(
                codes, minlength=len(self.node_label_values)
            )
            nodes_bounds = np.concatenate(([0], np.cumsum(counts)))
        self._nodes_by_label = [
            nodes_order[nodes_bounds[i]: nodes_bounds[i + 1]]
            for i in range(len(self.node_label_values))
        ]
        self.value_of_code = [MISSING] + list(meta["values"])
        self.code_of_value = {
            value: code + 1 for code, value in enumerate(meta["values"])
        }
        self._attr_codes = {
            name[len("attr:"):]: array
            for name, array in arrays.items()
            if name.startswith("attr:")
        }
        self.attr_names = list(meta["attr_names"])
        self._statistics = None
        return self

    # ------------------------------------------------------------------
    # on-disk persistence (thin veneer over repro.graph.store)
    # ------------------------------------------------------------------
    def save(self, path: Any) -> Any:
        """Persist this snapshot to ``path`` (see :func:`~repro.graph.store.save_index`)."""
        from .store import save_index

        return save_index(self, path)

    @classmethod
    def load(
        cls,
        path: Any,
        graph: Optional[Graph] = None,
        mmap: bool = True,
        verify: Optional[bool] = None,
    ) -> "GraphIndex":
        """Attach a persisted snapshot (see :func:`~repro.graph.store.load_index`)."""
        from .store import load_index

        return load_index(path, graph=graph, mmap=mmap, verify=verify)

    # ------------------------------------------------------------------
    # label/value interning
    # ------------------------------------------------------------------
    def node_label_code(self, label: str) -> int:
        """The code of a node label (``-1`` if the label never occurs)."""
        return self.node_label_code_of.get(label, -1)

    def edge_label_code(self, label: str) -> int:
        """The code of an edge label (``-1`` if the label never occurs)."""
        return self.edge_label_code_of.get(label, -1)

    def nodes_with_label(self, label: str) -> np.ndarray:
        """Sorted node ids carrying exactly ``label`` (empty array if none)."""
        code = self.node_label_code_of.get(label)
        if code is None:
            return np.empty(0, dtype=np.int64)
        return self._nodes_by_label[code]

    def attr_code_array(self, attr: str) -> Optional[np.ndarray]:
        """Per-node value codes of ``attr`` (``0`` = absent), or None."""
        return self._attr_codes.get(attr)

    def decode_values(self, codes: np.ndarray) -> List[Any]:
        """Decode a code array back to values (``MISSING`` for code 0)."""
        values = self.value_of_code
        return [values[code] for code in codes.tolist()]

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def neighbors(
        self,
        node: int,
        outward: bool,
        edge_label_code: int = -1,
        node_label_code: int = -1,
    ) -> np.ndarray:
        """Neighbor array of ``node`` filtered by edge/endpoint label codes.

        ``-1`` means "any" (wildcard).  Out direction returns destinations
        of ``node ->`` edges; in direction returns sources of ``-> node``.

        Each *distinct neighbor* appears once: with a concrete edge label
        the (src, dst, label) uniqueness of edges guarantees it, and the
        wildcard case dedups the label-sorted slice (parallel edges list
        their endpoint once per label) — matching dict-adjacency keys.
        """
        if outward:
            indptr, nbrs, labs = self.out_indptr, self.out_neighbors, self.out_edge_labels
        else:
            indptr, nbrs, labs = self.in_indptr, self.in_neighbors, self.in_edge_labels
        start, end = indptr[node], indptr[node + 1]
        pool = nbrs[start:end]
        if edge_label_code >= 0:
            pool = pool[labs[start:end] == edge_label_code]
        elif pool.size > 1:
            # slice is (neighbor, label)-sorted: parallel-edge duplicates
            # are adjacent
            distinct = np.empty(pool.size, dtype=bool)
            distinct[0] = True
            np.not_equal(pool[1:], pool[:-1], out=distinct[1:])
            pool = pool[distinct]
        if node_label_code >= 0:
            pool = pool[self.node_label_codes[pool] == node_label_code]
        return pool

    def csr_slice(self, node: int, outward: bool) -> Tuple[np.ndarray, np.ndarray]:
        """The raw ``(neighbors, edge label codes)`` slice of one node."""
        if outward:
            indptr, nbrs, labs = self.out_indptr, self.out_neighbors, self.out_edge_labels
        else:
            indptr, nbrs, labs = self.in_indptr, self.in_neighbors, self.in_edge_labels
        start, end = indptr[node], indptr[node + 1]
        return nbrs[start:end], labs[start:end]

    def edges_exist(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        edge_label_code: int = -1,
    ) -> np.ndarray:
        """Vectorized edge-existence: boolean mask per ``(src[i], dst[i])``.

        With a label code, tests ``src -[label]-> dst``; with ``-1``, tests
        any-label existence.  One ``np.searchsorted`` over the sorted key
        arrays — the flat-layout replacement for per-row dict probes.
        """
        pair = np.asarray(src, dtype=np.int64) * self.num_nodes + np.asarray(
            dst, dtype=np.int64
        )
        if edge_label_code >= 0:
            keys = pair * max(1, len(self.edge_label_values)) + edge_label_code
            table = self._edge_keys
        else:
            keys = pair
            table = self._pair_keys
        if table.size == 0:
            return np.zeros(len(keys), dtype=bool)
        position = np.searchsorted(table, keys)
        position[position == table.size] = table.size - 1
        return table[position] == keys

    def has_edge(self, src: int, dst: int, label: Optional[str] = None) -> bool:
        """Scalar edge-existence test (label ``None`` = any label)."""
        if label is None:
            code = -1
        else:
            code = self.edge_label_code_of.get(label)
            if code is None:
                return False
        return bool(
            self.edges_exist(
                np.asarray([src], dtype=np.int64),
                np.asarray([dst], dtype=np.int64),
                code,
            )[0]
        )

    def edge_label_codes_between(self, src: int, dst: int) -> np.ndarray:
        """Label codes of all edges ``src -> dst`` (CSR slice + searchsorted).

        The slice is sorted by ``(dst, label)``, so the edges to one
        destination form one contiguous run found by binary search.
        """
        start, end = self.out_indptr[src], self.out_indptr[src + 1]
        nbrs = self.out_neighbors[start:end]
        lo = np.searchsorted(nbrs, dst, side="left")
        hi = np.searchsorted(nbrs, dst, side="right")
        return self.out_edge_labels[start + lo: start + hi]

    def edge_labels(self, src: int, dst: int) -> Set[str]:
        """Labels of edges from ``src`` to ``dst`` as strings (small sets)."""
        values = self.edge_label_values
        return {values[code] for code in self.edge_label_codes_between(src, dst).tolist()}

    def out_degrees(self) -> np.ndarray:
        """Per-node outgoing edge counts."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Per-node incoming edge counts."""
        return np.diff(self.in_indptr)

    # ------------------------------------------------------------------
    # ragged batch gather (shared by the vectorized hot paths)
    # ------------------------------------------------------------------
    def gather_neighborhoods(
        self, nodes: np.ndarray, outward: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten the neighborhoods of a node batch into three flat arrays.

        Returns ``(row, neighbor, edge_label_code)`` where ``row[i]`` is the
        position in ``nodes`` that contributed flat entry ``i``.  This is the
        ragged-gather primitive behind vectorized ``extend_matches`` and
        ``extension_statistics``.
        """
        if outward:
            indptr, nbrs, labs = self.out_indptr, self.out_neighbors, self.out_edge_labels
        else:
            indptr, nbrs, labs = self.in_indptr, self.in_neighbors, self.in_edge_labels
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        row = np.repeat(np.arange(len(nodes), dtype=np.int64), counts)
        exclusive = np.cumsum(counts) - counts
        position = (
            np.arange(total, dtype=np.int64)
            - np.repeat(exclusive, counts)
            + np.repeat(starts, counts)
        )
        return row, nbrs[position], labs[position]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def triple_counts(self) -> Dict[Tuple[str, str, str], int]:
        """``(src label, edge label, dst label) -> count`` decoded from arrays."""
        num_labels = max(1, len(self.edge_label_values))
        num_node_labels = max(1, len(self.node_label_values))
        result: Dict[Tuple[str, str, str], int] = {}
        for key, count in zip(
            self._triple_keys.tolist(), self._triple_counts.tolist()
        ):
            dst_code = key % num_node_labels
            rest = key // num_node_labels
            lab_code = rest % num_labels
            src_code = rest // num_labels
            result[
                (
                    self.node_label_values[src_code],
                    self.edge_label_values[lab_code],
                    self.node_label_values[dst_code],
                )
            ] = count
        return result

    def statistics(self) -> GraphStatistics:
        """A :class:`GraphStatistics` computed from the frozen arrays (cached).

        Equivalent to :func:`repro.graph.statistics.compute_statistics` but
        built from vectorized group-bys instead of Python scans.
        """
        if self._statistics is not None:
            return self._statistics
        stats = GraphStatistics()
        label_counts = np.bincount(
            self.node_label_codes, minlength=len(self.node_label_values)
        )
        stats.node_label_counts = {
            label: int(label_counts[code])
            for label, code in self.node_label_code_of.items()
        }
        # one CSR pass instead of graph.edge_label_counts(): works detached
        edge_tallies = np.bincount(
            self.out_edge_labels, minlength=max(1, len(self.edge_label_values))
        )
        stats.edge_label_counts = {
            label: int(edge_tallies[code])
            for label, code in self.edge_label_code_of.items()
            if edge_tallies[code]
        }
        stats.triple_counts = self.triple_counts()
        stats.attr_counts = {
            attr: int(np.count_nonzero(column))
            for attr, column in self._attr_codes.items()
        }
        num_values = len(self.value_of_code)
        for attr, column in self._attr_codes.items():
            present = np.flatnonzero(column)
            if present.size == 0:
                continue
            combined = self.node_label_codes[present] * num_values + column[present]
            keys, counts = np.unique(combined, return_counts=True)
            for key, count in zip(keys.tolist(), counts.tolist()):
                label = self.node_label_values[key // num_values]
                value = self.value_of_code[key % num_values]
                stats.attr_value_counts.setdefault((label, attr), Counter())[
                    value
                ] += count
        degrees = self.out_degrees() + self.in_degrees()
        stats.max_degree = int(degrees.max()) if degrees.size else 0
        self._statistics = stats
        return stats

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphIndex(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"version={self.version}, fresh={self.is_fresh()})"
        )
