"""Property-graph substrate: storage, IO, statistics and fragmentation."""

from .builder import GraphBuilder
from .graph import Edge, Graph
from .io import (
    graph_from_json,
    graph_to_json,
    load_json,
    load_tsv,
    save_json,
    save_tsv,
)
from .index import GraphIndex
from .partition import Fragment, fragment_graph, partition_edges
from .store import (
    IndexStoreCorrupt,
    IndexStoreError,
    IndexStoreStale,
    inspect_index,
    load_index,
    save_index,
)
from .statistics import GraphStatistics, compute_statistics

__all__ = [
    "Edge",
    "Graph",
    "GraphBuilder",
    "GraphIndex",
    "GraphStatistics",
    "IndexStoreCorrupt",
    "IndexStoreError",
    "IndexStoreStale",
    "inspect_index",
    "load_index",
    "save_index",
    "Fragment",
    "compute_statistics",
    "fragment_graph",
    "partition_edges",
    "graph_to_json",
    "graph_from_json",
    "save_json",
    "load_json",
    "save_tsv",
    "load_tsv",
]
