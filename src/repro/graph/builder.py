"""Convenience builder for property graphs keyed by external names.

Real datasets identify entities by strings (URIs, names); the discovery
algorithms want dense integer ids.  :class:`GraphBuilder` bridges the two:
nodes are created on first reference by key, and the final :class:`Graph`
plus the key <-> id mapping are returned by :meth:`build`.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from .graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incrementally assemble a :class:`~repro.graph.graph.Graph`.

    Example::

        builder = GraphBuilder()
        builder.node("john", "person", name="John Winter")
        builder.node("film1", "product", title="Selling Out")
        builder.edge("john", "film1", "create")
        graph, ids = builder.build()
    """

    def __init__(self) -> None:
        self._graph = Graph()
        self._ids: Dict[Hashable, int] = {}

    def node(self, key: Hashable, label: Optional[str] = None, **attrs: Any) -> int:
        """Ensure a node for ``key`` exists; set/extend its label and attributes.

        The first call for a key must provide a label.  Later calls may add
        attributes; passing a different label raises ``ValueError`` to catch
        accidental key collisions early.
        """
        node = self._ids.get(key)
        if node is None:
            if label is None:
                raise ValueError(f"first reference to {key!r} must provide a label")
            node = self._graph.add_node(label, attrs)
            self._ids[key] = node
            return node
        if label is not None and self._graph.node_label(node) != label:
            raise ValueError(
                f"node {key!r} already has label {self._graph.node_label(node)!r}, "
                f"got {label!r}"
            )
        for attr, value in attrs.items():
            self._graph.set_attr(node, attr, value)
        return node

    def edge(self, src_key: Hashable, dst_key: Hashable, label: str) -> None:
        """Add an edge between two existing (or auto-created) keyed nodes."""
        if src_key not in self._ids:
            raise KeyError(f"unknown source node {src_key!r}")
        if dst_key not in self._ids:
            raise KeyError(f"unknown destination node {dst_key!r}")
        self._graph.add_edge(self._ids[src_key], self._ids[dst_key], label)

    def has_node(self, key: Hashable) -> bool:
        """Whether a node for ``key`` has been created."""
        return key in self._ids

    def node_id(self, key: Hashable) -> int:
        """The integer id assigned to ``key`` (KeyError if absent)."""
        return self._ids[key]

    def build(self) -> Tuple[Graph, Dict[Hashable, int]]:
        """Return the built graph and the key -> node-id mapping."""
        return self._graph, dict(self._ids)
