"""Versioned, checksummed on-disk persistence for :class:`GraphIndex`.

A built index is already "flat": :meth:`GraphIndex.export_buffers` reduces
it to a small metadata dict plus named ``int64`` arrays.  This module
persists exactly that seam, so the build cost is paid **once** and any
number of later processes — a fresh CLI run, every
:class:`~repro.parallel.backend.MultiprocessBackend` worker — attach the
same snapshot through ``numpy.memmap`` views in milliseconds instead of
re-freezing the graph.

On-disk layout (all integers little-endian)::

    offset 0   magic            4 bytes   b"RGIX"
    offset 4   schema version   u32       SCHEMA_VERSION
    offset 8   header crc32     u32       over the header JSON bytes
    offset 12  header length    u64       byte length of the header JSON
    offset 20  header JSON      utf-8     meta + fingerprint + array layout
    ...        zero padding to the next 64-byte boundary
    data_start one region per array, each 64-byte aligned, in sorted
               name order; region offsets in the header are relative to
               ``data_start``

The header JSON carries:

* ``meta`` — the picklable half of ``export_buffers()`` (label/value
  tables, sizes), restricted to JSON-stable values;
* ``fingerprint`` — ``(num_nodes, num_edges, graph_version)`` of the
  source graph, so :func:`load_index` can prove a supplied graph is the
  *same snapshot* and reject a mutated one (:class:`IndexStoreStale`);
* ``arrays`` — per region: dtype, shape, relative offset and a crc32 of
  the raw bytes.  Names prefixed ``derived:`` are attach accelerators
  (the per-label node ordering) that are *not* part of the export-buffer
  contract;
* ``data_size`` — total region bytes, so a truncated file is detected
  from the header alone before any region is touched.

Integrity model: the preamble magic/schema/crc and the recorded file size
are **always** verified — a truncated file, a garbled header or a foreign
schema version raises :class:`IndexStoreError` instead of segfaulting or
silently mis-attaching.  Region checksums are verified on eager loads by
default; an mmap attach skips them (verifying would page in the whole
file, defeating the near-zero attach) unless ``verify=True`` is passed.

Writes are crash-safe the same way the janitor spool is: the file is
assembled under a temporary name in the target directory and published
with one atomic ``os.replace``.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .index import GraphIndex

__all__ = [
    "ALIGNMENT",
    "IndexMapping",
    "IndexStoreCorrupt",
    "IndexStoreError",
    "IndexStoreStale",
    "MAGIC",
    "SCHEMA_VERSION",
    "inspect_index",
    "load_index",
    "read_header",
    "release_index",
    "save_index",
    "snapshot_matches",
]

#: File magic of every persisted index.
MAGIC = b"RGIX"

#: Version of the on-disk format; bumped on any layout change.
SCHEMA_VERSION = 1

#: Region alignment — matches the shared-memory packer, so mmap views get
#: the same cache-line alignment workers see through ``SharedMemory``.
ALIGNMENT = 64

#: ``magic, schema version, header crc32, header length``.
_PREAMBLE = struct.Struct("<4sIIQ")

#: Region names carrying attach accelerators rather than export buffers.
_DERIVED_PREFIX = "derived:"


class IndexStoreError(RuntimeError):
    """Base error of the on-disk index store (typed, never a segfault)."""


class IndexStoreCorrupt(IndexStoreError):
    """The file is damaged: truncated, bad magic, or a checksum mismatch."""


class IndexStoreStale(IndexStoreError):
    """The persisted snapshot does not match the supplied graph.

    Raised when the graph mutated after the index was saved (or a
    different graph was supplied): attaching would silently desynchronize
    every consumer from the real graph, exactly the hazard
    :meth:`GraphIndex.export_buffers` guards against in-process.
    """


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


class IndexMapping:
    """One live ``mmap`` attachment of a persisted index (close-only).

    Unlike a shared-memory segment there is nothing to *unlink*: the
    backing store is an ordinary file that outlives every attachment by
    design.  The mapping registers with the janitor's cleanup registry so
    process teardown closes the handle, and :meth:`close` is idempotent —
    the janitor regression suite pins that neither ``cleanup()`` nor
    ``sweep_orphans()`` nor a backend shutdown ever unlinks the file or
    double-closes the mapping.
    """

    def __init__(self, path: str, file: Any, buf: _mmap.mmap) -> None:
        self.path = str(path)
        self._file = file
        self.buf = buf
        self.closed = False

    def close(self) -> None:
        """Release the mapping (idempotent; never touches the file itself).

        If numpy views into the buffer are still alive the OS mapping
        cannot be torn down yet (``BufferError``); the handle is marked
        closed anyway and the kernel reclaims the mapping with the
        process — the store file on disk is never affected either way.
        """
        if self.closed:
            return
        self.closed = True
        from ..parallel import janitor

        janitor.unregister_mapping(self)
        try:
            self.buf.close()
        except BufferError:
            pass  # live array views; reclaimed with the process
        try:
            self._file.close()
        except OSError:  # pragma: no cover - close raced with teardown
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"IndexMapping({self.path!r}, {state})"


def _json_stable_meta(meta: Dict[str, Any]) -> str:
    """Serialize ``meta``, refusing values JSON would silently rewrite.

    Attribute values live in ``meta["values"]``; JSON round-trips
    ``str``/``int``/``float``/``bool``/``None`` faithfully but would turn
    a tuple into a list (and reject arbitrary objects) — a persisted
    index must decode the *same* values the in-memory one does, so
    anything JSON-unstable is a save-time error, not a silent rewrite.
    """
    try:
        encoded = json.dumps(meta, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise IndexStoreError(
            "index metadata is not JSON-serializable (attribute values "
            f"must be str/int/float/bool/None to persist): {exc}"
        ) from None
    if json.loads(encoded) != meta:
        raise IndexStoreError(
            "index metadata does not survive a JSON round trip (tuple or "
            "non-string-keyed attribute values cannot be persisted)"
        )
    return encoded


def save_index(index: GraphIndex, path: Any) -> Path:
    """Persist a *fresh* index snapshot to ``path`` (atomic, checksummed).

    The file is written under a temporary name beside the target and
    published with ``os.replace`` — a crash mid-write can never leave a
    half-written index where a later :func:`load_index` would find it.
    Returns the target path and stamps it onto ``index.store_path`` so
    the multiprocess backend can offer workers the mmap attach route.

    Raises :class:`IndexStoreStale` when the index is stale against its
    own graph, and :class:`IndexStoreError` when attribute values cannot
    be represented in the JSON header.
    """
    path = Path(path)
    try:
        meta, arrays = index.export_buffers()
    except RuntimeError as exc:
        raise IndexStoreStale(str(exc)) from None

    regions: Dict[str, np.ndarray] = {
        name: np.ascontiguousarray(array) for name, array in arrays.items()
    }
    # attach accelerators: the per-label node ordering, persisted so an
    # attach skips the O(n log n) argsort `from_buffers` otherwise pays
    order, bounds = _nodes_by_label_arrays(index)
    regions[_DERIVED_PREFIX + "nodes_by_label_order"] = order
    regions[_DERIVED_PREFIX + "nodes_by_label_bounds"] = bounds

    layout: Dict[str, Dict[str, Any]] = {}
    offset = 0
    for name in sorted(regions):
        array = regions[name]
        if array.nbytes:
            offset = _align(offset)
        layout[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset if array.nbytes else 0,
            "crc32": zlib.crc32(array.tobytes()),
        }
        offset += array.nbytes
    header = {
        "format": "repro-graph-index",
        "schema": SCHEMA_VERSION,
        "meta": meta,
        "fingerprint": {
            "num_nodes": index.num_nodes,
            "num_edges": index.num_edges,
            "graph_version": meta["version"],
        },
        "arrays": layout,
        "data_size": offset,
    }
    header_bytes = _json_stable_meta(header).encode("utf-8")
    preamble = _PREAMBLE.pack(
        MAGIC, SCHEMA_VERSION, zlib.crc32(header_bytes), len(header_bytes)
    )
    data_start = _align(_PREAMBLE.size + len(header_bytes))

    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with open(temp, "wb") as writer:
            writer.write(preamble)
            writer.write(header_bytes)
            position = _PREAMBLE.size + len(header_bytes)
            writer.write(b"\0" * (data_start - position))
            position = 0
            for name in sorted(regions):
                array = regions[name]
                if array.nbytes == 0:
                    continue
                start = layout[name]["offset"]
                writer.write(b"\0" * (start - position))
                writer.write(array.tobytes())
                position = start + array.nbytes
        os.replace(temp, path)
    finally:
        if temp.exists():  # pragma: no cover - failure path
            temp.unlink(missing_ok=True)
    index.store_path = str(path)
    return path


def _nodes_by_label_arrays(index: GraphIndex) -> Tuple[np.ndarray, np.ndarray]:
    """The per-label node slices flattened to ``(order, bounds)`` arrays."""
    slices = index._nodes_by_label
    if slices:
        order = np.ascontiguousarray(
            np.concatenate(slices) if len(slices) > 1 else slices[0],
            dtype=np.int64,
        )
    else:
        order = np.empty(0, dtype=np.int64)
    lengths = [len(piece) for piece in slices]
    bounds = np.concatenate(
        ([0], np.cumsum(np.asarray(lengths, dtype=np.int64)))
    ).astype(np.int64) if lengths else np.zeros(1, dtype=np.int64)
    return order, np.ascontiguousarray(bounds)


def read_header(path: Any) -> Tuple[Dict[str, Any], int, int]:
    """Parse and fully verify a store file's header.

    Returns ``(header dict, data_start, expected file size)``.  Performs
    every cheap integrity check — magic, schema version, header checksum,
    recorded-vs-actual file size — so callers touching no region bytes
    (``inspect``, the backend's snapshot match) still reject damaged or
    foreign files with a typed error.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        blob = handle.read(_PREAMBLE.size)
        if len(blob) < _PREAMBLE.size:
            raise IndexStoreCorrupt(
                f"{path}: truncated preamble ({len(blob)} bytes)"
            )
        magic, schema, header_crc, header_len = _PREAMBLE.unpack(blob)
        if magic != MAGIC:
            raise IndexStoreCorrupt(
                f"{path}: not a repro index file (magic {magic!r})"
            )
        if schema != SCHEMA_VERSION:
            raise IndexStoreError(
                f"{path}: unsupported index schema version {schema} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        header_bytes = handle.read(header_len)
        if len(header_bytes) < header_len:
            raise IndexStoreCorrupt(
                f"{path}: truncated header ({len(header_bytes)} of "
                f"{header_len} bytes)"
            )
        if zlib.crc32(header_bytes) != header_crc:
            raise IndexStoreCorrupt(f"{path}: header checksum mismatch")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IndexStoreCorrupt(
                f"{path}: unreadable header JSON ({exc})"
            ) from None
        data_start = _align(_PREAMBLE.size + header_len)
        expected = data_start + int(header["data_size"])
        actual = os.fstat(handle.fileno()).st_size
        if actual < expected:
            raise IndexStoreCorrupt(
                f"{path}: truncated data ({actual} of {expected} bytes)"
            )
    return header, data_start, expected


def snapshot_matches(
    path: Any, num_nodes: int, num_edges: int, version: int
) -> bool:
    """Whether ``path`` holds a valid snapshot with this exact fingerprint.

    The multiprocess backend's transport probe: cheap (header-only), and
    *never* raises — an unreadable, corrupt or mismatched file simply
    means "do not offer the mmap route".
    """
    try:
        header, _, _ = read_header(path)
    except (OSError, IndexStoreError):
        return False
    fingerprint = header.get("fingerprint", {})
    return (
        fingerprint.get("num_nodes") == num_nodes
        and fingerprint.get("num_edges") == num_edges
        and fingerprint.get("graph_version") == version
    )


def _region_views(
    header: Dict[str, Any], buf: Any, data_start: int
) -> Dict[str, np.ndarray]:
    """Read-only array views over every region of an open buffer."""
    arrays: Dict[str, np.ndarray] = {}
    for name, entry in header["arrays"].items():
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        view = np.ndarray(
            shape, dtype=dtype, buffer=buf,
            offset=data_start + entry["offset"],
        )
        if view.flags.writeable:
            view.flags.writeable = False
        arrays[name] = view
    return arrays


def _verify_regions(
    path: Path, header: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> None:
    for name, entry in header["arrays"].items():
        if zlib.crc32(arrays[name].tobytes()) != entry["crc32"]:
            raise IndexStoreCorrupt(
                f"{path}: checksum mismatch in region {name!r}"
            )


def load_index(
    path: Any,
    graph: Any = None,
    mmap: bool = True,
    verify: Optional[bool] = None,
) -> GraphIndex:
    """Attach a persisted index from ``path``.

    ``mmap=True`` (the default) maps the file read-only and builds
    zero-copy array views — the near-free attach; pages fault in lazily
    as queries touch them.  ``mmap=False`` reads everything eagerly into
    process memory (no open file handle survives the call).

    ``verify`` controls region checksums: ``None`` means "eager loads
    verify, mmap attaches don't" (verifying an mmap pages in the whole
    file); the header, schema version and file size are *always* checked
    either way.

    ``graph`` binds the result to a live graph: the stored fingerprint
    must match ``(graph.num_nodes, graph.num_edges, graph.version)`` or
    :class:`IndexStoreStale` is raised — a graph mutated since the save
    can never silently pick up the old snapshot.  The fingerprint is a
    mutation *counter*, not a content hash — two graphs replaying the
    same construction sequence with different values collide — so the
    bind also spot-checks a deterministic node sample (labels, attribute
    values, out-neighbors) against the snapshot and raises
    :class:`IndexStoreStale` on any mismatch.  Without a graph the
    index comes back *detached* (like :meth:`GraphIndex.from_buffers`):
    every array-backed operation works, graph-touching accessors don't.
    """
    path = Path(path)
    header, data_start, _ = read_header(path)
    if verify is None:
        verify = not mmap
    meta = header["meta"]
    fingerprint = header["fingerprint"]
    if graph is not None:
        actual = {
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "graph_version": graph.version,
        }
        if actual != fingerprint:
            raise IndexStoreStale(
                f"{path}: persisted snapshot {fingerprint} does not match "
                f"the supplied graph {actual} — the graph mutated since "
                "the index was saved; rebuild with GraphIndex.save()"
            )

    mapping: Optional[IndexMapping] = None
    if mmap:
        handle = open(path, "rb")
        try:
            buf = _mmap.mmap(
                handle.fileno(), 0, access=_mmap.ACCESS_READ
            )
        except (OSError, ValueError):
            handle.close()
            raise
        mapping = IndexMapping(str(path), handle, buf)
        from ..parallel import janitor

        janitor.register_mapping(mapping)
        arrays = _region_views(header, buf, data_start)
    else:
        with open(path, "rb") as handle:
            handle.seek(data_start)
            blob = handle.read(int(header["data_size"]))
        arrays = _region_views(header, blob, 0)
    if verify:
        _verify_regions(path, header, arrays)

    buffer_arrays = {
        name: array
        for name, array in arrays.items()
        if not name.startswith(_DERIVED_PREFIX)
    }
    index = GraphIndex.from_buffers(
        meta,
        buffer_arrays,
        nodes_order=arrays.get(_DERIVED_PREFIX + "nodes_by_label_order"),
        nodes_bounds=arrays.get(_DERIVED_PREFIX + "nodes_by_label_bounds"),
    )
    if graph is not None:
        try:
            _spot_check_graph(index, graph)
        except IndexStoreStale as exc:
            if mapping is not None:
                mapping.close()
            raise IndexStoreStale(f"{path}: {exc}") from None
        index.graph = graph
        index.version = graph.version
    index.store_path = str(path)
    index.store_mapping = mapping
    return index


def release_index(index: GraphIndex) -> bool:
    """Release an index's store attachment, if it has one (idempotent).

    The retirement seam for snapshot consumers (the serving layer's MVCC
    chain): when the last reader of a version drops its lease, the
    version's index lets go of its ``mmap`` handle here instead of waiting
    for process teardown.  Returns ``True`` when a live mapping was
    closed; an index with no store attachment (built in memory, or
    eager-loaded) is a no-op ``False``.  The store *file* is never
    touched — it outlives every attachment by design.
    """
    mapping = getattr(index, "store_mapping", None)
    if mapping is None or mapping.closed:
        return False
    mapping.close()
    index.store_mapping = None
    return True


#: Nodes sampled by the bind-time content spot-check.
_SPOT_CHECK_SAMPLE = 64


def _spot_check_graph(index: GraphIndex, graph: Any) -> None:
    """Compare a deterministic node sample between snapshot and graph.

    The fingerprint ``(num_nodes, num_edges, version)`` is cheap but not
    content-sensitive: ``Graph.version`` counts mutations, so two graphs
    built by identical operation sequences with *different values* (two
    same-shape JSON files, say) collide.  Sampling ~64 nodes' labels,
    attribute dicts and out-neighbor sets catches that class of mix-up
    at O(1) cost instead of paging in the whole snapshot.
    """
    n = index.num_nodes
    if n == 0:
        return
    for node in range(0, n, max(1, n // _SPOT_CHECK_SAMPLE)):
        stored_label = index.node_label_values[index.node_label_codes[node]]
        if stored_label != graph.node_label(node):
            raise IndexStoreStale(
                f"snapshot disagrees with the supplied graph at node "
                f"{node} (label {stored_label!r} vs "
                f"{graph.node_label(node)!r}) — same fingerprint, "
                "different content; rebuild with GraphIndex.save()"
            )
        stored_attrs = {}
        for attr in index.attr_names:
            code = int(index._attr_codes[attr][node])
            if code:
                stored_attrs[attr] = index.value_of_code[code]
        if stored_attrs != dict(graph.node_attrs(node)):
            raise IndexStoreStale(
                f"snapshot disagrees with the supplied graph at node "
                f"{node} (attrs {stored_attrs!r} vs "
                f"{dict(graph.node_attrs(node))!r}) — same fingerprint, "
                "different content; rebuild with GraphIndex.save()"
            )
        stored_out = set(index.neighbors(node, outward=True).tolist())
        actual_out = set(graph.out_neighbors(node))
        if stored_out != actual_out:
            raise IndexStoreStale(
                f"snapshot disagrees with the supplied graph at node "
                f"{node} (out-neighbors differ) — same fingerprint, "
                "different content; rebuild with GraphIndex.save()"
            )


def inspect_index(path: Any) -> Dict[str, Any]:
    """Header-only facts about a persisted index (for ``repro index inspect``).

    Verifies the preamble, schema and header checksum, touches no region
    bytes, and returns a JSON-friendly summary: fingerprint, label/attr
    counts, per-region layout and total sizes.
    """
    path = Path(path)
    header, data_start, expected = read_header(path)
    meta = header["meta"]
    return {
        "path": str(path),
        "schema": header["schema"],
        "fingerprint": dict(header["fingerprint"]),
        "node_labels": len(meta["node_label_values"]),
        "edge_labels": len(meta["edge_label_values"]),
        "attr_names": list(meta["attr_names"]),
        "values": len(meta["values"]),
        "data_start": data_start,
        "data_size": int(header["data_size"]),
        "file_size": expected,
        "arrays": {
            name: {
                "dtype": entry["dtype"],
                "shape": list(entry["shape"]),
                "bytes": int(
                    np.dtype(entry["dtype"]).itemsize
                    * int(np.prod(entry["shape"], dtype=np.int64))
                ),
                "crc32": entry["crc32"],
            }
            for name, entry in sorted(header["arrays"].items())
        },
    }
