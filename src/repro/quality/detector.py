"""Error detection with discovered rules (Exp-5's consumers).

Three detectors, one per rule system compared in Figure 7:

* **GFDs** — nodes contained in violations of the discovered GFDs
  (validation of Section 2.2; for negative GFDs, any match satisfying ``X``
  is a violation);
* **GCFDs** — same machinery over the path-restricted rule set;
* **AMIE** — nodes incident to a body grounding whose predicted head fact
  is absent (under the PCA, only subjects with some head fact count).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from ..baselines.amie import AmieMiner, AmieRule
from ..gfd.gfd import GFD
from ..gfd.satisfaction import Violation, find_violations
from ..graph.graph import Graph
from .metrics import DetectionMetrics, detection_metrics

__all__ = [
    "detect_gfd_violations",
    "nodes_in_violations",
    "gfd_detection",
    "amie_detection",
]


def detect_gfd_violations(
    graph: Graph, sigma: Sequence[GFD], max_per_gfd: int = 10_000
) -> List[Violation]:
    """All violations of ``Σ`` in ``graph`` (capped per GFD)."""
    violations: List[Violation] = []
    for gfd in sigma:
        violations.extend(find_violations(graph, gfd, max_violations=max_per_gfd))
    return violations


def nodes_in_violations(violations: Iterable[Violation]) -> Set[int]:
    """``V^GFD``: every node contained in some violating match."""
    nodes: Set[int] = set()
    for violation in violations:
        nodes.update(violation.match)
    return nodes


def gfd_detection(
    graph: Graph,
    sigma: Sequence[GFD],
    dirty_nodes: Iterable[int],
    max_per_gfd: int = 10_000,
) -> DetectionMetrics:
    """Run GFD validation on a dirty graph and score against ground truth."""
    violations = detect_gfd_violations(graph, sigma, max_per_gfd)
    return detection_metrics(nodes_in_violations(violations), dirty_nodes)


def amie_detection(
    graph: Graph,
    rules: Sequence[AmieRule],
    dirty_nodes: Iterable[int],
    miner: AmieMiner = None,
) -> DetectionMetrics:
    """Score AMIE's missing-fact predictions against ground truth.

    ``V^A`` is the set of nodes appearing in a body grounding that lacks the
    predicted head relation (the paper: "the nodes that do not have the
    predicted relation").
    """
    if miner is None:
        miner = AmieMiner(graph)
    flagged: Set[int] = set()
    for rule in rules:
        if rule.head.relation not in miner.relations:
            continue
        for x, y in miner.predicted_missing(rule):
            flagged.add(x)
            flagged.add(y)
    return detection_metrics(flagged, dirty_nodes)
