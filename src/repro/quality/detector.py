"""Error detection with discovered rules (Exp-5's consumers).

Three detectors, one per rule system compared in Figure 7:

* **GFDs** — nodes contained in violations of the discovered GFDs
  (validation of Section 2.2; for negative GFDs, any match satisfying ``X``
  is a violation);
* **GCFDs** — same machinery over the path-restricted rule set;
* **AMIE** — nodes incident to a body grounding whose predicted head fact
  is absent (under the PCA, only subjects with some head fact count).

Since PR 3 the GFD/GCFD path runs on the compiled enforcement plan
(grouped patterns, columnar masks, CSR index) instead of per-rule match
enumeration over the dict graph — same violation sets, much faster on
shared-pattern rule sets.  Since PR 5 it goes through the
:class:`~repro.session.Session` facade: one-shot calls open a scoped
session, and callers holding a pipeline session can pass it in to reuse
its backend, index snapshot and compiled plan.

**Cap semantics** (``max_per_gfd``): when a rule has more violations than
the cap, the retained subset is a uniform ``random.Random(seed)`` sample
over the *lexicographically sorted* full violation set.  The pre-PR 3
behavior kept the first ``max_per_gfd`` violations in match-enumeration
order, so :func:`nodes_in_violations` over/under-counted deterministically
with the backend's iteration order; the seeded sample is deterministic
given ``(seed, violation set)`` and independent of enumeration order,
engine backend and worker count.  Violation *counts* are always exact —
only the retained witnesses are sampled.

Consequently ``max_per_gfd`` is now a *report-size* knob, not a work
bound: the engine materializes each rule's full violation set before
sampling (order-independence cannot be had from a truncated enumeration).
At reproduction scale this is immaterial; a streaming cap for
adversarially dense rules on huge graphs is a ROADMAP open item.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from ..baselines.amie import AmieMiner, AmieRule
from ..core.config import EnforcementConfig
from ..gfd.gfd import GFD
from ..gfd.satisfaction import Violation
from ..graph.graph import Graph
from .metrics import DetectionMetrics, detection_metrics

__all__ = [
    "detect_gfd_violations",
    "nodes_in_violations",
    "gfd_detection",
    "amie_detection",
]


def detect_gfd_violations(
    graph: Graph,
    sigma: Sequence[GFD],
    max_per_gfd: Optional[int] = 10_000,
    seed: int = 0,
    session: Optional["Session"] = None,
) -> List[Violation]:
    """Violations of ``Σ`` in ``graph``, seeded-capped per GFD.

    Runs one :meth:`~repro.session.Session.enforce` pass.  Without a
    ``session`` a scoped one is opened (serial backend, single shard —
    detection is a metrics convenience) and closed again; for repeated or
    scaled-out detection pass the pipeline's own session, whose backend,
    index snapshot and compiled plan are then reused — note the caps are
    the *session's* enforcement config in that case, not ``max_per_gfd``/
    ``seed``.  ``max_per_gfd=None`` retains every violation.
    """
    from ..session import Session

    if session is not None:
        if session.graph is not graph:
            raise ValueError(
                "the supplied session serves a different graph than the one "
                "being checked — open a session over this graph (detection "
                "runs against session.graph)"
            )
        policy = session.enforcement
        if (
            policy.max_violation_samples != max_per_gfd
            or policy.sample_seed != seed
            or policy.max_violations_per_rule is not None
        ):
            raise ValueError(
                "the session's enforcement sampling (max_violation_samples="
                f"{policy.max_violation_samples!r}, sample_seed="
                f"{policy.sample_seed!r}, max_violations_per_rule="
                f"{policy.max_violations_per_rule!r}) does not match the "
                f"requested caps (max_per_gfd={max_per_gfd!r}, seed={seed!r}, "
                "no witness cap); a session-backed detection uses the "
                "session's EnforcementConfig — build the session with "
                "matching values (a witness cap would make detection "
                "shard-dependent)"
            )
        return session.enforce(list(sigma)).violations()
    config = EnforcementConfig(
        max_violation_samples=max_per_gfd,
        sample_seed=seed,
    )
    with Session(
        graph, enforcement=config, backend="serial", num_workers=1
    ) as scoped:
        return scoped.enforce(list(sigma)).violations()


def nodes_in_violations(violations: Iterable[Violation]) -> Set[int]:
    """``V^GFD``: every node contained in some violating match.

    Over a capped :func:`detect_gfd_violations` result this is computed
    from the retained sample — see the module docstring for the seeded,
    order-independent cap semantics.
    """
    nodes: Set[int] = set()
    for violation in violations:
        nodes.update(violation.match)
    return nodes


def gfd_detection(
    graph: Graph,
    sigma: Sequence[GFD],
    dirty_nodes: Iterable[int],
    max_per_gfd: Optional[int] = 10_000,
    seed: int = 0,
    session: Optional["Session"] = None,
) -> DetectionMetrics:
    """Run GFD validation on a dirty graph and score against ground truth.

    ``session`` optionally reuses a pipeline's
    :class:`~repro.session.Session` (see :func:`detect_gfd_violations`).
    """
    violations = detect_gfd_violations(
        graph, sigma, max_per_gfd, seed=seed, session=session
    )
    return detection_metrics(nodes_in_violations(violations), dirty_nodes)


def amie_detection(
    graph: Graph,
    rules: Sequence[AmieRule],
    dirty_nodes: Iterable[int],
    miner: AmieMiner = None,
) -> DetectionMetrics:
    """Score AMIE's missing-fact predictions against ground truth.

    ``V^A`` is the set of nodes appearing in a body grounding that lacks the
    predicted head relation (the paper: "the nodes that do not have the
    predicted relation").
    """
    if miner is None:
        miner = AmieMiner(graph)
    flagged: Set[int] = set()
    for rule in rules:
        if rule.head.relation not in miner.relations:
            continue
        for x, y in miner.predicted_missing(rule):
            flagged.add(x)
            flagged.add(y)
    return detection_metrics(flagged, dirty_nodes)
