"""Error detection and accuracy metrics (Exp-5)."""

from .detector import (
    amie_detection,
    detect_gfd_violations,
    gfd_detection,
    nodes_in_violations,
)
from .metrics import DetectionMetrics, detection_metrics

__all__ = [
    "DetectionMetrics",
    "detection_metrics",
    "detect_gfd_violations",
    "nodes_in_violations",
    "gfd_detection",
    "amie_detection",
]
