"""Detection-quality metrics (Exp-5).

The paper's accuracy is ``|V^X ∩ V^E| / |V^E|`` — the fraction of truly
dirty nodes a rule system flags (a recall).  Precision is reported as a
bonus diagnostic for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

__all__ = ["DetectionMetrics", "detection_metrics"]


@dataclass(frozen=True)
class DetectionMetrics:
    """Accuracy of an error-detection run against ground truth."""

    flagged: int
    dirty: int
    true_positives: int

    @property
    def accuracy(self) -> float:
        """The paper's measure: ``|V^X ∩ V^E| / |V^E|``."""
        return self.true_positives / self.dirty if self.dirty else 0.0

    @property
    def precision(self) -> float:
        """``|V^X ∩ V^E| / |V^X|`` (not reported in the paper; diagnostic)."""
        return self.true_positives / self.flagged if self.flagged else 0.0


def detection_metrics(
    flagged_nodes: Iterable[int], dirty_nodes: Iterable[int]
) -> DetectionMetrics:
    """Compute detection metrics from flagged and ground-truth node sets."""
    flagged: Set[int] = set(flagged_nodes)
    dirty: Set[int] = set(dirty_nodes)
    return DetectionMetrics(
        flagged=len(flagged),
        dirty=len(dirty),
        true_positives=len(flagged & dirty),
    )
