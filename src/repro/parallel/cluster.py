"""A metered shared-nothing cluster simulation.

The paper deploys its parallel algorithms on 20 EC2 instances (Section 7).
This reproduction runs the *same work units* on one machine and reports the
**makespan** a real cluster would observe:

* every work unit executes for real and its wall-clock time is charged to
  the worker it was assigned to;
* a *superstep* (the BSP rounds of ``ParDis``/``ParCover``, Figure 3/4)
  contributes ``max_w busy(w)`` to the parallel clock — workers within a
  superstep run concurrently, supersteps are barriers;
* master-side coordination is metered separately and always added (it is
  sequential in the real system too);
* communication is charged with a simple linear model
  (``items × seconds_per_item``) onto the receiving worker, mirroring the
  edge/match shipping of the incremental joins.

This preserves what the paper's scalability experiments measure — how the
*dominant per-worker compute* shrinks as workers are added and how skew and
balancing shift it — without needing 20 physical hosts.  See DESIGN.md
(substitutions) for the full argument.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs.tracer import NULL_TRACER

__all__ = ["WorkerMetrics", "ClusterMetrics", "SimulatedCluster"]

#: Default modeled communication cost: 100ns per shipped item (edge, match,
#: pivot id...), in line with ~10M small records/s effective throughput.
DEFAULT_SECONDS_PER_ITEM = 1e-7


@dataclass
class WorkerMetrics:
    """Per-worker accounting."""

    busy_seconds: float = 0.0
    comm_seconds: float = 0.0
    units_executed: int = 0
    items_received: int = 0
    #: Items received worker-to-worker through a staging segment (a subset
    #: of the communication charge that never transits the master).
    items_staged: int = 0

    @property
    def total_seconds(self) -> float:
        """Compute plus modeled communication time."""
        return self.busy_seconds + self.comm_seconds


@dataclass
class ClusterMetrics:
    """Whole-run accounting."""

    supersteps: int = 0
    parallel_seconds: float = 0.0
    master_seconds: float = 0.0
    total_work_seconds: float = 0.0
    #: Real wall-clock the master spent recovering failed workers mid-
    #: superstep (respawn + install-log replay).  Tracked outside the
    #: modeled busy/makespan ledger: recovery stalls the master for real,
    #: it is not simulated worker compute.
    recovery_seconds: float = 0.0

    @property
    def elapsed_parallel(self) -> float:
        """The modeled parallel response time (makespan + master)."""
        return self.parallel_seconds + self.master_seconds


class SimulatedCluster:
    """``n`` workers plus a master, with BSP superstep semantics.

    Typical use::

        cluster = SimulatedCluster(8)
        with cluster.superstep() as step:
            for worker, unit in assignments:
                step.run(worker, unit)          # returns the unit's result
            step.ship(worker, items=1234)       # charge communication
        with cluster.master():
            ... master-side aggregation ...
        print(cluster.metrics.elapsed_parallel)
    """

    def __init__(
        self,
        num_workers: int,
        seconds_per_item: float = DEFAULT_SECONDS_PER_ITEM,
        tracer: Any = NULL_TRACER,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.seconds_per_item = seconds_per_item
        #: The session tracer (``NULL_TRACER`` when tracing is off); the
        #: superstep/master context managers open spans on it and op-aware
        #: ``charge`` calls synthesize worker-lane op spans.
        self.tracer = tracer
        self.workers = [WorkerMetrics() for _ in range(num_workers)]
        self.metrics = ClusterMetrics()

    # ------------------------------------------------------------------
    @contextmanager
    def superstep(self, label: Optional[str] = None) -> Iterator["_Superstep"]:
        """One BSP round: all enclosed work runs 'concurrently'."""
        tracer = self.tracer
        span = (
            tracer.begin(
                label or f"superstep {self.metrics.supersteps}", "superstep"
            )
            if tracer.enabled
            else None
        )
        step = _Superstep(self)
        try:
            yield step
        finally:
            makespan = max(step.busy, default=0.0)
            self.metrics.supersteps += 1
            self.metrics.parallel_seconds += makespan
            self.metrics.total_work_seconds += sum(step.busy)
            if span is not None:
                tracer.end(span)

    @contextmanager
    def master(self, label: str = "master") -> Iterator[None]:
        """Meter master-side (sequential) coordination."""
        tracer = self.tracer
        span = tracer.begin(label, "master") if tracer.enabled else None
        started = time.perf_counter()
        try:
            yield
        finally:
            self.metrics.master_seconds += time.perf_counter() - started
            if span is not None:
                tracer.end(span)

    def ship_to_master(self, items: int) -> None:
        """Charge the master for receiving ``items`` records from workers."""
        self.metrics.master_seconds += items * self.seconds_per_item

    def reset(self) -> None:
        """Zero all metrics (reuse the cluster across runs)."""
        self.workers = [WorkerMetrics() for _ in range(self.num_workers)]
        self.metrics = ClusterMetrics()


class _Superstep:
    """Work executed inside one :meth:`SimulatedCluster.superstep` block."""

    def __init__(self, cluster: SimulatedCluster) -> None:
        self._cluster = cluster
        self.busy: List[float] = [0.0] * cluster.num_workers

    def run(
        self, worker: int, unit: Callable[[], Any], op: Optional[str] = None
    ) -> Any:
        """Execute ``unit`` on ``worker``, metering its wall-clock time."""
        started = time.perf_counter()
        result = unit()
        elapsed = time.perf_counter() - started
        self.charge(worker, elapsed, op)
        return result

    def charge(
        self, worker: int, seconds: float, op: Optional[str] = None
    ) -> None:
        """Credit ``worker`` with pre-measured compute time.

        Real execution backends (the multiprocess ``ParDis`` engine) run the
        work units out-of-process and report each unit's self-measured
        compute seconds; charging them here keeps the modeled BSP metrics
        (makespan, per-worker busy time) comparable across backends.  When
        ``op`` is given and tracing is on, the charge also lands as an op
        span on ``worker``'s trace lane — reusing the piggybacked timing,
        no extra round trip.
        """
        self.busy[worker] += seconds
        metrics = self._cluster.workers[worker]
        metrics.busy_seconds += seconds
        metrics.units_executed += 1
        tracer = self._cluster.tracer
        if op is not None and tracer.enabled:
            tracer.worker_op(worker, op, seconds)

    def recover(self, seconds: float) -> None:
        """Record master-side worker-recovery stall time for this step.

        Supervised backends call this after respawning a worker and
        replaying its install log mid-superstep; the time lands in
        :attr:`ClusterMetrics.recovery_seconds` so fault-injection runs
        can report recovery latency without skewing the modeled makespan.
        """
        self._cluster.metrics.recovery_seconds += seconds

    def ship(self, worker: int, items: int) -> None:
        """Charge ``worker`` for receiving ``items`` shipped records."""
        cost = items * self._cluster.seconds_per_item
        self.busy[worker] += cost
        metrics = self._cluster.workers[worker]
        metrics.comm_seconds += cost
        metrics.items_received += items

    def stage(self, worker: int, items: int) -> None:
        """Charge ``worker`` for items received worker-to-worker.

        Same linear cost model as :meth:`ship` (the receiver pays), but
        tracked separately: staged items cross a shared-memory segment
        between workers instead of transiting the master.
        """
        self.ship(worker, items)
        self._cluster.workers[worker].items_staged += items

    def broadcast(self, items: int, exclude: Optional[int] = None) -> None:
        """Charge every worker (except ``exclude``) for a broadcast."""
        for worker in range(self._cluster.num_workers):
            if worker == exclude:
                continue
            self.ship(worker, items)
