"""``ParCover`` — parallel cover computation (Section 6.3, Figure 4).

``Σ`` is partitioned into *groups* of GFDs with isomorphic patterns.  By the
independence property (Lemma 6), whether ``Σ \\ {φ} ⊨ φ`` only depends on
``Σ̄_Q`` — the GFDs whose patterns are *embedded* in ``φ``'s pattern — so
each group can be checked in isolation against its embedded set, in parallel
across groups.  Work units (group, embedded set) are distributed over the
workers with the LPT factor-2 balancing the paper cites ([4]).

Grouping is by pattern isomorphism *ignoring pivots*: implication is
pivot-blind, so two GFDs equal up to re-pivoting imply each other and must
be resolved greedily inside one unit (keeping one), never independently
(dropping both).

``ParCovern`` — the paper's no-grouping baseline — checks every GFD against
the full remainder, which re-enumerates embeddings of all of ``Σ`` for every
test; the grouping speedup of Exp-4 comes precisely from skipping that.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.cover import CoverResult, _scan_order
from ..gfd.gfd import GFD
from ..gfd.implication import ImplicationChecker
from ..pattern.canonical import canonical_key
from ..pattern.embedding import is_embedded
from ..pattern.pattern import Pattern
from .balancer import assign_units_lpt
from .cluster import SimulatedCluster

__all__ = ["parallel_cover", "parallel_cover_ungrouped"]


def _pattern_group_key(pattern: Pattern) -> Tuple:
    """Isomorphism key ignoring the pivot (min over pivot placements)."""
    return min(
        canonical_key(pattern.with_pivot(variable))
        for variable in pattern.variables()
    )


def _group_sigma(sigma: Sequence[GFD]) -> Dict[Tuple, List[int]]:
    """Partition GFD indices by pattern-isomorphism class."""
    groups: Dict[Tuple, List[int]] = {}
    for index, gfd in enumerate(sigma):
        groups.setdefault(_pattern_group_key(gfd.pattern), []).append(index)
    return groups


def _embedded_indices(
    sigma: Sequence[GFD], representative: Pattern, group: List[int]
) -> List[int]:
    """Indices of GFDs whose pattern embeds into ``representative``.

    This is ``Σ̄_Q`` of Lemma 6 — the only GFDs that can participate in a
    derivation over ``representative``'s pattern.
    """
    embedded: List[int] = []
    group_set = set(group)
    for index, gfd in enumerate(sigma):
        if index in group_set:
            embedded.append(index)
            continue
        if is_embedded(gfd.pattern, representative, pivot_preserving=False):
            embedded.append(index)
    return embedded


def _check_group(
    sigma: Sequence[GFD], group: List[int], embedded: List[int]
) -> List[int]:
    """``ParImp``: greedy redundancy elimination within one group.

    Tests each group member against (embedded set minus already-removed group
    members minus itself); returns the removed indices.
    """
    removed: Set[int] = set()
    ordered = sorted(
        group,
        key=lambda index: (
            -sigma[index].pattern.num_edges,
            -len(sigma[index].lhs),
            str(sigma[index]),
        ),
    )
    for index in ordered:
        context = [
            sigma[position]
            for position in embedded
            if position != index and position not in removed
        ]
        if ImplicationChecker(context).implies(sigma[index]):
            removed.add(index)
    return sorted(removed)


def parallel_cover(
    sigma: Sequence[GFD],
    num_workers: int = 4,
    cluster: Optional[SimulatedCluster] = None,
) -> Tuple[CoverResult, SimulatedCluster]:
    """Compute a cover of ``Σ`` with grouping + LPT balancing (``ParCover``)."""
    started = time.perf_counter()
    sigma = list(sigma)
    cluster = cluster or SimulatedCluster(num_workers)

    with cluster.master():
        groups = _group_sigma(sigma)
        ordered_keys = sorted(groups)
        units: List[Tuple[List[int], List[int]]] = []
        for key in ordered_keys:
            group = groups[key]
            representative = sigma[group[0]].pattern
            embedded = _embedded_indices(sigma, representative, group)
            units.append((group, embedded))
        weights = [len(group) * max(1, len(embedded)) for group, embedded in units]
        assignment = assign_units_lpt(weights, cluster.num_workers)

    removed_indices: Set[int] = set()
    with cluster.superstep() as step:
        for worker, unit_ids in enumerate(assignment):
            def work(unit_ids: List[int] = unit_ids) -> List[int]:
                removed: List[int] = []
                for unit_id in unit_ids:
                    group, embedded = units[unit_id]
                    removed.extend(_check_group(sigma, group, embedded))
                return removed
            for index in step.run(worker, work):
                removed_indices.add(index)
    cluster.ship_to_master(len(removed_indices))

    cover = [gfd for index, gfd in enumerate(sigma) if index not in removed_indices]
    removed = [sigma[index] for index in sorted(removed_indices)]
    result = CoverResult(
        cover=cover,
        removed=removed,
        implication_tests=len(sigma),
        elapsed_seconds=time.perf_counter() - started,
    )
    return result, cluster


def parallel_cover_ungrouped(
    sigma: Sequence[GFD],
    num_workers: int = 4,
    cluster: Optional[SimulatedCluster] = None,
) -> Tuple[CoverResult, SimulatedCluster]:
    """``ParCovern``: leave-one-out checks against the *full* set, no groups.

    Mutual-implication pairs are resolved by a deterministic tie-break: a
    GFD is only removed when it is implied by the remainder *after* removing
    every GFD that precedes it in the scan order and was itself removed —
    matching the sequential semantics, but paying full-``Σ`` embedding
    enumeration per test, distributed round-robin.
    """
    started = time.perf_counter()
    sigma = list(sigma)
    cluster = cluster or SimulatedCluster(num_workers)

    with cluster.master():
        order = _scan_order(sigma)

    # Distribute tests in scan-order round-robin.  Each worker evaluates its
    # share against the full Σ minus the candidate (the expensive part); the
    # master then reconciles mutual implications sequentially (cheap —
    # implication verdicts are reused, only chains are re-checked).
    verdicts: Dict[int, bool] = {}
    with cluster.superstep() as step:
        assignments: List[List[int]] = [[] for _ in range(cluster.num_workers)]
        for position, index in enumerate(order):
            assignments[position % cluster.num_workers].append(index)
        for worker, indices in enumerate(assignments):
            def work(indices: List[int] = indices) -> List[Tuple[int, bool]]:
                results = []
                for index in indices:
                    remainder = [
                        gfd for position, gfd in enumerate(sigma)
                        if position != index
                    ]
                    checker = ImplicationChecker(remainder)
                    results.append((index, checker.implies(sigma[index])))
                return results
            for index, verdict in step.run(worker, work):
                verdicts[index] = verdict
    cluster.ship_to_master(len(sigma))

    removed_indices: Set[int] = set()
    with cluster.master():
        for index in order:
            if not verdicts[index]:
                continue
            remainder = [
                gfd
                for position, gfd in enumerate(sigma)
                if position != index and position not in removed_indices
            ]
            if ImplicationChecker(remainder).implies(sigma[index]):
                removed_indices.add(index)

    cover = [gfd for index, gfd in enumerate(sigma) if index not in removed_indices]
    removed = [sigma[index] for index in sorted(removed_indices)]
    result = CoverResult(
        cover=cover,
        removed=removed,
        implication_tests=len(sigma),
        elapsed_seconds=time.perf_counter() - started,
    )
    return result, cluster


# re-export for the baselines module
par_cover_no_grouping = parallel_cover_ungrouped
