"""``ParCover`` — parallel cover computation (Section 6.3, Figure 4).

``Σ`` is partitioned into *groups* of GFDs with isomorphic patterns.  By the
independence property (Lemma 6), whether ``Σ \\ {φ} ⊨ φ`` only depends on
``Σ̄_Q`` — the GFDs whose patterns are *embedded* in ``φ``'s pattern — so
each group can be checked in isolation against its embedded set, in parallel
across groups.  Work units (group, embedded set) are distributed over the
workers with the LPT factor-2 balancing the paper cites ([4]).

Grouping is by pattern isomorphism *ignoring pivots*: implication is
pivot-blind, so two GFDs equal up to re-pivoting imply each other and must
be resolved greedily inside one unit (keeping one), never independently
(dropping both).

``ParCovern`` — the paper's no-grouping baseline — checks every GFD against
the full remainder, which re-enumerates embeddings of all of ``Σ`` for every
test; the grouping speedup of Exp-4 comes precisely from skipping that.

Execution runs on the same :class:`~repro.parallel.backend.ShardWorker` op
layer as ``ParDis`` and enforcement: the master broadcasts ``Σ`` once
(``op_sigma``), ships work units as index lists, and receives removed
indices / implication verdicts — scalars.  ``backend`` selects ``"serial"``
(inline under the simulated cluster, the historical semantics and default)
or ``"multiprocess"`` (real per-worker processes; graph-free workers, since
implication needs no graph), or accepts a pre-started
:class:`~repro.parallel.backend.ExecutionBackend` — e.g. the pool a
discovery run just used — so the cover phase shards over the same worker
pools as discovery.  Covers are identical across backends and worker counts
by construction (unit checks are deterministic and independent); the
differential harness asserts it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.cover import CoverResult, _scan_order
from ..gfd.gfd import GFD
from ..gfd.implication import ImplicationChecker, greedy_group_elimination
from ..pattern.canonical import canonical_key
from ..pattern.embedding import is_embedded
from ..pattern.pattern import Pattern
from .backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    make_backend,
    next_node_key,
    warn_standalone_entry_point,
)
from .balancer import assign_units_lpt
from .cluster import SimulatedCluster
from .costs import ChaseCostModel

__all__ = ["parallel_cover", "parallel_cover_ungrouped"]



def _pattern_group_key(pattern: Pattern) -> Tuple:
    """Isomorphism key ignoring the pivot (min over pivot placements)."""
    return min(
        canonical_key(pattern.with_pivot(variable))
        for variable in pattern.variables()
    )


def _group_sigma(sigma: Sequence[GFD]) -> Dict[Tuple, List[int]]:
    """Partition GFD indices by pattern-isomorphism class."""
    groups: Dict[Tuple, List[int]] = {}
    for index, gfd in enumerate(sigma):
        groups.setdefault(_pattern_group_key(gfd.pattern), []).append(index)
    return groups


def _embedded_indices(
    sigma: Sequence[GFD], representative: Pattern, group: List[int]
) -> List[int]:
    """Indices of GFDs whose pattern embeds into ``representative``.

    This is ``Σ̄_Q`` of Lemma 6 — the only GFDs that can participate in a
    derivation over ``representative``'s pattern.
    """
    embedded: List[int] = []
    group_set = set(group)
    for index, gfd in enumerate(sigma):
        if index in group_set:
            embedded.append(index)
            continue
        if is_embedded(gfd.pattern, representative, pivot_preserving=False):
            embedded.append(index)
    return embedded


def _check_group(
    sigma: Sequence[GFD], group: List[int], embedded: List[int]
) -> List[int]:
    """``ParImp`` on one unit (kept as the serial reference entry point)."""
    return greedy_group_elimination(sigma, group, embedded)


class _CoverSession:
    """Backend + cluster lifecycle shared by both cover variants.

    Owns the backend when given a name (or ``None`` — the historical
    serial default) and shuts it down on exit; a supplied
    :class:`ExecutionBackend` instance is borrowed (the caller keeps
    ownership — e.g. the pools of a finished discovery run), and only this
    session's ``Σ`` slot is dropped.
    """

    def __init__(
        self,
        num_workers: int,
        cluster: Optional[SimulatedCluster],
        backend: Union[None, str, ExecutionBackend],
        fault: Any = "auto",
    ) -> None:
        if isinstance(backend, ExecutionBackend):
            num_workers = backend.num_workers
        self.cluster = cluster or SimulatedCluster(num_workers)
        if isinstance(backend, ExecutionBackend):
            self.backend = backend
            self.owns = False
        else:
            name = backend or "serial"
            if name not in BACKEND_NAMES:
                raise ValueError(
                    f"unknown parallel backend {name!r} "
                    f"(expected one of {BACKEND_NAMES})"
                )
            # graph-free cover workers are supervised like any others —
            # the install log then holds just the Σ broadcast
            self.backend = make_backend(
                name, num_workers, None, None, [], fault=fault,
                tracer=self.cluster.tracer,
            )
            self.owns = True
        self.key = next_node_key()

    @property
    def num_workers(self) -> int:
        return self.cluster.num_workers

    def broadcast_sigma(self, sigma: Sequence[GFD]) -> None:
        """Ship ``Σ`` to every worker once (the only bulk transfer)."""
        with self.cluster.superstep() as step:
            step.broadcast(len(sigma))
            self.backend.run_superstep(
                step,
                [
                    (worker, "sigma", self.key, {"sigma": list(sigma)})
                    for worker in range(self.num_workers)
                ],
            )

    def run_with_sigma(self, sigma: Sequence[GFD], requests: List) -> List:
        """Ship ``Σ`` and run the cover work units.

        On a fusing backend the Σ broadcast rides the same superstep (and,
        per worker, the same fused submission) as the work ops — one BSP
        round and one pickle round trip per worker instead of two.  Op
        order per worker is preserved (Σ lands before the unit batch), and
        the per-element ledger accounting (``sigma_rules``) is unchanged.
        A non-fusing backend keeps the historical two supersteps.
        """
        if getattr(self.backend, "fuse_ops", False):
            sigma_requests = [
                (worker, "sigma", self.key, {"sigma": list(sigma)})
                for worker in range(self.num_workers)
            ]
            with self.cluster.superstep() as step:
                step.broadcast(len(sigma))
                results = self.backend.run_superstep(
                    step, sigma_requests + requests
                )
            return results[len(sigma_requests):]
        self.broadcast_sigma(sigma)
        with self.cluster.superstep() as step:
            return self.backend.run_superstep(step, requests)

    def __enter__(self) -> "_CoverSession":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.backend.run_unmetered(
                [
                    (worker, "drop_sigma", self.key, {})
                    for worker in range(self.num_workers)
                ],
                wait=False,
            )
        finally:
            if self.owns:
                self.backend.shutdown()


def parallel_cover(
    sigma: Sequence[GFD],
    num_workers: int = 4,
    cluster: Optional[SimulatedCluster] = None,
    backend: Union[None, str, ExecutionBackend] = None,
    cost_model: Optional[ChaseCostModel] = None,
    fault: Any = "auto",
) -> Tuple[CoverResult, SimulatedCluster]:
    """Compute a cover of ``Σ`` with grouping + LPT balancing (``ParCover``).

    Args:
        sigma: the rule set to reduce.
        num_workers: the worker count ``n`` (ignored when ``backend`` is a
            pre-started instance, which knows its own).
        cluster: optionally supply a pre-built metered cluster.
        backend: a backend name (``"serial"`` — the default — or
            ``"multiprocess"``), or a pre-started
            :class:`~repro.parallel.backend.ExecutionBackend` to reuse
            (the caller keeps ownership).
        cost_model: a :class:`~repro.parallel.costs.ChaseCostModel` whose
            measured per-unit chase costs replace the static
            ``|group| × |embedded|`` LPT weights; the workers' timings for
            this run are fed back into it afterwards.  ``None`` keeps the
            paper's static weights.  Weights only shift *which worker* runs
            a unit — the cover itself is weight-independent.
        fault: supervision policy for an *owned* multiprocess backend (a
            :class:`~repro.core.config.FaultConfig`, ``None`` to disable,
            or the default ``"auto"`` = follow ``REPRO_FAULT_PLAN``); a
            borrowed backend keeps whatever policy it was built with.

    Returns ``(cover result, metered cluster)``; the cover is identical
    across backends, worker counts and weight models.

    .. deprecated::
        Standalone calls (without a pre-started ``backend``) spin up and
        tear down one worker-pool set per invocation; pipelines should go
        through :meth:`repro.session.Session.cover`, which also persists
        the cost model across covers.
    """
    warn_standalone_entry_point("parallel_cover", backend)
    started = time.perf_counter()
    sigma = list(sigma)
    with _CoverSession(num_workers, cluster, backend, fault=fault) as session:
        cluster = session.cluster
        with cluster.master():
            groups = _group_sigma(sigma)
            ordered_keys = sorted(groups)
            units: List[Tuple[List[int], List[int]]] = []
            for group_key in ordered_keys:
                group = groups[group_key]
                representative = sigma[group[0]].pattern
                embedded = _embedded_indices(sigma, representative, group)
                units.append((group, embedded))
            if cost_model is not None:
                weights = [
                    cost_model.weight(key, len(group), len(embedded))
                    for key, (group, embedded) in zip(ordered_keys, units)
                ]
            else:
                weights = [
                    ChaseCostModel.static_weight(len(group), len(embedded))
                    for group, embedded in units
                ]
            assignment = assign_units_lpt(weights, cluster.num_workers)
        removed_indices: Set[int] = set()
        if sigma:
            requests = [
                (
                    worker,
                    "implication_batch",
                    session.key,
                    {"units": [units[unit_id] for unit_id in unit_ids]},
                )
                for worker, unit_ids in enumerate(assignment)
            ]
            parts = session.run_with_sigma(sigma, requests)
            for unit_ids, (removed_part, unit_seconds) in zip(
                assignment, parts
            ):
                removed_indices.update(removed_part)
                if cost_model is not None:
                    for unit_id, seconds in zip(unit_ids, unit_seconds):
                        group, embedded = units[unit_id]
                        cost_model.observe(
                            ordered_keys[unit_id],
                            len(group),
                            len(embedded),
                            seconds,
                        )
            cluster.ship_to_master(len(removed_indices))

    cover = [gfd for index, gfd in enumerate(sigma) if index not in removed_indices]
    removed = [sigma[index] for index in sorted(removed_indices)]
    result = CoverResult(
        cover=cover,
        removed=removed,
        implication_tests=len(sigma),
        elapsed_seconds=time.perf_counter() - started,
    )
    return result, cluster


def parallel_cover_ungrouped(
    sigma: Sequence[GFD],
    num_workers: int = 4,
    cluster: Optional[SimulatedCluster] = None,
    backend: Union[None, str, ExecutionBackend] = None,
) -> Tuple[CoverResult, SimulatedCluster]:
    """``ParCovern``: leave-one-out checks against the *full* set, no groups.

    Mutual-implication pairs are resolved by a deterministic tie-break: a
    GFD is only removed when it is implied by the remainder *after* removing
    every GFD that precedes it in the scan order and was itself removed —
    matching the sequential semantics, but paying full-``Σ`` embedding
    enumeration per test, distributed round-robin over the workers
    (``op_cover_probe``).  ``backend`` selects the execution backend as in
    :func:`parallel_cover`.
    """
    warn_standalone_entry_point("parallel_cover_ungrouped", backend)
    started = time.perf_counter()
    sigma = list(sigma)
    with _CoverSession(num_workers, cluster, backend) as session:
        cluster = session.cluster
        with cluster.master():
            order = _scan_order(sigma)
        # Distribute tests in scan-order round-robin.  Each worker evaluates
        # its share against the full Σ minus the candidate (the expensive
        # part); the master then reconciles mutual implications sequentially
        # (cheap — implication verdicts are reused, only chains re-check).
        verdicts: Dict[int, bool] = {}
        if sigma:
            assignments: List[List[int]] = [
                [] for _ in range(cluster.num_workers)
            ]
            for position, index in enumerate(order):
                assignments[position % cluster.num_workers].append(index)
            requests = [
                (worker, "cover_probe", session.key, {"indices": indices})
                for worker, indices in enumerate(assignments)
            ]
            for part in session.run_with_sigma(sigma, requests):
                for index, verdict in part:
                    verdicts[index] = verdict
            cluster.ship_to_master(len(sigma))

        removed_indices: Set[int] = set()
        with cluster.master():
            for index in order:
                if not verdicts[index]:
                    continue
                remainder = [
                    gfd
                    for position, gfd in enumerate(sigma)
                    if position != index and position not in removed_indices
                ]
                if ImplicationChecker(remainder).implies(sigma[index]):
                    removed_indices.add(index)

    cover = [gfd for index, gfd in enumerate(sigma) if index not in removed_indices]
    removed = [sigma[index] for index in sorted(removed_indices)]
    result = CoverResult(
        cover=cover,
        removed=removed,
        implication_tests=len(sigma),
        elapsed_seconds=time.perf_counter() - started,
    )
    return result, cluster


# re-export for the baselines module
par_cover_no_grouping = parallel_cover_ungrouped
