"""Load balancing strategies (Sections 6.2 and 6.3).

Two balancing problems arise:

* **match skew** in ``ParDis``: after an incremental join, one fragment may
  hold far more matches of ``Q'`` than the others ("if Q'(Fs) is skewed, we
  re-distribute Q'(Fs) evenly across workers").  :func:`rebalance_shards`
  moves items from overloaded shards to underloaded ones, returning the move
  counts so the cluster can charge communication.
* **unit assignment** in ``ParCover``: distribute weighted, indivisible work
  units over workers.  :func:`assign_units_lpt` implements the classic
  longest-processing-time greedy — the factor-2 approximation the paper
  cites ([4]).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, TypeVar

import numpy as np

__all__ = [
    "is_skewed",
    "rebalance_shards",
    "rebalance_pivot_groups",
    "rebalance_pivot_group_arrays",
    "plan_pivot_group_moves",
    "assign_units_lpt",
]

T = TypeVar("T")


def is_skewed(sizes: Sequence[int], factor: float = 2.0) -> bool:
    """Whether the largest shard exceeds ``factor`` times the mean."""
    if not sizes:
        return False
    total = sum(sizes)
    if total == 0:
        return False
    mean = total / len(sizes)
    return max(sizes) > factor * mean


def rebalance_shards(shards: List[List[T]]) -> Tuple[List[List[T]], Dict[int, int]]:
    """Evenly re-distribute items across shards.

    Items move from the largest shards to the smallest until every shard
    holds ``⌈total/n⌉`` or ``⌊total/n⌋`` items.  Order within shards is
    preserved for determinism.

    Returns the new shards and ``moved[worker] = items received`` (for
    communication charging; senders are not charged — vertex-cut shipping
    costs land on receivers in our model, matching :class:`SimulatedCluster`).
    """
    num_shards = len(shards)
    total = sum(len(shard) for shard in shards)
    base, remainder = divmod(total, num_shards)
    targets = [base + (1 if index < remainder else 0) for index in range(num_shards)]

    surplus: List[T] = []
    new_shards: List[List[T]] = []
    for index, shard in enumerate(shards):
        if len(shard) > targets[index]:
            new_shards.append(shard[: targets[index]])
            surplus.extend(shard[targets[index]:])
        else:
            new_shards.append(list(shard))
    moved: Dict[int, int] = {}
    cursor = 0
    for index in range(num_shards):
        deficit = targets[index] - len(new_shards[index])
        if deficit > 0:
            new_shards[index].extend(surplus[cursor: cursor + deficit])
            moved[index] = deficit
            cursor += deficit
    return new_shards, moved


def rebalance_pivot_groups(
    shards: List[List[T]], pivot_var: int
) -> Tuple[List[List[T]], Dict[int, int]]:
    """Re-distribute matches across shards at *pivot granularity*.

    All matches sharing a pivot node move together, preserving the
    pivot-disjointness invariant that lets ``ParDis`` aggregate supports as
    integer sums (``supp(φ,G) = Σ_s supp(φ,F_s)``, Section 6.2).  Groups
    from overloaded shards migrate greedily to the least-loaded shards.

    Returns the new shards and ``moved[worker] = items received``.
    """
    num_shards = len(shards)
    loads = [len(shard) for shard in shards]
    total = sum(loads)
    target = total / num_shards if num_shards else 0.0

    # split each overloaded shard into pivot groups, peel off surplus groups
    surplus: List[List[T]] = []
    new_shards: List[List[T]] = []
    for index, shard in enumerate(shards):
        if loads[index] <= target or not shard:
            new_shards.append(list(shard))
            continue
        groups: Dict[object, List[T]] = {}
        for match in shard:
            groups.setdefault(match[pivot_var], []).append(match)
        kept: List[T] = []
        ordered_groups = sorted(groups.items(), key=lambda kv: str(kv[0]))
        for _, group in ordered_groups:
            if len(kept) + len(group) <= target or not kept:
                kept.extend(group)
            else:
                surplus.append(group)
        new_shards.append(kept)
    moved: Dict[int, int] = {}
    # hand surplus groups to the least-loaded shards
    surplus.sort(key=len, reverse=True)
    for group in surplus:
        worker = min(range(num_shards), key=lambda w: (len(new_shards[w]), w))
        new_shards[worker].extend(group)
        moved[worker] = moved.get(worker, 0) + len(group)
    return new_shards, moved


def rebalance_pivot_group_arrays(
    shards: List[np.ndarray], pivot_col: int
) -> Tuple[List[np.ndarray], Dict[int, int]]:
    """Array twin of :func:`rebalance_pivot_groups` for ``(N, vars)`` shards.

    Match shards on the vectorized (index) path are int64 arrays; moving
    rows through Python lists would dominate the rebalance.  Whole pivot
    groups (contiguous after a stable sort by the pivot column) migrate
    from overloaded shards to the least-loaded ones, preserving the
    pivot-disjointness invariant.

    Returns the new shards and ``moved[worker] = rows received``.
    """
    num_shards = len(shards)
    loads = [int(shard.shape[0]) for shard in shards]
    total = sum(loads)
    target = total / num_shards if num_shards else 0.0

    surplus: List[np.ndarray] = []
    new_shards: List[np.ndarray] = []
    for index, shard in enumerate(shards):
        if loads[index] <= target or loads[index] == 0:
            new_shards.append(shard)
            continue
        pivots = shard[:, pivot_col]
        order = np.argsort(pivots, kind="stable")
        ordered = shard[order]
        ordered_pivots = ordered[:, pivot_col]
        boundaries = np.flatnonzero(
            np.concatenate(([True], ordered_pivots[1:] != ordered_pivots[:-1]))
        )
        ends = np.concatenate((boundaries[1:], [ordered.shape[0]]))
        kept_parts: List[np.ndarray] = []
        kept = 0
        for start, end in zip(boundaries.tolist(), ends.tolist()):
            group = ordered[start:end]
            if kept + group.shape[0] <= target or not kept_parts:
                kept_parts.append(group)
                kept += group.shape[0]
            else:
                surplus.append(group)
        new_shards.append(
            np.concatenate(kept_parts) if kept_parts else shard[:0]
        )
    moved: Dict[int, int] = {}
    surplus.sort(key=lambda group: group.shape[0], reverse=True)
    for group in surplus:
        worker = min(
            range(num_shards), key=lambda w: (new_shards[w].shape[0], w)
        )
        new_shards[worker] = np.concatenate((new_shards[worker], group))
        moved[worker] = moved.get(worker, 0) + int(group.shape[0])
    return new_shards, moved


def plan_pivot_group_moves(
    summaries: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[Dict[Tuple[int, int], Tuple[List[int], int]], Dict[int, int]]:
    """Plan pivot-group moves from per-worker group *summaries* alone.

    The summary-driven twin of :func:`rebalance_pivot_group_arrays`: where
    that function moves rows the master is already holding, this one plans
    the same greedy migration — overloaded shards keep groups in ascending
    pivot order until the mean load, surplus groups go largest-first to the
    least-loaded shards — from ``(pivot ids, row counts)`` pairs, so the
    master never needs the rows.  Workers then exchange exactly the planned
    groups through a shared staging segment (worker-to-worker shipping).

    Args:
        summaries: per worker, ``(pivots, counts)`` arrays as returned by
            the ``join_groups`` op — pivot node ids ascending with their
            per-group row counts.

    Returns ``(moves, received)`` where ``moves[(src, dst)] = (pivot ids,
    total rows)`` — a ``src == dst`` entry means the group stays put (no
    transfer needed) — and ``received[worker] = rows received`` for
    communication charging (receivers pay, as in
    :func:`rebalance_pivot_groups`).
    """
    num_shards = len(summaries)
    loads = [int(counts.sum()) for _, counts in summaries]
    total = sum(loads)
    target = total / num_shards if num_shards else 0.0

    surplus: List[Tuple[int, int, int]] = []  # (src, pivot, rows)
    new_loads: List[int] = []
    for worker, (pivots, counts) in enumerate(summaries):
        if loads[worker] <= target or loads[worker] == 0:
            new_loads.append(loads[worker])
            continue
        kept = 0
        kept_any = False
        for pivot, count in zip(pivots.tolist(), counts.tolist()):
            if kept + count <= target or not kept_any:
                kept += count
                kept_any = True
            else:
                surplus.append((worker, pivot, count))
        new_loads.append(kept)

    moves: Dict[Tuple[int, int], Tuple[List[int], int]] = {}
    received: Dict[int, int] = {}
    surplus.sort(key=lambda item: item[2], reverse=True)  # stable, like rows
    for src, pivot, count in surplus:
        dst = min(range(num_shards), key=lambda w: (new_loads[w], w))
        new_loads[dst] += count
        pivot_ids, rows = moves.get((src, dst), ([], 0))
        pivot_ids.append(pivot)
        moves[(src, dst)] = (pivot_ids, rows + count)
        if src != dst:
            received[dst] = received.get(dst, 0) + count
    return moves, received


def assign_units_lpt(
    weights: Sequence[float], num_workers: int
) -> List[List[int]]:
    """Longest-processing-time assignment of weighted units to workers.

    Returns ``assignment[worker] = [unit indices]``; greedy LPT guarantees a
    makespan within 4/3 − 1/(3n) of optimal (≤ 2, the bound the paper cites).
    Ties are broken deterministically by unit index.
    """
    order = sorted(range(len(weights)), key=lambda index: (-weights[index], index))
    loads = [0.0] * num_workers
    assignment: List[List[int]] = [[] for _ in range(num_workers)]
    for unit in order:
        worker = min(range(num_workers), key=lambda w: (loads[w], w))
        assignment[worker].append(unit)
        loads[worker] += weights[unit]
    return assignment
