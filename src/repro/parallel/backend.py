"""Execution backends for ``ParDis``/``ParCover``/enforcement — simulated
workers or real processes.

``ParDis`` (Section 6.2) is a BSP algorithm: per superstep, the master sends
each worker a batch of shard-local tasks (incremental joins, boolean-mask
lattice validation, tally collection) and aggregates the small results.  The
engine expresses every worker-side operation as an *op* on a
:class:`ShardWorker` — a worker's private state: its match-table shard per
verified pattern, its lattice mask store, its resident enforcement tables
and its cover-phase rule set — and delegates execution to a backend:

* :class:`SerialBackend` runs the ops inline in the master process under the
  :class:`~repro.parallel.cluster.SimulatedCluster` metering (the historical
  behavior; deterministic and dependency-free, the default).
* :class:`MultiprocessBackend` runs each worker as a dedicated
  single-process :class:`~concurrent.futures.ProcessPoolExecutor` (one pool
  per worker gives task→worker affinity, which the shard state requires).
  The frozen :class:`~repro.graph.index.GraphIndex` is shipped **once** via
  ``multiprocessing.shared_memory`` — workers attach the flat numpy buffers
  zero-copy — with a pickle fallback for platforms (or configs) without
  shared memory.  Per-op compute seconds are measured worker-side and
  charged back into the simulated-cluster ledger so the modeled BSP metrics
  stay comparable across backends; real wall-clock lives in
  ``DiscoveryResult.stats.elapsed_seconds``.

Both backends execute the same op implementations, so the discovered GFD
sets are identical by construction — the randomized differential harness
(``tests/test_differential.py``) asserts it.

Shared-memory lifecycle: the master owns the segment (created in
:class:`SharedIndexBuffers`), workers attach without tracking (so the
resource tracker never double-unlinks), and :meth:`MultiprocessBackend.
shutdown` joins the pools, closes and unlinks.  ``tests/test_backend.py``
asserts no segment survives a shutdown.

Bulk data stays worker-resident by design: join results are *parked*
worker-side, rebalanced pivot groups ship worker-to-worker through a
shared-memory staging segment (:meth:`MultiprocessBackend.create_stage` +
the ``stage_out``/``stage_in`` ops), and enforcement match tables persist in
the workers across :meth:`~repro.enforce.engine.EnforcementEngine.refresh`
calls.  The :class:`TransferLedger` on every backend counts exactly which
match rows cross the master boundary, so tests and benchmarks can *prove*
that only manifests and scalars travel.

Round-trip amortization (the *op fusion* layer): with ``fuse_ops`` (the
default) the multiprocess backend transparently groups a superstep's
requests by worker and submits each worker's whole op sequence as **one**
``_mp_execute_fused`` round trip — one pickle each way per worker instead
of one per op — then charges, accounts and journals per fused *element*,
so metering, the transfer ledger and crash recovery are byte-identical to
per-op submission.  Large array payloads (install matches, enforcement
balls/deltas) additionally route through a per-superstep shared-memory
segment instead of the pickle channel.  Fusion is a pure transport
optimization; the engines separately *batch* more work into each superstep
(``DiscoveryConfig.fuse_ops``), which is what reduces the superstep count.
"""

from __future__ import annotations

import itertools
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import FaultConfig, _default_fault
from ..core.match_table import MatchTable
from ..core.spawning import counts_from_statistics, extension_statistics
from ..gfd.implication import ImplicationChecker, greedy_group_elimination
from ..graph.graph import Graph
from ..graph.index import GraphIndex
from ..obs.tracer import NULL_TRACER
from ..pattern.incremental import extend_matches
from . import janitor
from .faults import FaultPlan

try:  # pragma: no cover - availability depends on the platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "BACKEND_NAMES",
    "ShardWorker",
    "ExecutionBackend",
    "SerialBackend",
    "MultiprocessBackend",
    "SharedIndexBuffers",
    "TransferLedger",
    "LifecycleCounters",
    "make_backend",
    "next_node_key",
    "shared_memory_available",
    "warn_standalone_entry_point",
]

#: Recognized values of ``DiscoveryConfig.parallel_backend``.
BACKEND_NAMES = ("serial", "multiprocess")

#: One superstep request: ``(worker, op name, pattern node key, payload)``.
Request = Tuple[int, str, int, Dict[str, Any]]

#: Worker-state keys are unique across every engine in this master process,
#: so engines sharing one backend never collide on worker state.
_NODE_KEYS = itertools.count()


def next_node_key() -> int:
    """A fresh process-wide worker-state key (pattern node, Σ slot, ...)."""
    return next(_NODE_KEYS)


def warn_standalone_entry_point(function: str, backend: Any) -> None:
    """Deprecation notice for per-call backend construction.

    The legacy wrappers (``discover_parallel``, ``parallel_cover``) remain
    supported shims, but a standalone call — one that does not reuse a
    pre-started :class:`ExecutionBackend` — spins up and tears down a pool
    set per invocation; sessions share one.  Callers that *have* no graph
    to open a session over (the ``repro-gfd cover`` verb) suppress this
    explicitly.
    """
    if not isinstance(backend, ExecutionBackend):
        warnings.warn(
            f"{function}() builds a fresh execution backend per call; "
            "prefer repro.session.Session, which starts the worker pools "
            "once and shares them across discover/cover/enforce",
            DeprecationWarning,
            stacklevel=3,
        )


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` exists on this platform."""
    return _shared_memory is not None


# ----------------------------------------------------------------------
# transfer accounting
# ----------------------------------------------------------------------
@dataclass
class TransferLedger:
    """Match rows crossing process/role boundaries, counted per backend.

    The whole point of worker-resident shard state is that *match rows* stay
    where they were computed; this ledger makes the claim checkable.  Both
    backends account identically (the serial backend has no pickle cost,
    but the protocol is the same), so differential tests can assert e.g.
    that a clean incremental ``refresh()`` ships **zero** rows through the
    master.

    Attributes:
        rows_to_workers: match rows sent master → worker in op payloads
            (installs, enforcement installs/updates).
        rows_to_master: match rows returned worker → master in op results
            (un-parked joins, fetched joins, violating rows of enforcement
            reports).
        rows_staged: match rows moved worker ↔ worker through a shared
            staging segment — they never visit the master.
        sigma_rules: GFDs broadcast to workers for the cover phase
            (manifests, not match rows; tracked for completeness).
    """

    rows_to_workers: int = 0
    rows_to_master: int = 0
    rows_staged: int = 0
    sigma_rules: int = 0

    def snapshot(self) -> "TransferLedger":
        """An immutable copy (for before/after deltas in tests)."""
        return TransferLedger(
            self.rows_to_workers,
            self.rows_to_master,
            self.rows_staged,
            self.sigma_rules,
        )


@dataclass
class LifecycleCounters:
    """Resource-lifecycle events of one backend instance.

    The Session facade promises "worker pools started once, index attached
    once" across a whole discover → cover → enforce → refresh pipeline;
    these counters make that promise assertable (``Session.metrics()``)
    instead of assumed.

    Attributes:
        pools_started: worker pools (processes or in-process shard slots)
            created at construction — exactly ``num_workers``, exactly once
            per backend.
        index_attaches: graph-index snapshots shipped to the workers at
            construction (1 segment export for graph-ful backends, 0 for
            graph-free cover pools).
        index_refreshes: :meth:`ExecutionBackend.refresh_index` calls —
            snapshot re-points that *reuse* the live pools instead of
            rebuilding them.
        resets: worker-state wipes (an engine returning a borrowed backend).
        shutdowns: terminal releases (0 while the backend is live, 1 after).
        timeouts: supervised ops that exceeded their ``op_timeout_s``
            deadline (the worker was declared hung and killed).
        retries: supervised op re-submissions after a worker failure.
        respawns: worker processes replaced after a crash/hang, each
            replaying its install log before the failed op was retried.
        degraded_workers: worker slots demoted to in-process serial
            execution after exhausting ``max_respawns`` (the graceful-
            degradation ladder's last rung).
    """

    pools_started: int = 0
    index_attaches: int = 0
    index_refreshes: int = 0
    #: Subset of ``index_refreshes`` that shipped only the *changed* arrays
    #: (attribute columns / CSR deltas) instead of re-exporting the full
    #: index — the delta-aware mutation path.
    delta_refreshes: int = 0
    resets: int = 0
    shutdowns: int = 0
    timeouts: int = 0
    retries: int = 0
    respawns: int = 0
    degraded_workers: int = 0


def _rows_in(matches: Any) -> int:
    """Row count of a matches payload (array, list, or ``None``)."""
    if matches is None:
        return 0
    if isinstance(matches, np.ndarray):
        return int(matches.shape[0])
    return len(matches)


def _payload_rows(op: str, payload: Dict[str, Any]) -> int:
    """Match rows the master ships *into* a worker with one op."""
    if op == "install":
        if payload.get("adopt") is not None:
            return 0
        return _rows_in(payload.get("matches"))
    if op == "enforce_install":
        return _rows_in(payload.get("matches"))
    if op == "enforce_update":
        return _rows_in(payload.get("fresh"))
    return 0


def _result_rows(op: str, result: Any) -> int:
    """Match rows a worker returns *to* the master from one op."""
    if op == "join":
        return sum(_rows_in(part[0]) for part in result)
    if op == "fetch_join":
        return _rows_in(result)
    if op in ("enforce", "enforce_install", "enforce_update"):
        return sum(_rows_in(part[2]) for part in result)
    return 0


def _account(backend: "ExecutionBackend", op: str, payload: Dict[str, Any],
             result: Any) -> None:
    """Charge one executed op (with its result) to the backend's ledgers."""
    ledger = backend.transfers
    ledger.rows_to_workers += _payload_rows(op, payload)
    if op == "reset":
        backend.lifecycle.resets += 1
        return
    if op == "sigma":
        ledger.sigma_rules += len(payload.get("sigma", ()))
        return
    if op == "stage_out":
        ledger.rows_staged += sum(result)
        return
    if op == "stage_in":
        return  # the same rows were already counted at stage_out
    ledger.rows_to_master += _result_rows(op, result)


# ----------------------------------------------------------------------
# worker-side op implementations (shared by every backend)
# ----------------------------------------------------------------------
class ShardWorker:
    """One worker's shard state plus the op implementations over it.

    State per verified pattern (keyed by the master's node key): the shard
    :class:`MatchTable` and, during ``HSpawn``, the lattice mask store
    ``{mask id: boolean row mask}``.  The serial backend keeps ``n`` of
    these in-process; the multiprocess backend keeps one per worker process,
    built around the attached (detached) graph index.

    Two further state families live here so *their* bulk data also stays
    worker-resident: the cover phase's rule set ``Σ`` plus its amortized
    :class:`~repro.gfd.implication.ImplicationChecker` (``op_sigma`` /
    ``op_implication_batch`` / ``op_cover_probe``), and the enforcement
    engine's persistent per-group match arrays with their cached per-rule
    violation masks (``op_enforce_install`` / ``op_enforce_update``).
    """

    def __init__(
        self,
        graph: Optional[Graph],
        index: Optional[GraphIndex],
        gamma: Sequence[str],
    ) -> None:
        self.graph = graph
        self.index = index
        self.gamma = list(gamma)
        self.tables: Dict[int, MatchTable] = {}
        self.stores: Dict[int, Dict[int, np.ndarray]] = {}
        # join results parked worker-side, keyed (parent key, extension
        # position), until an install adopts them — matches never cross the
        # process boundary unless the master orders a rebalance
        self.joins: Dict[Tuple[int, int], Any] = {}
        # cover phase: key -> Σ (list of GFDs) and its shared checker
        self.sigmas: Dict[int, List[Any]] = {}
        self.checkers: Dict[int, ImplicationChecker] = {}
        # enforcement residency: key -> {"pattern", "rules", "rows", "masks"}
        # where rows is the resident (N, vars) int64 shard and masks maps
        # rule offset -> boolean violation mask aligned with rows
        self.enforce_state: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    def execute(self, op: str, key: int, payload: Dict[str, Any]) -> Any:
        """Dispatch one op (the unit the cluster meters)."""
        return getattr(self, f"op_{op}")(key, payload)

    def _parent_matches(self, table: MatchTable):
        return table.match_array if self.index is not None else table.matches

    # -- VSpawn ---------------------------------------------------------
    def op_install(self, key: int, payload: Dict[str, Any]) -> Tuple:
        """Build this worker's match-table shard (+ column statistics).

        The value/agreement counts feed the master's alphabet generation,
        saving a dedicated round per pattern (only collected when the
        pattern will be mined).  ``payload["gamma"]`` carries the run's
        active attributes — the engine's Γ, not the backend-construction
        one, which may predate a graph mutation that changed the top
        attributes.
        """
        adopt = payload.get("adopt")
        matches = self.joins.pop(adopt) if adopt is not None else payload["matches"]
        table = MatchTable(
            self.graph,
            payload["pattern"],
            matches,
            payload.get("gamma", self.gamma),
            index=self.index,
        )
        self.tables[key] = table
        values: Dict = {}
        agreements: Dict = {}
        if payload["mined"]:
            values = table.constant_value_counts()
            if payload["want_variable"]:
                agreements = table.variable_agreement_counts(
                    payload["same_attr_only"]
                )
        return table.num_rows, values, agreements

    def op_tally(self, key: int, payload: Dict[str, Any]):
        """Collapse this shard's extension tallies into shippable counts."""
        table = self.tables[key]
        return counts_from_statistics(
            extension_statistics(
                self.graph,
                table.pattern,
                self._parent_matches(table),
                payload["can_add"],
                index=self.index,
            )
        )

    def op_join(self, key: int, payload: Dict[str, Any]) -> List[Tuple]:
        """Join this shard with every extension edge of one parent.

        Returns ``(matches, local support, count, hit_cap)`` per extension;
        ``cap`` bounds the per-shard join (``config.max_matches_per_pattern``
        enforcement — the master combines the flags into the global
        truncation verdict).  With ``park=True`` (the cross-process mode)
        the matches stay here under ``(parent key, position)`` — the slot a
        later install adopts — and ``None`` travels in their place, so only
        scalars cross the process boundary.
        """
        table = self.tables[key]
        parent_matches = self._parent_matches(table)
        cap = payload["cap"]
        park = payload.get("park", False)
        results: List[Tuple] = []
        for position, (extension, pivot_var) in enumerate(payload["extensions"]):
            matches = extend_matches(
                self.graph,
                parent_matches,
                extension,
                max_matches=cap,
                index=self.index,
                as_array=self.index is not None,
            )
            if self.index is not None:
                count = int(matches.shape[0])
                support = (
                    int(np.unique(matches[:, pivot_var]).size) if count else 0
                )
            else:
                count = len(matches)
                support = len({match[pivot_var] for match in matches})
            hit_cap = cap is not None and count >= cap
            if park:
                self.joins[(key, position)] = matches
                results.append((None, support, count, hit_cap))
            else:
                results.append((matches, support, count, hit_cap))
        return results

    def op_fetch_join(self, key: int, payload: Dict[str, Any]):
        """Surrender one parked join result to the master (for rebalancing)."""
        return self.joins.pop((key, payload["position"]))

    def op_join_groups(self, key: int, payload: Dict[str, Any]):
        """Pivot-group manifest of one parked join: ``(pivots, counts)``.

        The master plans rebalancing moves from these summaries alone
        (:func:`~repro.parallel.balancer.plan_pivot_group_moves`) — pivot
        node ids and row counts are scalars, so skew detection and move
        planning never ship a match row.
        """
        matches = self.joins[(key, payload["position"])]
        pivots = matches[:, payload["pivot"]]
        uniques, counts = np.unique(pivots, return_counts=True)
        return uniques, counts

    def op_stage_out(self, key: int, payload: Dict[str, Any]) -> List[int]:
        """Write outbound pivot groups of a parked join into a staging segment.

        ``sends`` entries are ``(byte offset, pivot id array)``; the rows of
        each listed pivot group are copied contiguously into the shared
        segment at the given offset and removed from the parked join.  Only
        the per-send row counts return to the master (sanity scalars) — the
        rows go worker-to-worker through the segment.
        """
        slot = (key, payload["position"])
        matches = self.joins[slot]
        segment = _attach_segment(payload["segment"])
        written: List[int] = []
        try:
            pivot_column = matches[:, payload["pivot"]]
            removed = np.zeros(matches.shape[0], dtype=bool)
            for offset, pivots in payload["sends"]:
                mask = np.isin(pivot_column, pivots)
                rows = matches[mask]
                removed |= mask
                view = np.ndarray(
                    rows.shape, dtype=np.int64,
                    buffer=segment.buf, offset=offset,
                )
                view[...] = rows
                written.append(int(rows.shape[0]))
            self.joins[slot] = matches[~removed]
        finally:
            segment.close()
        return written

    def op_stage_in(self, key: int, payload: Dict[str, Any]) -> int:
        """Append staged pivot groups to this worker's parked join.

        ``spans`` entries are ``(byte offset, row count)`` into the staging
        segment; rows are *copied* out (the master unlinks the segment right
        after the superstep).  Returns the received row count.
        """
        slot = (key, payload["position"])
        width = payload["width"]
        segment = _attach_segment(payload["segment"])
        try:
            parts = [self.joins[slot]]
            received = 0
            for offset, count in payload["spans"]:
                view = np.ndarray(
                    (count, width), dtype=np.int64,
                    buffer=segment.buf, offset=offset,
                )
                parts.append(np.array(view, copy=True))
                received += count
            self.joins[slot] = np.concatenate(parts)
        finally:
            segment.close()
        return received

    # -- HSpawn ---------------------------------------------------------
    def op_scan(self, key: int, payload: Dict[str, Any]) -> Tuple[List[int], List[int]]:
        """Per-literal row counts and local distinct-pivot supports.

        Also opens this pattern's mask store (id 0 = the full mask) and
        warms the table's literal-mask cache for the lattice levels.
        """
        table = self.tables[key]
        self.stores[key] = {0: table.full_mask()}
        counts: List[int] = []
        supports: List[int] = []
        for literal in payload["literals"]:
            mask = table.literal_mask(literal)
            counts.append(table.mask_count(mask))
            supports.append(table.mask_support(mask))
        return counts, supports

    def op_eval(self, key: int, payload: Dict[str, Any]) -> Tuple:
        """Evaluate one lattice level's candidate batch on this shard.

        ``specs`` entries are ``(parent mask id, lhs literal, rhs literal,
        new mask id)``; candidates sharing a parent mask are stacked into
        one numpy operation.  New LHS masks stay in the store for the next
        level; ``drop`` lists mask ids the master retired last level.
        """
        table = self.tables[key]
        store = self.stores[key]
        for dead in payload.get("drop", ()):
            store.pop(dead, None)
        specs = payload["specs"]
        groups: Dict[int, List[int]] = {}
        for position, spec in enumerate(specs):
            groups.setdefault(spec[0], []).append(position)
        count_lhs_arr = np.zeros(len(specs), dtype=np.int64)
        count_both_arr = np.zeros(len(specs), dtype=np.int64)
        support_arr = np.zeros(len(specs), dtype=np.int64)
        for rows_id, positions in sorted(groups.items()):
            parent = store[rows_id]
            lhs_stack = np.stack(
                [table.literal_mask(specs[p][1]) for p in positions]
            )
            lhs_stack &= parent
            rhs_stack = np.stack(
                [table.literal_mask(specs[p][2]) for p in positions]
            )
            rhs_stack &= lhs_stack
            count_lhs = lhs_stack.sum(axis=1)
            count_both = rhs_stack.sum(axis=1)
            active = np.flatnonzero(count_both)
            if active.size:
                supports = table.stack_supports(rhs_stack[active])
                for where, offset in enumerate(active):
                    support_arr[positions[offset]] = supports[where]
            for offset, p in enumerate(positions):
                store[specs[p][3]] = lhs_stack[offset]
                count_lhs_arr[p] = count_lhs[offset]
                count_both_arr[p] = count_both[offset]
        return count_lhs_arr, count_both_arr, support_arr

    def op_probe(self, key: int, payload: Dict[str, Any]) -> List[bool]:
        """``NHSpawn`` batch: does any shard row satisfy ``X ∪ {l''}``?"""
        table = self.tables[key]
        store = self.stores[key]
        for dead in payload.get("drop", ()):
            store.pop(dead, None)
        specs = payload["specs"]
        groups: Dict[int, List[int]] = {}
        for position, spec in enumerate(specs):
            groups.setdefault(spec[0], []).append(position)
        overlaps: List[bool] = [False] * len(specs)
        for rows_id, positions in sorted(groups.items()):
            parent = store[rows_id]
            stack = np.stack(
                [table.literal_mask(specs[p][1]) for p in positions]
            )
            stack &= parent
            hits = stack.any(axis=1)
            for offset, p in enumerate(positions):
                overlaps[p] = bool(hits[offset])
        return overlaps

    # -- enforcement (repro.enforce) ------------------------------------
    def _enforce_results(self, state: Dict[str, Any]) -> List[Tuple]:
        """Per-rule ``(count, node ids, violating rows, truncated)`` tuples.

        Derived from the resident rows and cached masks; rows are canonical
        match tuples as an ``(N, vars)`` int64 array.  Counts are always
        exact per shard (a mask popcount); with the per-rule violation cap
        (``state["cap"]``) only the first ``cap`` violating rows of this
        shard are gathered — the graceful-degradation mode for adversarial
        rules whose violation set is the whole match table — and
        ``truncated`` flags that the node set and witness rows cover a
        subset.  The master merges across shards.
        """
        rows = state["rows"]
        cap = state.get("cap")
        results: List[Tuple] = []
        for offset in range(len(state["rules"])):
            mask = state["masks"][offset]
            count = int(np.count_nonzero(mask))
            truncated = cap is not None and count > cap
            if truncated:
                violating = rows[np.flatnonzero(mask)[:cap]]
            else:
                violating = rows[mask]
            nodes = (
                np.unique(violating)
                if violating.size
                else np.empty(0, dtype=np.int64)
            )
            results.append((count, nodes, violating, truncated))
        return results

    def op_enforce_install(self, key: int, payload: Dict[str, Any]) -> List[Tuple]:
        """Install one pattern group's match shard and evaluate its rules.

        ``payload["rules"]`` entries are ``(lhs literals, rhs literal or
        None)`` over the *canonical* pattern variables (``None`` = negative
        GFD).  ``payload["gamma"]`` carries the plan's attribute set —
        enforcement must not inherit the backend-construction ``Γ`` (a
        session-shared backend was built for *discovery's* attributes) —
        and ``payload["cap"]`` the optional per-rule violation cap.  The
        shard rows and the per-rule violation masks stay resident (keyed by
        the engine's group key) so later :meth:`op_enforce_update` calls
        can splice deltas instead of receiving the world again; see
        :meth:`_enforce_results` for the return shape.
        """
        gamma = payload.get("gamma", self.gamma)
        table = MatchTable(
            self.graph,
            payload["pattern"],
            payload["matches"],
            gamma,
            index=self.index,
        )
        rows = table.match_array
        masks = {
            offset: table.violation_mask(lhs, rhs)
            for offset, (lhs, rhs) in enumerate(payload["rules"])
        }
        state = {
            "pattern": payload["pattern"],
            "rules": list(payload["rules"]),
            "rows": rows,
            "masks": masks,
            "gamma": list(gamma),
            "cap": payload.get("cap"),
        }
        self.enforce_state[key] = state
        return self._enforce_results(state)

    def op_enforce(self, key: int, payload: Dict[str, Any]) -> List[Tuple]:
        """Re-derive one resident group's rule results (no data shipped)."""
        return self._enforce_results(self.enforce_state[key])

    def op_enforce_update(self, key: int, payload: Dict[str, Any]) -> List[Tuple]:
        """Splice a delta into a resident group and re-evaluate its rules.

        ``payload["ball"]`` is the affected-pivot node set (the radius-
        ``d_Q`` ball around the touched nodes): resident rows whose pivot —
        canonical variable 0 — lies in the ball are dropped.  ``payload
        ["fresh"]`` carries this shard's slice of the re-derived matches;
        only those rows cross the process boundary.  Cached violation masks
        of the *kept* rows are reused verbatim — a kept row contains no
        touched node (else its pivot were in the ball, per the deletion
        soundness argument in :mod:`repro.enforce.delta`), so its per-rule
        verdicts cannot have changed — and masks are computed fresh only
        for the incoming rows, against the worker's current index.
        """
        state = self.enforce_state[key]
        rows = state["rows"]
        if rows.shape[0]:
            keep = ~np.isin(rows[:, 0], payload["ball"])
            kept_rows = rows[keep]
        else:
            keep = None
            kept_rows = rows
        fresh_table = MatchTable(
            self.graph,
            state["pattern"],
            payload["fresh"],
            state.get("gamma", self.gamma),
            index=self.index,
        )
        fresh_rows = fresh_table.match_array
        for offset, (lhs, rhs) in enumerate(state["rules"]):
            kept_mask = state["masks"][offset]
            if keep is not None:
                kept_mask = kept_mask[keep]
            fresh_mask = fresh_table.violation_mask(lhs, rhs)
            state["masks"][offset] = np.concatenate([kept_mask, fresh_mask])
        state["rows"] = np.concatenate([kept_rows, fresh_rows])
        return self._enforce_results(state)

    def op_enforce_drop(self, key: int, payload: Dict[str, Any]) -> None:
        """Release one resident enforcement group."""
        self.enforce_state.pop(key, None)
        return None

    # -- cover phase (ParCover / ParCovern) ------------------------------
    def op_sigma(self, key: int, payload: Dict[str, Any]) -> int:
        """Receive the cover phase's rule set ``Σ`` (broadcast once).

        The worker keeps ``Σ`` and one :class:`ImplicationChecker` over it;
        the checker's embedded-rule cache is shared by every implication
        test of this worker's batch, so repeated chases over one pattern
        skip embedding enumeration — the amortization ``SeqCover`` enjoys,
        now per worker.
        """
        sigma = list(payload["sigma"])
        self.sigmas[key] = sigma
        self.checkers[key] = ImplicationChecker(sigma)
        return len(sigma)

    def op_implication_batch(
        self, key: int, payload: Dict[str, Any]
    ) -> Tuple[List[int], List[float]]:
        """``ParImp`` over a batch of work units ``(group, embedded)``.

        Each unit is greedily reduced in isolation (Lemma 6 independence);
        only the removed Σ-indices return to the master, plus each unit's
        measured chase seconds — the feedback that lets the master replace
        the static ``|group| × |embedded|`` LPT weights with observed costs
        on the next cover (:class:`~repro.parallel.costs.ChaseCostModel`).
        """
        sigma = self.sigmas[key]
        checker = self.checkers[key]
        removed: List[int] = []
        seconds: List[float] = []
        for group, embedded in payload["units"]:
            begin = time.perf_counter()
            removed.extend(
                greedy_group_elimination(sigma, group, embedded, checker=checker)
            )
            seconds.append(time.perf_counter() - begin)
        return removed, seconds

    def op_cover_probe(self, key: int, payload: Dict[str, Any]) -> List[Tuple[int, bool]]:
        """Leave-one-out implication verdicts for ``ParCovern``.

        For each Σ-index the worker tests ``Σ \\ {φ_index} ⊨ φ_index``
        against the full remainder (no grouping — the paper's baseline);
        verdicts are booleans, reconciled sequentially by the master.
        """
        checker = self.checkers[key]
        return [
            (index, checker.implied_by_rest(index))
            for index in payload["indices"]
        ]

    def op_drop_sigma(self, key: int, payload: Dict[str, Any]) -> None:
        """Release the cover phase's worker-side rule set."""
        self.sigmas.pop(key, None)
        self.checkers.pop(key, None)
        return None

    # -- lifecycle ------------------------------------------------------
    def op_drop_store(self, key: int, payload: Dict[str, Any]) -> None:
        """Free the mask store once a pattern's ``HSpawn`` completes."""
        self.stores.pop(key, None)
        return None

    def op_drop(self, key: int, payload: Dict[str, Any]) -> None:
        """Free all state of a pattern (after its children are joined)."""
        self.tables.pop(key, None)
        self.stores.pop(key, None)
        for slot in [slot for slot in self.joins if slot[0] == key]:
            del self.joins[slot]  # un-adopted parks (e.g. truncated children)
        return None

    def op_reset(self, key: int, payload: Dict[str, Any]) -> None:
        """Clear every shard (an external backend being reused)."""
        self.tables.clear()
        self.stores.clear()
        self.joins.clear()
        self.sigmas.clear()
        self.checkers.clear()
        self.enforce_state.clear()
        return None


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Executes superstep request batches against ``n`` shard workers."""

    name: str = "abstract"
    num_workers: int = 0
    #: Whether workers live in other processes (payloads cross a pickle
    #: boundary, so bulk data should stay worker-resident when possible).
    remote: bool = False
    #: Whether workers can exchange rows through a shared staging segment
    #: (worker-to-worker shipping without a master round-trip).
    supports_staging: bool = False
    #: Whether a superstep's requests are fused into one submission per
    #: worker (one pickle round trip carrying the worker's whole op
    #: sequence).  Purely a transport optimization: results, metering and
    #: ledger accounting are per-op either way.  In-process backends fuse
    #: trivially (there is no transport), so the flag is structural there.
    fuse_ops: bool = True
    #: Identity of the graph snapshot the workers were built around; an
    #: engine refuses to run on a backend holding a different snapshot.
    source_token: Tuple = ()
    #: Match rows that crossed the master boundary (see
    #: :class:`TransferLedger`); every run method accounts into this.
    transfers: TransferLedger
    #: Resource-lifecycle events (pool starts, index attaches/refreshes);
    #: see :class:`LifecycleCounters` — what ``Session.metrics()`` reads.
    lifecycle: LifecycleCounters
    #: Wall-clock seconds spent in worker recovery (respawn + install-log
    #: replay); 0.0 on fault-free runs and on the serial backend.
    recovery_seconds: float = 0.0
    #: The session tracer (``NULL_TRACER`` unless a traced session wired
    #: one in).  Backends emit typed events (timeouts, retries, respawns,
    #: degradations, index refreshes, janitor sweeps) and worker-lane op
    #: spans for unmetered batches; metered op spans flow through
    #: ``step.charge`` instead.  Hot paths guard on ``tracer.enabled``.
    tracer: Any = NULL_TRACER

    def run_superstep(self, step, requests: Sequence[Request]) -> List[Any]:
        """Run one BSP round of requests; results align with the batch."""
        raise NotImplementedError

    def run_unmetered(
        self, requests: Sequence[Request], wait: bool = True
    ) -> List[Any]:
        """Bookkeeping ops (drops/reset) outside the metered supersteps.

        ``wait=False`` fires and forgets (single-process pools execute
        in-order, so a later op can never overtake a drop) — keeps
        per-pattern cleanup off the master's critical path.
        """
        raise NotImplementedError

    def refresh_index(self, index: GraphIndex) -> None:
        """Swap the workers onto a new frozen index snapshot.

        Keeps all worker-resident state (notably the persistent enforcement
        tables, whose kept rows stay valid across a delta — see
        :meth:`ShardWorker.op_enforce_update`).  Callers must not hold
        discovery-phase tables across a swap; those cache columns of the
        old snapshot.
        """
        raise NotImplementedError

    def create_stage(self, nbytes: int):
        """Create a worker-to-worker staging segment (master-owned)."""
        raise NotImplementedError(
            f"the {self.name} backend does not support staging"
        )

    def release_stage(self, segment) -> None:
        """Close and unlink a staging segment after its superstep."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release every resource (processes, shared memory)."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process execution under the simulated cluster (the default)."""

    name = "serial"

    def __init__(
        self,
        num_workers: int,
        graph: Optional[Graph],
        index: Optional[GraphIndex],
        gamma: Sequence[str],
        fuse_ops: bool = True,
        tracer: Any = NULL_TRACER,
    ) -> None:
        self.num_workers = num_workers
        self.fuse_ops = bool(fuse_ops)
        self.tracer = tracer
        self.source_token = (id(graph), id(index))
        self.transfers = TransferLedger()
        self.lifecycle = LifecycleCounters(
            pools_started=num_workers,
            index_attaches=1 if index is not None else 0,
        )
        # in-process shards share the master's index object outright
        self.index_transport = "inprocess" if index is not None else "none"
        self.workers = [
            ShardWorker(graph, index, gamma) for _ in range(num_workers)
        ]

    def run_superstep(self, step, requests: Sequence[Request]) -> List[Any]:
        results = []
        for worker, op, key, payload in requests:
            shard = self.workers[worker]
            result = step.run(
                worker,
                lambda shard=shard, op=op, key=key, payload=payload: (
                    shard.execute(op, key, payload)
                ),
                op,
            )
            _account(self, op, payload, result)
            results.append(result)
        return results

    def run_unmetered(
        self, requests: Sequence[Request], wait: bool = True
    ) -> List[Any]:
        tracer = self.tracer
        results = []
        for worker, op, key, payload in requests:
            if tracer.enabled:
                started = time.perf_counter()
                result = self.workers[worker].execute(op, key, payload)
                tracer.worker_op(worker, op, time.perf_counter() - started)
            else:
                result = self.workers[worker].execute(op, key, payload)
            _account(self, op, payload, result)
            results.append(result)
        return results

    def refresh_index(self, index: GraphIndex) -> None:
        """Point the in-process workers at a new index snapshot (free)."""
        for worker in self.workers:
            worker.index = index
        graph = index.graph if index is not None else None
        self.source_token = (id(graph), id(index))
        self.lifecycle.index_refreshes += 1

    def shutdown(self) -> None:
        if getattr(self, "_down", False):
            return
        self._down = True
        self.lifecycle.shutdowns += 1
        for worker in self.workers:
            worker.op_reset(0, {})


# ----------------------------------------------------------------------
# shared-memory payload
# ----------------------------------------------------------------------
def _align(offset: int) -> int:
    return (offset + 63) & ~63


class _SharedArrayPack:
    """Master-side owner of named arrays packed into one shared segment.

    The generic half of the zero-copy protocol: arrays are copied into one
    ``SharedMemory`` segment (64-byte aligned) and the layout
    ``{name: (dtype, shape, offset)}`` lets any attaching process rebuild
    views without pickling.  Used for the full index export
    (:class:`SharedIndexBuffers`), for changed-array deltas on the
    ``refresh_index`` mutation path, and for large op payloads routed
    around the pickle channel.
    """

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        if _shared_memory is None:  # pragma: no cover - platform dependent
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        layout: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
        contiguous: Dict[str, np.ndarray] = {}
        offset = 0
        for name in sorted(arrays):
            array = np.ascontiguousarray(arrays[name])
            contiguous[name] = array
            if array.nbytes == 0:
                layout[name] = (array.dtype.str, array.shape, 0)
                continue
            offset = _align(offset)
            layout[name] = (array.dtype.str, array.shape, offset)
            offset += array.nbytes
        self.layout = layout
        # janitor-registered: a crash before close() leaves the segment to
        # the atexit hook (this process) or the orphan sweep (a hard kill)
        self.segment = janitor.create_segment(offset)
        for name, array in contiguous.items():
            if array.nbytes == 0:
                continue
            dtype_str, shape, start = layout[name]
            view = np.ndarray(
                shape, dtype=np.dtype(dtype_str),
                buffer=self.segment.buf, offset=start,
            )
            view[...] = array
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self.segment.name

    def close(self) -> None:
        """Detach and unlink the segment (idempotent).

        Unlinking frees the *name* only: processes that already attached
        keep their mappings until they close them, so the owner may release
        a segment as soon as every consumer has attached.
        """
        if self._closed:
            return
        self._closed = True
        janitor.unregister(self.segment)
        self.segment.close()
        try:
            self.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class SharedIndexBuffers(_SharedArrayPack):
    """Master-side owner of a graph index's shared-memory copy.

    Packs the arrays of :meth:`GraphIndex.export_buffers` into one
    ``SharedMemory`` segment and keeps the picklable ``meta`` beside the
    layout.  :meth:`close` unlinks the segment; the owner must outlive
    every attached worker (or at least their attach calls).
    """

    def __init__(self, index: GraphIndex) -> None:
        meta, arrays = index.export_buffers()
        self.meta = meta
        super().__init__(arrays)


#: Attach a shared-memory segment without resource-tracker ownership; the
#: implementation lives with the rest of the segment lifecycle machinery.
_attach_segment = janitor.attach_segment


def _views_from_layout(
    layout: Dict[str, Tuple[str, Tuple[int, ...], int]], buf
) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {}
    for name, (dtype_str, shape, offset) in layout.items():
        array = np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=buf, offset=offset
        )
        array.flags.writeable = False  # workers must never mutate the graph
        arrays[name] = array
    return arrays


# ----------------------------------------------------------------------
# shared-memory payload routing (master side)
# ----------------------------------------------------------------------
#: Large-array payload fields routed through a shared segment instead of
#: the pickle channel, per op.  Everything else a payload carries is small
#: (manifests, literals, scalars) and pickles fine.
_SHM_PAYLOAD_KEYS = {
    "install": ("matches",),
    "enforce_install": ("matches",),
    "enforce_update": ("ball", "fresh"),
}

#: Arrays below this size pickle faster than a segment round trip.
_SHM_PAYLOAD_MIN_BYTES = 32 * 1024

#: First element of a marker tuple substituted for a staged payload array.
_SHM_MARKER = "__shm_payload__"


def _stage_payloads(requests: Sequence[Request]):
    """Move large array payloads of one batch into a shared segment.

    Returns ``(submit requests, pack or None)``: payload dicts carrying a
    staged array are shallow-copied with the array replaced by a marker
    tuple ``(_SHM_MARKER, segment name, dtype, shape, offset)`` — the
    *original* requests stay untouched, so ledger accounting and journaling
    keep seeing the real arrays.  The caller must close the pack after the
    batch completes (workers copy out of the segment on resolve).
    """
    staged_arrays: Dict[str, np.ndarray] = {}
    slots: List[Tuple[int, str, str]] = []
    for position, (worker, op, key, payload) in enumerate(requests):
        for field in _SHM_PAYLOAD_KEYS.get(op, ()):
            value = payload.get(field)
            if (
                isinstance(value, np.ndarray)
                and value.nbytes >= _SHM_PAYLOAD_MIN_BYTES
            ):
                name = f"{position}:{field}"
                staged_arrays[name] = value
                slots.append((position, field, name))
    if not slots:
        return list(requests), None
    pack = _SharedArrayPack(staged_arrays)
    staged = list(requests)
    for position, field, name in slots:
        worker, op, key, payload = staged[position]
        payload = dict(payload)
        dtype_str, shape, offset = pack.layout[name]
        payload[field] = (_SHM_MARKER, pack.name, dtype_str, shape, offset)
        staged[position] = (worker, op, key, payload)
    return staged, pack


def _resolve_payload(payload: Dict[str, Any], cache: Dict[str, Any]):
    """Replace shared-memory markers with materialized arrays (worker side).

    Arrays are *copied* out of the segment: the master unlinks payload
    segments right after the batch, and resident state (match tables,
    enforcement rows) must not dangle into an unmapped buffer.  ``cache``
    holds segment attachments across one batch; the caller closes them.
    """
    resolved = None
    for field, value in payload.items():
        if (
            isinstance(value, tuple)
            and len(value) == 5
            and value[0] == _SHM_MARKER
        ):
            _, name, dtype_str, shape, offset = value
            segment = cache.get(name)
            if segment is None:
                segment = cache[name] = _attach_segment(name)
            view = np.ndarray(
                shape, dtype=np.dtype(dtype_str),
                buffer=segment.buf, offset=offset,
            )
            if resolved is None:
                resolved = dict(payload)
            resolved[field] = np.array(view, copy=True)
    return payload if resolved is None else resolved


# -- worker-process globals (one ShardWorker per process) ----------------
_WORKER: Optional[ShardWorker] = None
#: Segment attachments backing the current index views: the full snapshot
#: plus any delta segments merged since (views of *unchanged* arrays keep
#: pointing into earlier segments, so the whole chain must stay mapped
#: until a full re-attach replaces it).
_SEGMENTS: List[Any] = []
#: The mmap attachment backing the current index on the on-disk transport
#: (kept open across delta merges for the same reason as ``_SEGMENTS``;
#: replaced — never unlinked — on a full re-attach).
_MAPPING: Optional[Any] = None
_FAULTS: Optional[FaultPlan] = None


def _attach_store_index(path: str) -> "GraphIndex":
    """Worker-side mmap attach of a persisted index snapshot.

    The store's own loader does everything: header verification, zero-copy
    views, janitor mapping registration in *this* process.  Tracks the
    mapping in ``_MAPPING`` so a later full re-attach can release it.
    """
    global _MAPPING
    from ..graph.store import load_index

    index = load_index(path, mmap=True)
    _MAPPING = index.store_mapping
    return index


def _mp_initialize(
    spec_blob: bytes,
    segment_name: Optional[str],
    arrays_blob: Optional[bytes],
    worker_id: int = 0,
    fault_blob: Optional[bytes] = None,
) -> None:
    """Pool initializer: attach the index buffers and build the worker.

    A spec without ``meta`` builds a graph-free worker (the cover phase
    works on ``Σ`` alone and needs no index).  ``fault_blob`` arms a
    pickled :class:`~repro.parallel.faults.FaultPlan` in this process —
    the chaos hook; respawned workers normally receive ``None``.
    """
    global _WORKER, _SEGMENTS, _FAULTS
    plan = pickle.loads(fault_blob) if fault_blob is not None else None
    _FAULTS = plan if plan is not None and plan.applies_to(worker_id) else None
    spec = pickle.loads(spec_blob)
    if spec.get("mmap_path") is not None:
        index = _attach_store_index(spec["mmap_path"])
        _WORKER = ShardWorker(None, index, spec["gamma"])
        return
    if spec.get("meta") is None:
        _WORKER = ShardWorker(None, None, spec["gamma"])
        return
    if segment_name is not None:
        segment = _attach_segment(segment_name)
        _SEGMENTS = [segment]
        arrays = _views_from_layout(spec["layout"], segment.buf)
    else:
        arrays = pickle.loads(arrays_blob)
    index = GraphIndex.from_buffers(spec["meta"], arrays)
    _WORKER = ShardWorker(None, index, spec["gamma"])


def _mp_attach_index(
    spec_blob: bytes, segment_name: Optional[str], arrays_blob: Optional[bytes]
) -> bool:
    """Swap the worker process onto a new full index snapshot.

    Builds the new detached :class:`GraphIndex` first, then closes the old
    segment chain — worker-resident state (parked joins, enforcement rows
    and masks) survives untouched; only the index views are replaced.
    """
    global _WORKER, _SEGMENTS, _MAPPING
    spec = pickle.loads(spec_blob)
    if spec.get("mmap_path") is not None:
        old_mapping = _MAPPING
        _WORKER.index = _attach_store_index(spec["mmap_path"])
        old, _SEGMENTS = _SEGMENTS, []
        for segment in old:
            segment.close()
        if old_mapping is not None and old_mapping is not _MAPPING:
            old_mapping.close()
        return True
    if segment_name is not None:
        segment = _attach_segment(segment_name)
        chain = [segment]
        arrays = _views_from_layout(spec["layout"], segment.buf)
    else:
        chain = []
        arrays = pickle.loads(arrays_blob)
    _WORKER.index = GraphIndex.from_buffers(spec["meta"], arrays)
    old, _SEGMENTS = _SEGMENTS, chain
    old_mapping, _MAPPING = _MAPPING, None
    for segment in old:
        segment.close()
    if old_mapping is not None:
        old_mapping.close()
    return True


def _index_arrays(index: GraphIndex) -> Dict[str, np.ndarray]:
    """The current index's arrays under their export names (zero-copy).

    Mirrors :meth:`GraphIndex.export_buffers` naming without its freshness
    check — a detached worker index has no graph to be fresh against.
    """
    arrays = {
        name: getattr(index, name) for name in GraphIndex._BUFFER_FIELDS
    }
    for attr, column in index._attr_codes.items():
        arrays[f"attr:{attr}"] = column
    return arrays


def _mp_attach_delta(
    spec_blob: bytes, segment_name: Optional[str], arrays_blob: Optional[bytes]
) -> bool:
    """Merge a changed-array delta into the worker's current index.

    ``spec["names"]`` lists every array of the *new* snapshot; changed ones
    arrive in the delta segment (or pickled), unchanged ones are taken from
    the live index — byte-identical to what a full re-export would ship,
    since unchanged means bytewise-equal under the new meta.  The delta
    segment joins the attachment chain (its views live as long as the
    index); dropped arrays simply stop being referenced.
    """
    global _WORKER, _SEGMENTS
    spec = pickle.loads(spec_blob)
    if segment_name is not None:
        segment = _attach_segment(segment_name)
        changed = _views_from_layout(spec["layout"], segment.buf)
        _SEGMENTS.append(segment)
    else:
        changed = pickle.loads(arrays_blob)
    current = _index_arrays(_WORKER.index)
    merged = {
        name: changed[name] if name in changed else current[name]
        for name in spec["names"]
    }
    _WORKER.index = GraphIndex.from_buffers(spec["meta"], merged)
    return True


def _mp_execute(op: str, key: int, payload: Dict[str, Any]) -> Tuple[Any, float]:
    """Run one op in the worker process, returning (result, compute secs)."""
    if _FAULTS is not None:
        # injected faults fire *before* the op runs, so a chaos kill never
        # half-applies worker state (replay + retry apply it exactly once)
        _FAULTS.apply(op)
    cache: Dict[str, Any] = {}
    try:
        started = time.perf_counter()
        result = _WORKER.execute(op, key, _resolve_payload(payload, cache))
        return result, time.perf_counter() - started
    finally:
        for segment in cache.values():
            segment.close()


def _mp_execute_fused(
    elements: Sequence[Tuple[str, int, Dict[str, Any]]]
) -> List[Tuple[Any, float]]:
    """Run one worker's whole superstep slice in a single round trip.

    Elements execute in order, each producing the same ``(result, compute
    seconds)`` pair :func:`_mp_execute` would — the master charges,
    accounts and journals per element, so fused submission is invisible to
    metering, the transfer ledger and crash recovery.  Injected faults
    fire per element (the chaos counters see the same op sequence as
    unfused execution).
    """
    outcomes: List[Tuple[Any, float]] = []
    cache: Dict[str, Any] = {}
    try:
        for op, key, payload in elements:
            if _FAULTS is not None:
                _FAULTS.apply(op)
            started = time.perf_counter()
            result = _WORKER.execute(
                op, key, _resolve_payload(payload, cache)
            )
            outcomes.append((result, time.perf_counter() - started))
    finally:
        for segment in cache.values():
            segment.close()
    return outcomes


def _mp_ready() -> bool:
    return _WORKER is not None


class MultiprocessBackend(ExecutionBackend):
    """Real worker processes over shared-memory graph buffers.

    One single-process :class:`ProcessPoolExecutor` per worker pins shard
    state to its process (plain pools cannot route tasks).  Construction
    blocks until every worker has attached, so export/attach errors surface
    in the master, not as broken futures mid-run.

    ``index=None`` builds *graph-free* workers: the cover phase
    (:func:`~repro.parallel.parcover.parallel_cover`) operates on ``Σ``
    alone, so a standalone ``ParCover`` run needs processes but no graph.
    Discovery and enforcement require the index (their engines enforce it).
    """

    name = "multiprocess"
    remote = True

    def __init__(
        self,
        num_workers: int,
        index: Optional[GraphIndex],
        gamma: Sequence[str],
        use_shared_memory: bool = True,
        fault: Optional[FaultConfig] = None,
        fuse_ops: bool = True,
        tracer: Any = NULL_TRACER,
    ) -> None:
        self.num_workers = num_workers
        self.fuse_ops = bool(fuse_ops)
        self.tracer = tracer
        # pin the snapshot: the token is id()-based, so the objects must
        # stay alive for the backend's lifetime or a recycled id could
        # falsely validate a different graph
        self._index = index
        self._gamma = list(gamma)
        self._use_shared_memory = bool(
            use_shared_memory and shared_memory_available()
        )
        self._fault = fault
        self._plan = (
            FaultPlan.from_json(fault.fault_plan) if fault is not None else None
        )
        # staging honors the same opt-out as the index transport: with
        # shared memory disabled (or absent), rebalancing falls back to
        # the fetch-through-master route instead of allocating segments.
        # Supervision disables it too: staging segments are unlinked right
        # after their superstep, so an install-log replay could not
        # reconstruct them — the fetch-through-master fallback is fully
        # replayable and produces identical results.
        self.supports_staging = self._use_shared_memory and fault is None
        self.transfers = TransferLedger()
        self.lifecycle = LifecycleCounters(
            pools_started=num_workers,
            index_attaches=1 if index is not None else 0,
        )
        self.source_token = (
            (id(index.graph), id(index)) if index is not None else (None, None)
        )
        # crashed earlier masters may have left segments behind — sweep
        # before allocating new ones (cheap: one spool-directory scan)
        janitor.sweep_orphans(tracer)
        if tracer.enabled and self._plan is not None:
            tracer.event("fault_plan_armed", plan=self._plan.as_dict())
        # supervision state: per-worker pool generation (a future from an
        # older generation failed because its pool was already replaced),
        # respawn budget, the install log, and demoted in-process shards
        self._generation = [0] * num_workers
        self._respawns = [0] * num_workers
        self._journals: List[List[Tuple[str, int, Dict[str, Any]]]] = [
            [] for _ in range(num_workers)
        ]
        self._local: Dict[int, ShardWorker] = {}
        self._degrade_warned = False
        self.recovery_seconds = 0.0
        self.buffers: Optional[SharedIndexBuffers] = None
        #: How the index snapshot reaches the workers: ``mmap`` (persisted
        #: store file), ``shm`` (shared-memory segment), ``pickle``
        #: (fallback channel) or ``none`` (graph-free pool).
        self.index_transport = "none"
        self._base_initargs, self.buffers = self._index_initargs(index)
        if tracer.enabled and index is not None:
            tracer.event(
                "index_transport",
                transport=self.index_transport,
                path=getattr(index, "store_path", None)
                if self.index_transport == "mmap"
                else None,
            )
        # the previous snapshot's export (zero-copy array references into
        # that index), diffed on refresh_index to ship only what changed
        self._last_export = (
            index.export_buffers() if index is not None else None
        )
        self._pools: List[Optional[ProcessPoolExecutor]] = []
        try:
            for worker in range(num_workers):
                self._pools.append(self._spawn_pool(worker, respawn=False))
            for pool in self._pools:
                if not pool.submit(_mp_ready).result():
                    raise RuntimeError("worker failed to initialize")
        except Exception:
            self.shutdown()
            raise
        self._down = False

    def _spawn_pool(self, worker: int, respawn: bool) -> ProcessPoolExecutor:
        """One single-process pool for ``worker``, armed with its plan.

        A respawned worker only re-arms the fault plan when the plan says
        ``persist`` — by default recovery converges because the fresh
        process is fault-free.
        """
        plan = self._plan
        if respawn and (plan is None or not plan.persist):
            plan = None
        fault_blob = pickle.dumps(plan) if plan is not None else None
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=_mp_initialize,
            initargs=(*self._base_initargs, worker, fault_blob),
        )

    def _index_initargs(
        self, index: Optional[GraphIndex]
    ) -> Tuple[Tuple, Optional[SharedIndexBuffers]]:
        """``(initializer args, owned buffers)`` for shipping one snapshot.

        Transport ladder, best first: a *persisted* snapshot
        (``index.store_path`` naming a store file whose fingerprint still
        matches) ships as just the path — every worker mmap-attaches the
        file and the master allocates nothing; otherwise the arrays are
        packed into one shared-memory segment; without shared memory they
        fall back to the pickle channel.  The chosen route is recorded in
        :attr:`index_transport`.  All three routes are replayable from
        ``_base_initargs`` by a supervised respawn (the store file must
        simply outlive the backend, like the segment does).
        """
        if index is None:
            self.index_transport = "none"
            spec = {"meta": None, "gamma": self._gamma}
            return (pickle.dumps(spec), None, None), None
        store_path = getattr(index, "store_path", None)
        if store_path is not None:
            from ..graph.store import snapshot_matches

            if snapshot_matches(
                store_path, index.num_nodes, index.num_edges, index.version
            ):
                self.index_transport = "mmap"
                spec = {
                    "meta": None,
                    "mmap_path": str(store_path),
                    "gamma": self._gamma,
                }
                return (pickle.dumps(spec), None, None), None
        if self._use_shared_memory:
            self.index_transport = "shm"
            buffers = SharedIndexBuffers(index)
            spec = {
                "meta": buffers.meta,
                "layout": buffers.layout,
                "gamma": self._gamma,
            }
            return (pickle.dumps(spec), buffers.name, None), buffers
        self.index_transport = "pickle"
        meta, arrays = index.export_buffers()
        spec = {"meta": meta, "gamma": self._gamma}
        return (pickle.dumps(spec), None, pickle.dumps(arrays)), None

    @property
    def shm_name(self) -> Optional[str]:
        """The shared segment's name (None on the pickle-fallback path)."""
        return self.buffers.name if self.buffers is not None else None

    def refresh_index(self, index: GraphIndex) -> None:
        """Ship a new index snapshot to the resident worker processes.

        The new segment is created and attached by every worker *before*
        the old one is unlinked, so a mid-swap failure leaves the backend
        on the previous snapshot.  Worker-resident match state survives —
        this is what lets :meth:`~repro.enforce.engine.EnforcementEngine.
        refresh` keep its persistent tables across graph mutations instead
        of re-shipping them.  Costs one index export (O(graph) into shared
        memory, no pickling of match rows); match-row transfer stays zero.
        """
        if index is None:
            raise ValueError("refresh_index requires a frozen graph index")
        export = None
        if self._fault is None and self._last_export is not None:
            export = index.export_buffers()
            changed = self._changed_arrays(export)
            if changed is not None and self._refresh_delta(index, export,
                                                           changed):
                return
        initargs, new_buffers = self._index_initargs(index)
        try:
            futures = [
                pool.submit(_mp_attach_index, *initargs)
                for worker, pool in enumerate(self._pools)
                if worker not in self._local
            ]
            for future in futures:
                future.result()
        except Exception:
            if new_buffers is not None:
                new_buffers.close()
            raise
        old = self.buffers
        self.buffers = new_buffers
        if old is not None:
            old.close()
        self._index = index
        # respawns must rebuild from the *current* snapshot, and demoted
        # in-process shards follow the swap like serial workers do
        self._base_initargs = initargs
        for shard in self._local.values():
            shard.index = index
        self.source_token = (id(index.graph), id(index))
        self._last_export = (
            export if export is not None else index.export_buffers()
        )
        self.lifecycle.index_refreshes += 1
        if self.tracer.enabled:
            self.tracer.event("index_refresh", mode="full")

    def _changed_arrays(self, export) -> Optional[Dict[str, np.ndarray]]:
        """Arrays that differ from the previous export, or ``None``.

        ``None`` means a full re-export is the better ship: more than half
        the snapshot's bytes changed, so the delta machinery would cost as
        much as the plain path while adding a segment to the chain.  An
        unchanged array is *bytewise* equal — under the new snapshot's
        meta tables it decodes to exactly what a full export would ship,
        so reusing the worker's existing view is sound even when interned
        code tables shifted (a shifted code changes the bytes).
        """
        meta, arrays = export
        previous = self._last_export[1]
        changed: Dict[str, np.ndarray] = {}
        total = 0
        changed_bytes = 0
        for name, array in arrays.items():
            total += array.nbytes
            old = previous.get(name)
            if (
                old is None
                or old.dtype != array.dtype
                or old.shape != array.shape
                or not np.array_equal(old, array)
            ):
                changed[name] = array
                changed_bytes += array.nbytes
        if total and changed_bytes * 2 > total:
            return None
        return changed

    def _refresh_delta(
        self, index: GraphIndex, export, changed: Dict[str, np.ndarray]
    ) -> bool:
        """Ship only the changed arrays; workers merge with their views.

        The delta segment is released (unlinked) as soon as every worker
        has attached — their mappings persist — and earlier segments stay
        mapped worker-side through the attachment chain, so unchanged
        views never dangle.  Gated on unsupervised backends: a respawn
        rebuilds from ``_base_initargs``, which a delta chain could not
        reconstruct.
        """
        meta, arrays = export
        spec: Dict[str, Any] = {
            "meta": meta,
            "gamma": self._gamma,
            "names": sorted(arrays),
        }
        pack: Optional[_SharedArrayPack] = None
        if self._use_shared_memory:
            pack = _SharedArrayPack(changed)
            spec["layout"] = pack.layout
            initargs = (pickle.dumps(spec), pack.name, None)
        else:
            initargs = (pickle.dumps(spec), None, pickle.dumps(changed))
        try:
            futures = [
                pool.submit(_mp_attach_delta, *initargs)
                for worker, pool in enumerate(self._pools)
                if worker not in self._local
            ]
            for future in futures:
                future.result()
        except Exception:
            if pack is not None:
                pack.close()
            raise
        if pack is not None:
            pack.close()
        self._index = index
        for shard in self._local.values():  # pragma: no cover - fault-only
            shard.index = index
        self.source_token = (id(index.graph), id(index))
        self._last_export = export
        self.lifecycle.index_refreshes += 1
        self.lifecycle.delta_refreshes += 1
        if self.tracer.enabled:
            self.tracer.event(
                "index_refresh", mode="delta", changed_arrays=len(changed)
            )
        return True

    def create_stage(self, nbytes: int):
        """A fresh staging segment for one worker-to-worker exchange."""
        if not self.supports_staging:  # pragma: no cover - platform dependent
            raise RuntimeError("shared memory is unavailable")
        return janitor.create_segment(nbytes)

    def release_stage(self, segment) -> None:
        """Unlink a staging segment once both sides of the exchange ran."""
        janitor.unregister(segment)
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # ------------------------------------------------------------------
    # supervision: journal, submit/collect, recovery, degradation
    # ------------------------------------------------------------------
    #: State-mutating ops recorded in the per-worker install log.  Replay
    #: of this journal (against the current index snapshot) reconstructs a
    #: respawned worker's resident state exactly: every op is a
    #: deterministic function of (index, installed state, payload).
    #: Read-only ops (tally, join_groups, enforce, implication_batch,
    #: cover_probe) and un-parked joins are never journaled; staging ops
    #: cannot appear (supervised backends disable staging).
    _JOURNALED_OPS = frozenset(
        {
            "install",
            "join",
            "fetch_join",
            "scan",
            "eval",
            "probe",
            "sigma",
            "enforce_install",
            "enforce_update",
            "drop",
            "drop_store",
        }
    )

    def _journal(self, worker: int, op: str, key: int,
                 payload: Dict[str, Any]) -> None:
        """Append one *completed* op to the worker's install log.

        Journal-on-success keeps replay + retry exactly-once for
        non-idempotent ops (an op that died mid-flight was never recorded,
        so its retry applies it once on the replayed state).  ``reset``
        clears the log; released Σ/enforcement keys compact away.
        """
        journal = self._journals[worker]
        if op == "reset":
            journal.clear()
            return
        if op == "drop_sigma":
            journal[:] = [
                entry
                for entry in journal
                if not (entry[1] == key and entry[0] == "sigma")
            ]
            return
        if op == "enforce_drop":
            journal[:] = [
                entry
                for entry in journal
                if not (entry[1] == key and entry[0].startswith("enforce"))
            ]
            return
        if op == "join" and not payload.get("park"):
            return  # nothing parked: the matches returned to the master
        if op in self._JOURNALED_OPS:
            journal.append((op, key, payload))

    @staticmethod
    def _is_transport_failure(error: BaseException) -> bool:
        """Worker-death/hang failures (recoverable), vs real op errors."""
        return isinstance(error, (BrokenProcessPool, _FuturesTimeout, OSError))

    def _run_local(self, worker: int, op: str, key: int,
                   payload: Dict[str, Any]) -> Tuple[Any, float]:
        """Execute inline on a demoted worker slot (the degraded mode)."""
        started = time.perf_counter()
        result = self._local[worker].execute(op, key, payload)
        return result, time.perf_counter() - started

    def _submit(self, worker: int, op: str, key: int,
                payload: Dict[str, Any]):
        """Dispatch one supervised op; returns a handle for _collect.

        Demoted slots execute inline immediately — every earlier op of a
        demoted worker already ran inline, so in-order semantics hold.
        """
        if worker in self._local:
            return ("local", self._run_local(worker, op, key, payload))
        return (
            self._generation[worker],
            self._pools[worker].submit(_mp_execute, op, key, payload),
        )

    def _collect(self, worker: int, op: str, key: int,
                 payload: Dict[str, Any], handle) -> Tuple[Any, float]:
        """Await one supervised op, recovering and retrying on failure."""
        tag, future = handle
        if tag == "local":
            return future
        generation = tag
        attempts = 0
        while True:
            try:
                return future.result(timeout=self._fault.op_timeout_s)
            except Exception as error:
                if not self._is_transport_failure(error):
                    raise  # a real op error: supervision must not mask bugs
                if isinstance(error, _FuturesTimeout):
                    self.lifecycle.timeouts += 1
                    if self.tracer.enabled:
                        self.tracer.event("timeout", worker=worker, op=op)
                if worker not in self._local and (
                    generation == self._generation[worker]
                ):
                    # first failure of this pool generation: replace the
                    # worker and replay its log.  A stale generation means
                    # a sibling request already recovered this worker — the
                    # retry below just re-submits to the healthy pool.
                    self._recover(worker)
                if worker in self._local:
                    return self._run_local(worker, op, key, payload)
                attempts += 1
                if attempts > self._fault.max_retries:
                    raise
                self.lifecycle.retries += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "retry", worker=worker, op=op, attempt=attempts
                    )
                time.sleep(self._fault.backoff_base * (2 ** (attempts - 1)))
                generation = self._generation[worker]
                future = self._pools[worker].submit(
                    _mp_execute, op, key, payload
                )

    def _recover(self, worker: int) -> None:
        """Respawn one worker and replay its install log (or degrade).

        Loops because the replacement can die during replay (a persisted
        chaos plan): each attempt burns one respawn from the budget until
        replay completes or the slot degrades to in-process execution.
        """
        started = time.perf_counter()
        try:
            while True:
                old = self._pools[worker]
                if old is not None:
                    # a hung (timed-out) worker won't exit on its own
                    for process in getattr(old, "_processes", {}).values():
                        try:
                            process.kill()
                        except Exception:  # pragma: no cover - already dead
                            pass
                    old.shutdown(wait=False)
                    self._pools[worker] = None
                self._respawns[worker] += 1
                self.lifecycle.respawns += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "respawn",
                        worker=worker,
                        attempt=self._respawns[worker],
                        journal_ops=len(self._journals[worker]),
                    )
                if self._respawns[worker] > self._fault.max_respawns:
                    self._degrade(worker)
                    return
                pool = self._spawn_pool(worker, respawn=True)
                try:
                    pool.submit(_mp_ready).result(
                        timeout=self._fault.op_timeout_s
                    )
                    for op, key, payload in self._journals[worker]:
                        pool.submit(_mp_execute, op, key, payload).result(
                            timeout=self._fault.op_timeout_s
                        )
                except Exception as error:
                    pool.shutdown(wait=False)
                    if not self._is_transport_failure(error):
                        raise
                    continue  # died again mid-replay: next respawn attempt
                self._pools[worker] = pool
                self._generation[worker] += 1
                return
        finally:
            self.recovery_seconds += time.perf_counter() - started

    def _degrade(self, worker: int) -> None:
        """Demote one slot to an in-process shard seeded from its log."""
        if not self._fault.degrade_to_serial:
            raise RuntimeError(
                f"worker {worker} failed more than max_respawns="
                f"{self._fault.max_respawns} times"
            )
        shard = ShardWorker(None, self._index, self._gamma)
        for op, key, payload in self._journals[worker]:
            shard.execute(op, key, payload)
        self._local[worker] = shard
        self._generation[worker] += 1
        self.lifecycle.degraded_workers += 1
        if self.tracer.enabled:
            self.tracer.event(
                "degrade", worker=worker, replayed_ops=len(self._journals[worker])
            )
        if not self._degrade_warned:
            self._degrade_warned = True
            warnings.warn(
                "multiprocess worker(s) exhausted their respawn budget; "
                "degrading the affected shard(s) to in-process serial "
                "execution for the rest of this backend's lifetime",
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # fused submission: one round trip per worker per batch
    # ------------------------------------------------------------------
    @staticmethod
    def _worker_groups(requests: Sequence[Request]) -> Dict[int, List[int]]:
        """Request positions grouped by worker, original order preserved."""
        groups: Dict[int, List[int]] = {}
        for position, request in enumerate(requests):
            groups.setdefault(request[0], []).append(position)
        return groups

    def _submit_fused(self, worker: int,
                      elements: List[Tuple[str, int, Dict[str, Any]]]):
        """Dispatch one worker's fused element list (supervised path)."""
        if worker in self._local:
            return (
                "local",
                [
                    self._run_local(worker, op, key, payload)
                    for op, key, payload in elements
                ],
            )
        return (
            self._generation[worker],
            self._pools[worker].submit(_mp_execute_fused, elements),
        )

    def _collect_fused(self, worker: int,
                       elements: List[Tuple[str, int, Dict[str, Any]]],
                       handle) -> List[Tuple[Any, float]]:
        """Await one fused batch, recovering and retrying on failure.

        The whole batch is the retry unit: a worker that died mid-batch
        discarded every partial effect with its process, and nothing of the
        batch was journaled yet, so respawn + log replay + full-batch retry
        applies each element exactly once.  The deadline scales with the
        element count (per-op deadlines, fused transport).
        """
        tag, future = handle
        if tag == "local":
            return future
        generation = tag
        deadline = self._fault.op_timeout_s * max(1, len(elements))
        attempts = 0
        while True:
            try:
                return future.result(timeout=deadline)
            except Exception as error:
                if not self._is_transport_failure(error):
                    raise  # a real op error: supervision must not mask bugs
                if isinstance(error, _FuturesTimeout):
                    self.lifecycle.timeouts += 1
                    if self.tracer.enabled:
                        self.tracer.event(
                            "timeout", worker=worker, ops=len(elements)
                        )
                if worker not in self._local and (
                    generation == self._generation[worker]
                ):
                    self._recover(worker)
                if worker in self._local:
                    return [
                        self._run_local(worker, op, key, payload)
                        for op, key, payload in elements
                    ]
                attempts += 1
                if attempts > self._fault.max_retries:
                    raise
                self.lifecycle.retries += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "retry",
                        worker=worker,
                        ops=len(elements),
                        attempt=attempts,
                    )
                time.sleep(self._fault.backoff_base * (2 ** (attempts - 1)))
                generation = self._generation[worker]
                future = self._pools[worker].submit(
                    _mp_execute_fused, elements
                )

    def _stage(self, requests: Sequence[Request]):
        """Payload staging when the segment transport is usable."""
        if self._use_shared_memory and self._fault is None:
            # supervised backends skip it: a journal replay could not
            # reconstruct an unlinked payload segment (same rationale as
            # staging); pickled payloads are fully replayable
            return _stage_payloads(requests)
        return list(requests), None

    # ------------------------------------------------------------------
    def run_superstep(self, step, requests: Sequence[Request]) -> List[Any]:
        requests = list(requests)
        if self._fault is None:
            staged, pack = self._stage(requests)
            try:
                if self.fuse_ops and len(requests) > 1:
                    groups = self._worker_groups(requests)
                    futures = {
                        worker: self._pools[worker].submit(
                            _mp_execute_fused,
                            [staged[p][1:] for p in positions],
                        )
                        for worker, positions in groups.items()
                    }
                    results: List[Any] = [None] * len(requests)
                    for worker, positions in groups.items():
                        outcomes = futures[worker].result()
                        for position, (result, seconds) in zip(
                            positions, outcomes
                        ):
                            _, op, _key, payload = requests[position]
                            step.charge(worker, seconds, op)
                            _account(self, op, payload, result)
                            results[position] = result
                    return results
                futures = [
                    (
                        worker,
                        self._pools[worker].submit(
                            _mp_execute, op, key, payload
                        ),
                    )
                    for worker, op, key, payload in staged
                ]
                results = []
                for (worker, future), (_, op, _key, payload) in zip(
                    futures, requests
                ):
                    result, seconds = future.result()
                    step.charge(worker, seconds, op)
                    _account(self, op, payload, result)
                    results.append(result)
                return results
            finally:
                if pack is not None:
                    pack.close()
        if self.fuse_ops and len(requests) > 1:
            groups = self._worker_groups(requests)
            elements = {
                worker: [requests[p][1:] for p in positions]
                for worker, positions in groups.items()
            }
            handles = {
                worker: self._submit_fused(worker, elements[worker])
                for worker in groups
            }
            before = self.recovery_seconds
            results = [None] * len(requests)
            for worker, positions in groups.items():
                outcomes = self._collect_fused(
                    worker, elements[worker], handles[worker]
                )
                for position, (result, seconds) in zip(positions, outcomes):
                    _, op, key, payload = requests[position]
                    step.charge(worker, seconds, op)
                    _account(self, op, payload, result)
                    self._journal(worker, op, key, payload)
                    results[position] = result
            if self.recovery_seconds > before:
                step.recover(self.recovery_seconds - before)
            return results
        handles = [
            (worker, op, key, payload, self._submit(worker, op, key, payload))
            for worker, op, key, payload in requests
        ]
        before = self.recovery_seconds
        results = []
        for worker, op, key, payload, handle in handles:
            result, seconds = self._collect(worker, op, key, payload, handle)
            step.charge(worker, seconds, op)
            _account(self, op, payload, result)
            self._journal(worker, op, key, payload)
            results.append(result)
        if self.recovery_seconds > before:
            step.recover(self.recovery_seconds - before)
        return results

    def run_unmetered(
        self, requests: Sequence[Request], wait: bool = True
    ) -> List[Any]:
        requests = list(requests)
        if self._fault is None:
            # fire-and-forget batches (drops) carry no arrays — stage only
            # when the master will wait, so a payload segment is never
            # released while a worker might still be resolving it
            staged, pack = self._stage(requests) if wait else (requests, None)
            try:
                if self.fuse_ops and len(requests) > 1:
                    groups = self._worker_groups(requests)
                    futures = {
                        worker: self._pools[worker].submit(
                            _mp_execute_fused,
                            [staged[p][1:] for p in positions],
                        )
                        for worker, positions in groups.items()
                    }
                    if not wait:
                        return []
                    results: List[Any] = [None] * len(requests)
                    for worker, positions in groups.items():
                        outcomes = futures[worker].result()
                        for position, (result, seconds) in zip(
                            positions, outcomes
                        ):
                            _, op, _key, payload = requests[position]
                            if self.tracer.enabled:
                                self.tracer.worker_op(worker, op, seconds)
                            _account(self, op, payload, result)
                            results[position] = result
                    return results
                futures = [
                    self._pools[worker].submit(_mp_execute, op, key, payload)
                    for worker, op, key, payload in staged
                ]
                if not wait:
                    return []
                results = []
                for future, (worker, op, _key, payload) in zip(
                    futures, requests
                ):
                    result, seconds = future.result()
                    if self.tracer.enabled:
                        self.tracer.worker_op(worker, op, seconds)
                    _account(self, op, payload, result)
                    results.append(result)
                return results
            finally:
                if pack is not None:
                    pack.close()
        if self.fuse_ops and len(requests) > 1:
            groups = self._worker_groups(requests)
            elements = {
                worker: [requests[p][1:] for p in positions]
                for worker, positions in groups.items()
            }
            handles = {
                worker: self._submit_fused(worker, elements[worker])
                for worker in groups
            }
            if not wait:
                # fire-and-forget is only used for idempotent releases
                # (drops); journaling at submit time is safe for those, and
                # replay keeps the submit order
                for worker, op, key, payload in requests:
                    self._journal(worker, op, key, payload)
                return []
            results = [None] * len(requests)
            for worker, positions in groups.items():
                outcomes = self._collect_fused(
                    worker, elements[worker], handles[worker]
                )
                for position, (result, seconds) in zip(positions, outcomes):
                    _, op, key, payload = requests[position]
                    if self.tracer.enabled:
                        self.tracer.worker_op(worker, op, seconds)
                    _account(self, op, payload, result)
                    self._journal(worker, op, key, payload)
                    results[position] = result
            return results
        handles = [
            (worker, op, key, payload, self._submit(worker, op, key, payload))
            for worker, op, key, payload in requests
        ]
        if not wait:
            # fire-and-forget is only used for idempotent releases (drops);
            # journaling at submit time is safe for those, and replay keeps
            # the submit order, so a lost drop is re-applied on recovery
            for worker, op, key, payload, _handle in handles:
                self._journal(worker, op, key, payload)
            return []
        results = []
        for worker, op, key, payload, handle in handles:
            result, seconds = self._collect(worker, op, key, payload, handle)
            if self.tracer.enabled:
                self.tracer.worker_op(worker, op, seconds)
            _account(self, op, payload, result)
            self._journal(worker, op, key, payload)
            results.append(result)
        return results

    def shutdown(self) -> None:
        """Release pools, journals and shared memory (fully idempotent).

        Safe on a partially-constructed backend (the ``__init__`` failure
        path) and on repeated calls — ``LifecycleCounters.shutdowns``
        increments exactly once.
        """
        if getattr(self, "_down", False):
            return
        self._down = True
        self.lifecycle.shutdowns += 1
        for pool in getattr(self, "_pools", []):
            if pool is not None:
                pool.shutdown(wait=True)
        self._pools = []
        self._local = {}
        self._journals = [[] for _ in range(self.num_workers)]
        if getattr(self, "buffers", None) is not None:
            self.buffers.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass


def make_backend(
    name: str,
    num_workers: int,
    graph: Optional[Graph],
    index: Optional[GraphIndex],
    gamma: Sequence[str],
    use_shared_memory: bool = True,
    fault: Any = "auto",
    fuse_ops: bool = True,
    tracer: Any = NULL_TRACER,
) -> ExecutionBackend:
    """Instantiate a backend by config name (``serial`` | ``multiprocess``).

    ``graph``/``index`` may both be ``None`` for graph-free work (the cover
    phase); discovery and enforcement pass the frozen index so multiprocess
    workers can attach it via shared memory.

    ``fault`` is the supervision policy (a :class:`~repro.core.config.
    FaultConfig`, or ``None`` to disable).  The default ``"auto"`` follows
    the environment: supervision turns on — with the injected plan — when
    ``REPRO_FAULT_PLAN`` is set, so the chaos CI job covers call sites that
    never mention faults.  The serial backend ignores it (in-process
    execution cannot lose a worker).

    ``fuse_ops`` enables the fused transport: one submission per worker
    per batch instead of one per op (see the module docstring).  Results
    are identical either way; ``False`` restores per-op submission (the
    differential suites pin the equivalence).

    ``tracer`` wires a :class:`repro.obs.Tracer` into the backend (and
    should match the cluster's): construction/supervision emit typed
    events and unmetered batches emit worker-lane op spans.  The default
    ``NULL_TRACER`` keeps every hook a no-op.
    """
    if fault == "auto":
        fault = _default_fault()
    if name == "serial":
        return SerialBackend(num_workers, graph, index, gamma,
                             fuse_ops=fuse_ops, tracer=tracer)
    if name == "multiprocess":
        return MultiprocessBackend(
            num_workers,
            index,
            gamma,
            use_shared_memory=use_shared_memory,
            fault=fault,
            fuse_ops=fuse_ops,
            tracer=tracer,
        )
    raise ValueError(
        f"unknown parallel backend {name!r} (expected one of {BACKEND_NAMES})"
    )
