"""Execution backends for ``ParDis`` — simulated workers or real processes.

``ParDis`` (Section 6.2) is a BSP algorithm: per superstep, the master sends
each worker a batch of shard-local tasks (incremental joins, boolean-mask
lattice validation, tally collection) and aggregates the small results.  The
engine expresses every worker-side operation as an *op* on a
:class:`ShardWorker` — a worker's private state: its match-table shard per
verified pattern and its lattice mask store — and delegates execution to a
backend:

* :class:`SerialBackend` runs the ops inline in the master process under the
  :class:`~repro.parallel.cluster.SimulatedCluster` metering (the historical
  behavior; deterministic and dependency-free, the default).
* :class:`MultiprocessBackend` runs each worker as a dedicated
  single-process :class:`~concurrent.futures.ProcessPoolExecutor` (one pool
  per worker gives task→worker affinity, which the shard state requires).
  The frozen :class:`~repro.graph.index.GraphIndex` is shipped **once** via
  ``multiprocessing.shared_memory`` — workers attach the flat numpy buffers
  zero-copy — with a pickle fallback for platforms (or configs) without
  shared memory.  Per-op compute seconds are measured worker-side and
  charged back into the simulated-cluster ledger so the modeled BSP metrics
  stay comparable across backends; real wall-clock lives in
  ``DiscoveryResult.stats.elapsed_seconds``.

Both backends execute the same op implementations, so the discovered GFD
sets are identical by construction — the randomized differential harness
(``tests/test_differential.py``) asserts it.

Shared-memory lifecycle: the master owns the segment (created in
:class:`SharedIndexBuffers`), workers attach without tracking (so the
resource tracker never double-unlinks), and :meth:`MultiprocessBackend.
shutdown` joins the pools, closes and unlinks.  ``tests/test_backend.py``
asserts no segment survives a shutdown.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.match_table import MatchTable
from ..core.spawning import counts_from_statistics, extension_statistics
from ..graph.graph import Graph
from ..graph.index import GraphIndex
from ..pattern.incremental import extend_matches

try:  # pragma: no cover - availability depends on the platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "BACKEND_NAMES",
    "ShardWorker",
    "ExecutionBackend",
    "SerialBackend",
    "MultiprocessBackend",
    "SharedIndexBuffers",
    "make_backend",
    "shared_memory_available",
]

#: Recognized values of ``DiscoveryConfig.parallel_backend``.
BACKEND_NAMES = ("serial", "multiprocess")

#: One superstep request: ``(worker, op name, pattern node key, payload)``.
Request = Tuple[int, str, int, Dict[str, Any]]


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` exists on this platform."""
    return _shared_memory is not None


# ----------------------------------------------------------------------
# worker-side op implementations (shared by every backend)
# ----------------------------------------------------------------------
class ShardWorker:
    """One worker's shard state plus the op implementations over it.

    State per verified pattern (keyed by the master's node key): the shard
    :class:`MatchTable` and, during ``HSpawn``, the lattice mask store
    ``{mask id: boolean row mask}``.  The serial backend keeps ``n`` of
    these in-process; the multiprocess backend keeps one per worker process,
    built around the attached (detached) graph index.
    """

    def __init__(
        self,
        graph: Optional[Graph],
        index: Optional[GraphIndex],
        gamma: Sequence[str],
    ) -> None:
        self.graph = graph
        self.index = index
        self.gamma = list(gamma)
        self.tables: Dict[int, MatchTable] = {}
        self.stores: Dict[int, Dict[int, np.ndarray]] = {}
        # join results parked worker-side, keyed (parent key, extension
        # position), until an install adopts them — matches never cross the
        # process boundary unless the master orders a rebalance
        self.joins: Dict[Tuple[int, int], Any] = {}

    # ------------------------------------------------------------------
    def execute(self, op: str, key: int, payload: Dict[str, Any]) -> Any:
        """Dispatch one op (the unit the cluster meters)."""
        return getattr(self, f"op_{op}")(key, payload)

    def _parent_matches(self, table: MatchTable):
        return table.match_array if self.index is not None else table.matches

    # -- VSpawn ---------------------------------------------------------
    def op_install(self, key: int, payload: Dict[str, Any]) -> Tuple:
        """Build this worker's match-table shard (+ column statistics).

        The value/agreement counts feed the master's alphabet generation,
        saving a dedicated round per pattern (only collected when the
        pattern will be mined).
        """
        adopt = payload.get("adopt")
        matches = self.joins.pop(adopt) if adopt is not None else payload["matches"]
        table = MatchTable(
            self.graph,
            payload["pattern"],
            matches,
            self.gamma,
            index=self.index,
        )
        self.tables[key] = table
        values: Dict = {}
        agreements: Dict = {}
        if payload["mined"]:
            values = table.constant_value_counts()
            if payload["want_variable"]:
                agreements = table.variable_agreement_counts(
                    payload["same_attr_only"]
                )
        return table.num_rows, values, agreements

    def op_tally(self, key: int, payload: Dict[str, Any]):
        """Collapse this shard's extension tallies into shippable counts."""
        table = self.tables[key]
        return counts_from_statistics(
            extension_statistics(
                self.graph,
                table.pattern,
                self._parent_matches(table),
                payload["can_add"],
                index=self.index,
            )
        )

    def op_join(self, key: int, payload: Dict[str, Any]) -> List[Tuple]:
        """Join this shard with every extension edge of one parent.

        Returns ``(matches, local support, count, hit_cap)`` per extension;
        ``cap`` bounds the per-shard join (``config.max_matches_per_pattern``
        enforcement — the master combines the flags into the global
        truncation verdict).  With ``park=True`` (the cross-process mode)
        the matches stay here under ``(parent key, position)`` — the slot a
        later install adopts — and ``None`` travels in their place, so only
        scalars cross the process boundary.
        """
        table = self.tables[key]
        parent_matches = self._parent_matches(table)
        cap = payload["cap"]
        park = payload.get("park", False)
        results: List[Tuple] = []
        for position, (extension, pivot_var) in enumerate(payload["extensions"]):
            matches = extend_matches(
                self.graph,
                parent_matches,
                extension,
                max_matches=cap,
                index=self.index,
                as_array=self.index is not None,
            )
            if self.index is not None:
                count = int(matches.shape[0])
                support = (
                    int(np.unique(matches[:, pivot_var]).size) if count else 0
                )
            else:
                count = len(matches)
                support = len({match[pivot_var] for match in matches})
            hit_cap = cap is not None and count >= cap
            if park:
                self.joins[(key, position)] = matches
                results.append((None, support, count, hit_cap))
            else:
                results.append((matches, support, count, hit_cap))
        return results

    def op_fetch_join(self, key: int, payload: Dict[str, Any]):
        """Surrender one parked join result to the master (for rebalancing)."""
        return self.joins.pop((key, payload["position"]))

    # -- HSpawn ---------------------------------------------------------
    def op_scan(self, key: int, payload: Dict[str, Any]) -> Tuple[List[int], List[int]]:
        """Per-literal row counts and local distinct-pivot supports.

        Also opens this pattern's mask store (id 0 = the full mask) and
        warms the table's literal-mask cache for the lattice levels.
        """
        table = self.tables[key]
        self.stores[key] = {0: table.full_mask()}
        counts: List[int] = []
        supports: List[int] = []
        for literal in payload["literals"]:
            mask = table.literal_mask(literal)
            counts.append(table.mask_count(mask))
            supports.append(table.mask_support(mask))
        return counts, supports

    def op_eval(self, key: int, payload: Dict[str, Any]) -> Tuple:
        """Evaluate one lattice level's candidate batch on this shard.

        ``specs`` entries are ``(parent mask id, lhs literal, rhs literal,
        new mask id)``; candidates sharing a parent mask are stacked into
        one numpy operation.  New LHS masks stay in the store for the next
        level; ``drop`` lists mask ids the master retired last level.
        """
        table = self.tables[key]
        store = self.stores[key]
        for dead in payload.get("drop", ()):
            store.pop(dead, None)
        specs = payload["specs"]
        groups: Dict[int, List[int]] = {}
        for position, spec in enumerate(specs):
            groups.setdefault(spec[0], []).append(position)
        count_lhs_arr = np.zeros(len(specs), dtype=np.int64)
        count_both_arr = np.zeros(len(specs), dtype=np.int64)
        support_arr = np.zeros(len(specs), dtype=np.int64)
        for rows_id, positions in sorted(groups.items()):
            parent = store[rows_id]
            lhs_stack = np.stack(
                [table.literal_mask(specs[p][1]) for p in positions]
            )
            lhs_stack &= parent
            rhs_stack = np.stack(
                [table.literal_mask(specs[p][2]) for p in positions]
            )
            rhs_stack &= lhs_stack
            count_lhs = lhs_stack.sum(axis=1)
            count_both = rhs_stack.sum(axis=1)
            active = np.flatnonzero(count_both)
            if active.size:
                supports = table.stack_supports(rhs_stack[active])
                for where, offset in enumerate(active):
                    support_arr[positions[offset]] = supports[where]
            for offset, p in enumerate(positions):
                store[specs[p][3]] = lhs_stack[offset]
                count_lhs_arr[p] = count_lhs[offset]
                count_both_arr[p] = count_both[offset]
        return count_lhs_arr, count_both_arr, support_arr

    def op_probe(self, key: int, payload: Dict[str, Any]) -> List[bool]:
        """``NHSpawn`` batch: does any shard row satisfy ``X ∪ {l''}``?"""
        table = self.tables[key]
        store = self.stores[key]
        for dead in payload.get("drop", ()):
            store.pop(dead, None)
        specs = payload["specs"]
        groups: Dict[int, List[int]] = {}
        for position, spec in enumerate(specs):
            groups.setdefault(spec[0], []).append(position)
        overlaps: List[bool] = [False] * len(specs)
        for rows_id, positions in sorted(groups.items()):
            parent = store[rows_id]
            stack = np.stack(
                [table.literal_mask(specs[p][1]) for p in positions]
            )
            stack &= parent
            hits = stack.any(axis=1)
            for offset, p in enumerate(positions):
                overlaps[p] = bool(hits[offset])
        return overlaps

    # -- enforcement (repro.enforce) ------------------------------------
    def op_enforce(self, key: int, payload: Dict[str, Any]) -> List[Tuple]:
        """Evaluate one pattern group's compiled rules on this shard.

        ``payload["rules"]`` entries are ``(lhs literals, rhs literal or
        None)`` over the *canonical* pattern variables (``None`` = negative
        GFD).  Per rule the result is ``(violation count, distinct
        violating node ids, violating match rows)``; rows are canonical
        match tuples as an ``(N, vars)`` int64 array.  Counts and node sets
        are exact per shard; the master merges across shards.
        """
        table = self.tables[key]
        match_array = table.match_array
        results: List[Tuple] = []
        for lhs, rhs in payload["rules"]:
            mask = table.violation_mask(lhs, rhs)
            violating = match_array[mask]
            nodes = (
                np.unique(violating)
                if violating.size
                else np.empty(0, dtype=np.int64)
            )
            results.append((int(violating.shape[0]), nodes, violating))
        return results

    # -- lifecycle ------------------------------------------------------
    def op_drop_store(self, key: int, payload: Dict[str, Any]) -> None:
        """Free the mask store once a pattern's ``HSpawn`` completes."""
        self.stores.pop(key, None)
        return None

    def op_drop(self, key: int, payload: Dict[str, Any]) -> None:
        """Free all state of a pattern (after its children are joined)."""
        self.tables.pop(key, None)
        self.stores.pop(key, None)
        for slot in [slot for slot in self.joins if slot[0] == key]:
            del self.joins[slot]  # un-adopted parks (e.g. truncated children)
        return None

    def op_reset(self, key: int, payload: Dict[str, Any]) -> None:
        """Clear every shard (an external backend being reused)."""
        self.tables.clear()
        self.stores.clear()
        self.joins.clear()
        return None


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Executes superstep request batches against ``n`` shard workers."""

    name: str = "abstract"
    num_workers: int = 0
    #: Whether workers live in other processes (payloads cross a pickle
    #: boundary, so bulk data should stay worker-resident when possible).
    remote: bool = False
    #: Identity of the graph snapshot the workers were built around; an
    #: engine refuses to run on a backend holding a different snapshot.
    source_token: Tuple = ()

    def run_superstep(self, step, requests: Sequence[Request]) -> List[Any]:
        """Run one BSP round of requests; results align with the batch."""
        raise NotImplementedError

    def run_unmetered(
        self, requests: Sequence[Request], wait: bool = True
    ) -> List[Any]:
        """Bookkeeping ops (drops/reset) outside the metered supersteps.

        ``wait=False`` fires and forgets (single-process pools execute
        in-order, so a later op can never overtake a drop) — keeps
        per-pattern cleanup off the master's critical path.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release every resource (processes, shared memory)."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process execution under the simulated cluster (the default)."""

    name = "serial"

    def __init__(
        self,
        num_workers: int,
        graph: Optional[Graph],
        index: Optional[GraphIndex],
        gamma: Sequence[str],
    ) -> None:
        self.num_workers = num_workers
        self.source_token = (id(graph), id(index))
        self.workers = [
            ShardWorker(graph, index, gamma) for _ in range(num_workers)
        ]

    def run_superstep(self, step, requests: Sequence[Request]) -> List[Any]:
        results = []
        for worker, op, key, payload in requests:
            shard = self.workers[worker]
            results.append(
                step.run(
                    worker,
                    lambda shard=shard, op=op, key=key, payload=payload: (
                        shard.execute(op, key, payload)
                    ),
                )
            )
        return results

    def run_unmetered(
        self, requests: Sequence[Request], wait: bool = True
    ) -> List[Any]:
        return [
            self.workers[worker].execute(op, key, payload)
            for worker, op, key, payload in requests
        ]

    def shutdown(self) -> None:
        for worker in self.workers:
            worker.op_reset(0, {})


# ----------------------------------------------------------------------
# shared-memory payload
# ----------------------------------------------------------------------
def _align(offset: int) -> int:
    return (offset + 63) & ~63


class SharedIndexBuffers:
    """Master-side owner of a graph index's shared-memory copy.

    Packs the arrays of :meth:`GraphIndex.export_buffers` into one
    ``SharedMemory`` segment (64-byte aligned) and records the layout
    ``{name: (dtype, shape, offset)}`` workers need to rebuild zero-copy
    views.  :meth:`close` unlinks the segment; the owner must outlive every
    attached worker.
    """

    def __init__(self, index: GraphIndex) -> None:
        if _shared_memory is None:  # pragma: no cover - platform dependent
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        meta, arrays = index.export_buffers()
        self.meta = meta
        layout: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
        contiguous: Dict[str, np.ndarray] = {}
        offset = 0
        for name in sorted(arrays):
            array = np.ascontiguousarray(arrays[name])
            contiguous[name] = array
            if array.nbytes == 0:
                layout[name] = (array.dtype.str, array.shape, 0)
                continue
            offset = _align(offset)
            layout[name] = (array.dtype.str, array.shape, offset)
            offset += array.nbytes
        self.layout = layout
        self.segment = _shared_memory.SharedMemory(
            create=True, size=max(1, offset)
        )
        for name, array in contiguous.items():
            if array.nbytes == 0:
                continue
            dtype_str, shape, start = layout[name]
            view = np.ndarray(
                shape, dtype=np.dtype(dtype_str),
                buffer=self.segment.buf, offset=start,
            )
            view[...] = array
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self.segment.name

    def close(self) -> None:
        """Detach and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.segment.close()
        try:
            self.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _attach_segment(name: str):
    """Attach a shared-memory segment without resource-tracker ownership.

    The tracker must not adopt worker-side attachments: it would unlink the
    master's segment when the first worker exits.  Python ≥ 3.13 exposes
    ``track=False``; earlier versions need the documented unregister
    workaround.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: attaching registers with the resource tracker,
        # which would unlink the master's segment (spawn) or unbalance the
        # shared tracker (fork).  Silence registration for this one call —
        # we are in the worker process, so the patch cannot race the master.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _views_from_layout(
    layout: Dict[str, Tuple[str, Tuple[int, ...], int]], buf
) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {}
    for name, (dtype_str, shape, offset) in layout.items():
        array = np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=buf, offset=offset
        )
        array.flags.writeable = False  # workers must never mutate the graph
        arrays[name] = array
    return arrays


# -- worker-process globals (one ShardWorker per process) ----------------
_WORKER: Optional[ShardWorker] = None
_SEGMENT = None


def _mp_initialize(
    spec_blob: bytes, segment_name: Optional[str], arrays_blob: Optional[bytes]
) -> None:
    """Pool initializer: attach the index buffers and build the worker."""
    global _WORKER, _SEGMENT
    spec = pickle.loads(spec_blob)
    if segment_name is not None:
        _SEGMENT = _attach_segment(segment_name)
        arrays = _views_from_layout(spec["layout"], _SEGMENT.buf)
    else:
        arrays = pickle.loads(arrays_blob)
    index = GraphIndex.from_buffers(spec["meta"], arrays)
    _WORKER = ShardWorker(None, index, spec["gamma"])


def _mp_execute(op: str, key: int, payload: Dict[str, Any]) -> Tuple[Any, float]:
    """Run one op in the worker process, returning (result, compute secs)."""
    started = time.perf_counter()
    result = _WORKER.execute(op, key, payload)
    return result, time.perf_counter() - started


def _mp_ready() -> bool:
    return _WORKER is not None


class MultiprocessBackend(ExecutionBackend):
    """Real worker processes over shared-memory graph buffers.

    One single-process :class:`ProcessPoolExecutor` per worker pins shard
    state to its process (plain pools cannot route tasks).  Construction
    blocks until every worker has attached, so export/attach errors surface
    in the master, not as broken futures mid-run.
    """

    name = "multiprocess"
    remote = True

    def __init__(
        self,
        num_workers: int,
        index: Optional[GraphIndex],
        gamma: Sequence[str],
        use_shared_memory: bool = True,
    ) -> None:
        if index is None:
            raise ValueError(
                "the multiprocess backend requires the frozen graph index "
                "(config.use_index=False only supports the serial backend)"
            )
        self.num_workers = num_workers
        # pin the snapshot: the token is id()-based, so the objects must
        # stay alive for the backend's lifetime or a recycled id could
        # falsely validate a different graph
        self._index = index
        self.source_token = (id(index.graph), id(index))
        self.buffers: Optional[SharedIndexBuffers] = None
        if use_shared_memory and shared_memory_available():
            self.buffers = SharedIndexBuffers(index)
            spec = {
                "meta": self.buffers.meta,
                "layout": self.buffers.layout,
                "gamma": list(gamma),
            }
            initargs = (pickle.dumps(spec), self.buffers.name, None)
        else:
            meta, arrays = index.export_buffers()
            spec = {"meta": meta, "gamma": list(gamma)}
            initargs = (pickle.dumps(spec), None, pickle.dumps(arrays))
        self._pools: List[ProcessPoolExecutor] = []
        try:
            for _ in range(num_workers):
                self._pools.append(
                    ProcessPoolExecutor(
                        max_workers=1,
                        initializer=_mp_initialize,
                        initargs=initargs,
                    )
                )
            for pool in self._pools:
                if not pool.submit(_mp_ready).result():
                    raise RuntimeError("worker failed to initialize")
        except Exception:
            self.shutdown()
            raise
        self._down = False

    @property
    def shm_name(self) -> Optional[str]:
        """The shared segment's name (None on the pickle-fallback path)."""
        return self.buffers.name if self.buffers is not None else None

    def run_superstep(self, step, requests: Sequence[Request]) -> List[Any]:
        futures = [
            (worker, self._pools[worker].submit(_mp_execute, op, key, payload))
            for worker, op, key, payload in requests
        ]
        results = []
        for worker, future in futures:
            result, seconds = future.result()
            step.charge(worker, seconds)
            results.append(result)
        return results

    def run_unmetered(
        self, requests: Sequence[Request], wait: bool = True
    ) -> List[Any]:
        futures = [
            self._pools[worker].submit(_mp_execute, op, key, payload)
            for worker, op, key, payload in requests
        ]
        if not wait:
            return []
        return [future.result()[0] for future in futures]

    def shutdown(self) -> None:
        if getattr(self, "_down", False):
            return
        self._down = True
        for pool in self._pools:
            pool.shutdown(wait=True)
        self._pools = []
        if self.buffers is not None:
            self.buffers.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass


def make_backend(
    name: str,
    num_workers: int,
    graph: Optional[Graph],
    index: Optional[GraphIndex],
    gamma: Sequence[str],
    use_shared_memory: bool = True,
) -> ExecutionBackend:
    """Instantiate a backend by config name (``serial`` | ``multiprocess``)."""
    if name == "serial":
        return SerialBackend(num_workers, graph, index, gamma)
    if name == "multiprocess":
        return MultiprocessBackend(
            num_workers, index, gamma, use_shared_memory=use_shared_memory
        )
    raise ValueError(
        f"unknown parallel backend {name!r} (expected one of {BACKEND_NAMES})"
    )
