"""Deterministic fault injection for the multiprocess backend.

A :class:`FaultPlan` describes *where* a worker process misbehaves, in terms
of the op stream it executes — the only clock every backend shares — so a
chaos run is reproducible: the same plan against the same workload kills
the same worker at the same op.  Plans are JSON (the ``REPRO_FAULT_PLAN``
environment variable, or ``FaultConfig.fault_plan``)::

    {"kill_every": 40}                       # SIGKILL before every 40th op
    {"kill_on": {"op": "eval", "nth": 2}}    # ... before the 2nd eval op
    {"delay": {"every": 7, "seconds": 1.5}}  # stall every 7th op (deadline)
    {"workers": [1], "kill_every": 5}        # only worker 1 misbehaves
    {"kill_every": 3, "persist": true}       # respawned workers re-arm

Faults fire **before** the op executes, so an injected crash never
half-applies state — the supervision layer's replay + retry then applies
the op exactly once.  By default a respawned worker receives *no* plan
(recovery converges); ``persist`` re-arms respawns, which is how the
degradation ladder (``max_respawns`` → serial demotion) is exercised.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["FAULT_PLAN_ENV", "FaultPlan"]

#: Environment variable holding a JSON fault plan (the chaos-CI hook).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


@dataclass
class FaultPlan:
    """A deterministic schedule of injected worker faults.

    Attributes:
        kill_every: ``SIGKILL`` this worker process immediately before
            every Nth op it would execute.
        kill_on: ``(op name, nth)`` — kill immediately before the nth
            execution of that op (phase-targeted crashes).
        delay_every: sleep :attr:`delay_seconds` before every Nth op
            (drives ops past the supervision deadline).
        delay_seconds: the injected stall length.
        workers: worker ids the plan applies to (``None`` = all).
        persist: re-arm the plan on respawned workers (default: a respawn
            gets a clean process, so recovery converges).
    """

    kill_every: Optional[int] = None
    kill_on: Optional[Tuple[str, int]] = None
    delay_every: Optional[int] = None
    delay_seconds: float = 0.0
    workers: Optional[Tuple[int, ...]] = None
    persist: bool = False
    # worker-process-local op counters (never cross a pickle boundary with
    # meaningful values — each process counts its own op stream)
    _ops: int = field(default=0, repr=False, compare=False)
    _per_op: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def from_json(cls, text: Optional[str]) -> Optional["FaultPlan"]:
        """Parse a JSON plan; ``None``/empty/``{}`` mean no plan."""
        if not text:
            return None
        data: Dict[str, Any] = json.loads(text)
        if not data:
            return None
        kill_on = data.get("kill_on")
        delay = data.get("delay") or {}
        workers = data.get("workers")
        return cls(
            kill_every=data.get("kill_every"),
            kill_on=(
                (str(kill_on["op"]), int(kill_on.get("nth", 1)))
                if kill_on
                else None
            ),
            delay_every=delay.get("every"),
            delay_seconds=float(delay.get("seconds", 0.0)),
            workers=tuple(int(w) for w in workers) if workers else None,
            persist=bool(data.get("persist", False)),
        )

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan from ``REPRO_FAULT_PLAN`` (``None`` when unset)."""
        return cls.from_json(os.environ.get(FAULT_PLAN_ENV))

    def applies_to(self, worker: int) -> bool:
        """Whether this plan targets the given worker id."""
        return self.workers is None or worker in self.workers

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly schedule summary (for ``fault_plan_armed`` events).

        Only the schedule travels — the process-local op counters are
        runtime state, not part of the plan's identity.
        """
        report: Dict[str, Any] = {}
        if self.kill_every is not None:
            report["kill_every"] = self.kill_every
        if self.kill_on is not None:
            report["kill_on"] = {"op": self.kill_on[0], "nth": self.kill_on[1]}
        if self.delay_every is not None:
            report["delay"] = {
                "every": self.delay_every,
                "seconds": self.delay_seconds,
            }
        if self.workers is not None:
            report["workers"] = list(self.workers)
        if self.persist:
            report["persist"] = True
        return report

    def apply(self, op: str) -> None:
        """Run the plan against the next op (called in the worker process).

        May sleep (injected stall) or ``SIGKILL`` the calling process; a
        kill happens *before* the op executes, so no state is half-applied.
        """
        self._ops += 1
        self._per_op[op] = self._per_op.get(op, 0) + 1
        if (
            self.delay_every
            and self._ops % self.delay_every == 0
            and self.delay_seconds > 0
        ):
            time.sleep(self.delay_seconds)
        if self.kill_every and self._ops % self.kill_every == 0:
            os.kill(os.getpid(), signal.SIGKILL)
        if (
            self.kill_on is not None
            and op == self.kill_on[0]
            and self._per_op[op] == self.kill_on[1]
        ):
            os.kill(os.getpid(), signal.SIGKILL)
