"""Process-lifetime registry of shared-memory segments (the *janitor*).

``multiprocessing.shared_memory`` segments are kernel objects: a crashed
master leaves them behind in ``/dev/shm`` until a reboot.  Every segment
this package creates (index buffers, worker-to-worker staging) is therefore
routed through this module:

* :func:`create_segment` allocates a segment under a recognizable name
  (``repro_shm_<pid>_<seq>``) and registers it;
* a per-process **spool file** (``<tmpdir>/repro-segment-janitor/<pid>.json``)
  records the registered names, so a later process can tell which segments
  a *dead* process abandoned;
* :func:`cleanup` — wired to ``atexit`` and chained onto ``SIGTERM``/
  ``SIGINT`` on first registration — unlinks everything still registered,
  covering ordinary exits, uncaught exceptions and polite signals;
* :func:`sweep_orphans` — run on every backend start — scans the spool
  directory for files whose owning pid is gone and unlinks the segments
  they list, covering hard crashes (``SIGKILL``, OOM) that no in-process
  hook can survive.

Only the master process creates segments; workers merely attach (via
:func:`attach_segment`, which suppresses resource-tracker adoption so a
worker exit never unlinks the master's segment).
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import signal
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

try:  # pragma: no cover - availability depends on the platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "SEGMENT_PREFIX",
    "attach_segment",
    "cleanup",
    "create_segment",
    "live_mappings",
    "live_segments",
    "register",
    "register_mapping",
    "spool_dir",
    "sweep_orphans",
    "unregister",
    "unregister_mapping",
]

#: Every janitor-managed segment name starts with this (leak checks key on
#: it; foreign segments are never swept).
SEGMENT_PREFIX = "repro_shm_"

_registry: Dict[str, object] = {}
#: Live mmap attachments of on-disk index stores (``IndexMapping``
#: objects, keyed by identity).  Mappings share the janitor's exit hooks
#: but have a strictly *close-only* lifecycle: the backing store is an
#: ordinary file owned by the user, so neither :func:`cleanup` nor
#: :func:`sweep_orphans` may ever unlink it — only shared-memory
#: *segments* (names under :data:`SEGMENT_PREFIX`) are unlinkable.
_mappings: Dict[int, object] = {}
_sequence = itertools.count()
_hooks_installed = False
_previous_handlers: Dict[int, object] = {}


def spool_dir() -> Path:
    """The directory of per-process spool files (created on demand)."""
    path = Path(tempfile.gettempdir()) / "repro-segment-janitor"
    path.mkdir(exist_ok=True)
    return path


def _spool_file(pid: Optional[int] = None) -> Path:
    return spool_dir() / f"{pid if pid is not None else os.getpid()}.json"


def _process_token(pid: int) -> Optional[str]:
    """A pid-reuse-proof identity token: the kernel process start time.

    Field 22 of ``/proc/<pid>/stat`` (``starttime``, in clock ticks since
    boot) is fixed for the life of a process and differs between any two
    processes that recycled the same pid.  Returns ``None`` where procfs is
    unavailable (non-Linux) — callers must then fall back to pid liveness
    alone.
    """
    try:
        stat = Path(f"/proc/{pid}/stat").read_text(encoding="ascii")
    except (OSError, UnicodeDecodeError):
        return None
    # the comm field (2) may contain spaces and parentheses; everything
    # after the *last* ')' is whitespace-separated fields 3..52
    _, _, rest = stat.rpartition(")")
    fields = rest.split()
    if len(fields) < 20:  # pragma: no cover - malformed stat line
        return None
    return f"starttime:{fields[19]}"


def _write_spool() -> None:
    path = _spool_file()
    if not _registry:
        path.unlink(missing_ok=True)
        return
    payload = {
        "token": _process_token(os.getpid()),
        "segments": sorted(_registry),
    }
    # temp-then-replace: a crash mid-write must never leave truncated JSON
    # where a later process's sweep_orphans() would trip over it
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(temp, path)


def _signal_cleanup(signum, frame):  # pragma: no cover - signal path
    cleanup()
    previous = _previous_handlers.get(signum)
    if callable(previous):
        previous(signum, frame)
    else:
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def _install_hooks() -> None:
    """``atexit`` + chained signal handlers, once per process."""
    global _hooks_installed
    if _hooks_installed:
        return
    _hooks_installed = True
    atexit.register(cleanup)
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            _previous_handlers[signum] = signal.signal(
                signum, _signal_cleanup
            )
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


def register(segment) -> None:
    """Track a master-owned segment until :func:`unregister` or cleanup."""
    _install_hooks()
    _registry[segment.name.lstrip("/")] = segment
    _write_spool()


def unregister(segment) -> None:
    """Stop tracking a segment (its owner released it cleanly)."""
    _registry.pop(segment.name.lstrip("/"), None)
    _write_spool()


def live_segments() -> List[str]:
    """Names currently registered by this process (for tests/metrics)."""
    return sorted(_registry)


def register_mapping(mapping) -> None:
    """Track a live mmap index attachment until close or process exit.

    The janitor only ever *closes* mappings (at :func:`cleanup` time); it
    never unlinks their backing files and :func:`sweep_orphans` never
    touches them — a sweep's unlink authority is restricted to
    :data:`SEGMENT_PREFIX` shared-memory names by construction.
    """
    _install_hooks()
    _mappings[id(mapping)] = mapping


def unregister_mapping(mapping) -> None:
    """Stop tracking a mapping (it was closed deliberately)."""
    _mappings.pop(id(mapping), None)


def live_mappings() -> List[object]:
    """The mmap attachments currently open in this process."""
    return list(_mappings.values())


def create_segment(nbytes: int):
    """A fresh registered segment under the janitor naming scheme."""
    if _shared_memory is None:  # pragma: no cover - platform dependent
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    while True:
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_sequence)}"
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=max(1, nbytes), name=name
            )
        except FileExistsError:  # pragma: no cover - pid-reuse collision
            continue
        register(segment)
        return segment


def attach_segment(name: str):
    """Attach a segment without resource-tracker ownership.

    The tracker must not adopt attachments: it would unlink the owner's
    segment when the first attaching process exits.  Python ≥ 3.13 exposes
    ``track=False``; earlier versions need the documented unregister
    workaround.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: attaching registers with the resource tracker,
        # which would unlink the owner's segment (spawn) or unbalance the
        # shared tracker (fork).  Silence registration for this one call.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def cleanup() -> List[str]:
    """Unlink every still-registered segment of this process (idempotent).

    Mmap index attachments are *closed* here too — but never unlinked:
    their backing store files are durable user data, not process-lifetime
    kernel objects.
    """
    for mapping in list(_mappings.values()):
        try:
            mapping.close()  # idempotent; unregisters itself
        except Exception:  # pragma: no cover - teardown must not raise
            pass
    _mappings.clear()
    removed: List[str] = []
    for name, segment in list(_registry.items()):
        _registry.pop(name, None)
        try:
            segment.close()
            segment.unlink()
            removed.append(name)
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - teardown must not raise
            pass
    _spool_file().unlink(missing_ok=True)
    return removed


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    return True


def _read_spool(file: Path):
    """Parse one spool file → ``(token, segment names)``.

    Accepts both formats: the current ``{"token": ..., "segments": [...]}``
    object and the legacy bare list (no identity token).  Raises
    ``ValueError`` on corrupt content so the caller can quarantine it.
    """
    data = json.loads(file.read_text(encoding="utf-8") or "[]")
    if isinstance(data, list):
        return None, data
    if isinstance(data, dict):
        segments = data.get("segments", [])
        if not isinstance(segments, list):
            raise ValueError("spool 'segments' is not a list")
        return data.get("token"), segments
    raise ValueError("spool file is neither a list nor an object")


def sweep_orphans(tracer: Any = None) -> List[str]:
    """Unlink segments abandoned by dead processes; returns their names.

    Scans the spool directory: a file whose owning pid no longer exists —
    or whose recorded start-time token proves the pid was *recycled* by an
    unrelated process — belongs to a crashed (``SIGKILL``-ed, OOM-killed)
    master, so its listed segments are unlinked and the file removed.
    Live owners (this process included) are never touched, only
    :data:`SEGMENT_PREFIX` names are swept, and unparseable spool files
    from dead owners are quarantined (renamed ``*.corrupt``) rather than
    retried forever or allowed to abort the sweep.

    ``tracer`` (a :class:`repro.obs.Tracer`, optional) records the sweep
    as a ``janitor_sweep`` typed event with the removed segment names.
    """
    if _shared_memory is None:  # pragma: no cover - platform dependent
        return []
    removed: List[str] = []
    for file in spool_dir().glob("*.json"):
        try:
            pid = int(file.stem)
        except ValueError:
            continue
        if pid == os.getpid():
            continue
        try:
            token, names = _read_spool(file)
        except OSError:
            continue  # raced away or unreadable; retry next sweep
        except ValueError:
            # truncated/garbled JSON: tolerate it, and once the owner is
            # gone move it aside so later sweeps stop re-parsing it
            if not _alive(pid):
                try:
                    file.replace(file.with_suffix(".json.corrupt"))
                except OSError:  # pragma: no cover - raced away
                    pass
            continue
        if _alive(pid):
            current = _process_token(pid)
            if token is None or current is None or token == current:
                # same process still running (or identity unprovable on
                # this platform — then liveness is the best we have)
                continue
            # the pid is alive but belongs to a *different* process: the
            # spool's owner died and the pid was recycled — sweep it
        for name in names:
            # a spool file only ever lists segments its owning pid created
            # (names embed the creator), so anything else is corrupt or
            # foreign — never unlink a live process's segment on its say-so
            if not str(name).startswith(f"{SEGMENT_PREFIX}{pid}_"):
                continue
            try:
                segment = attach_segment(name)
            except FileNotFoundError:
                continue
            try:
                segment.close()
                segment.unlink()
                removed.append(name)
            except FileNotFoundError:  # pragma: no cover - raced away
                pass
        file.unlink(missing_ok=True)
    if tracer is not None and tracer.enabled:
        tracer.event(
            "janitor_sweep", removed=len(removed), segments=list(removed)
        )
    return removed
