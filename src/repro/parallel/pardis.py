"""``ParDis`` — parallel GFD mining over a fragmented graph (Section 6.2).

The algorithm runs in supersteps on a master + ``n`` workers.  The graph is
vertex-cut fragmented; each worker *owns* a shard of every verified
pattern's matches (seeded from the fragment's nodes, then carried along by
the incremental joins ``Q'(F_s) = Q(F_s) ⋈ e(F_t)``).  Per superstep,
mirroring Figure 3:

1. **Parallel pattern verification** — the master spawns extensions (from
   merged per-worker tallies, so the spawned patterns equal ``SeqDis``'s);
   workers join their local match shards with the shipped extension edges
   for *all* of a parent's extensions in one round; skewed shards are
   re-distributed (``ParGFDnb`` disables this);
2. **Parallel GFD validation** — the master grows the LHS lattices of all
   RHS literals level-by-level; each lattice level is validated as one
   batch ``ΣC_{ij}`` in a single superstep: workers intersect boolean row
   masks on their shards, the master aggregates counts and (exactly)
   unions pivot-support sets.

Worker-side execution is delegated to an
:class:`~repro.parallel.backend.ExecutionBackend`: the ``serial`` backend
runs the shard ops inline under the metered
:class:`~repro.parallel.cluster.SimulatedCluster` (the default), while the
``multiprocess`` backend runs them in real worker processes over
shared-memory graph buffers (``config.parallel_backend``).  Either way the
discovered set equals ``SeqDis``'s output — parallel scalability
(Theorem 5) is about time, not results — which the randomized differential
harness (``tests/test_differential.py``) asserts across all backends.

``config.max_matches_per_pattern`` is enforced per shard: a pattern whose
global join reaches the cap is marked *truncated* and becomes a leaf — it
emits no GFDs and spawns no children, exactly like the sequential engine —
so both engines agree on the discovered set even when the cap binds.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple, Union

import numpy as np

from ..core.config import DiscoveryConfig
from ..core.discovery import SequentialDiscovery
from ..core.generation_tree import GenerationTree, TreeNode
from ..core.match_table import (
    MatchTable,
    constant_literals_from_counts,
    merge_agreement_counts,
    merge_value_counts,
    variable_literals_from_counts,
)
from ..core.results import DiscoveryResult
from ..core.spawning import (
    extensions_from_counts,
    merge_extension_counts,
    speculative_closing_extensions,
    wildcard_extensions_from_counts,
)
from ..gfd.gfd import GFD
from ..gfd.literals import FALSE, Literal
from ..graph.graph import Graph
from ..pattern.incremental import Extension, apply_extension
from ..pattern.matcher import Match
from ..pattern.pattern import WILDCARD, Pattern
from .backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    make_backend,
    next_node_key,
    warn_standalone_entry_point,
)
from .balancer import (
    is_skewed,
    plan_pivot_group_moves,
    rebalance_pivot_group_arrays,
    rebalance_pivot_groups,
)
from .cluster import SimulatedCluster

__all__ = ["ParallelDiscovery", "discover_parallel"]


class _Task:
    """Master-side lattice state for one RHS literal."""

    __slots__ = ("rhs", "rhs_position", "valid_sets", "frontier", "_next_frontier")

    def __init__(self, rhs: Literal, rhs_position: int) -> None:
        self.rhs = rhs
        self.rhs_position = rhs_position
        self.valid_sets: List[FrozenSet[Literal]] = []
        # frontier entries: (lhs set, max literal index used, worker mask id)
        self.frontier: List[Tuple[FrozenSet[Literal], int, int]] = [
            (frozenset(), -1, 0)
        ]
        self._next_frontier: List[Tuple[FrozenSet[Literal], int, int]] = []


class _NodeMining:
    """Master-side ``HSpawn`` state for one pattern mined in a fused batch.

    Emissions are *buffered* (``emits``) instead of landing in ``_found``
    directly: a fused batch advances several patterns' lattices jointly, so
    live emission would interleave them — replaying the buffers in node
    order afterwards restores the exact per-node insertion order the
    unfused path produces.
    """

    __slots__ = (
        "node", "key", "literals", "lattice_literals", "literal_count",
        "total_rows", "indexed", "tasks", "next_mask_id", "pending_drops",
        "nh_bases", "emits", "done",
    )

    def __init__(self, node: TreeNode, key: int, literals: List[Literal]) -> None:
        self.node = node
        self.key = key
        self.literals = literals
        self.lattice_literals: List[Literal] = []
        self.literal_count: Dict[Literal, int] = {}
        self.total_rows = 0
        self.indexed: List[Tuple[int, Literal]] = []
        self.tasks: List[_Task] = []
        self.next_mask_id = 1
        #: mask ids retired last level, pruned lazily with the next round
        self.pending_drops: List[int] = []
        #: NHSpawn bases: (lhs, rhs, rows mask id, base support)
        self.nh_bases: List[Tuple[FrozenSet[Literal], Literal, int, int]] = []
        #: buffered ``(gfd, support)`` emissions, replayed in node order
        self.emits: List[Tuple[GFD, int]] = []
        self.done = False


class ParallelDiscovery(SequentialDiscovery):
    """``ParDis``: the parallel variant of :class:`SequentialDiscovery`.

    Args:
        graph: the data graph.
        config: discovery parameters (shared with the sequential algorithm);
            ``config.parallel_backend`` selects the execution backend and
            ``config.shared_memory`` its buffer transport.
        num_workers: the number ``n`` of workers (``None`` falls back to
            ``config.num_workers``, then 4).
        balance: enable match re-distribution on skew (Section 6.2's load
            balancing; ``False`` gives the paper's ``ParGFDnb`` baseline).
        cluster: optionally supply a pre-built cluster (for shared metering).
        backend: a backend name overriding the config, or a pre-started
            :class:`~repro.parallel.backend.ExecutionBackend` to reuse
            across runs (the caller keeps ownership; worker counts must
            match).
    """

    def __init__(
        self,
        graph: Graph,
        config: DiscoveryConfig,
        num_workers: Optional[int] = None,
        balance: bool = True,
        cluster: Optional[SimulatedCluster] = None,
        stats=None,
        index=None,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> None:
        super().__init__(graph, config, stats=stats, index=index)
        if isinstance(backend, ExecutionBackend):
            if num_workers is not None and num_workers != backend.num_workers:
                raise ValueError(
                    f"num_workers={num_workers} conflicts with the supplied "
                    f"backend's {backend.num_workers} workers"
                )
            self._backend: Optional[ExecutionBackend] = backend
            self._owns_backend = False
            self._backend_name = backend.name
            num_workers = backend.num_workers
        else:
            self._backend = None
            self._owns_backend = True
            self._backend_name = backend or config.parallel_backend
            if self._backend_name not in BACKEND_NAMES:
                raise ValueError(
                    f"unknown parallel backend {self._backend_name!r} "
                    f"(expected one of {BACKEND_NAMES})"
                )
            if self._backend_name == "multiprocess" and self.index is None:
                raise ValueError(
                    "parallel_backend='multiprocess' requires the frozen "
                    "graph index; it cannot run with config.use_index=False"
                )
            if num_workers is None:
                num_workers = (
                    config.num_workers if config.num_workers is not None else 4
                )
        self.cluster = cluster or SimulatedCluster(num_workers)
        self.balance = balance
        # master-side bookkeeping per tree node (worker state lives in the
        # backend): node identity -> backend key, per-worker row counts,
        # column statistics collected at install time
        self._keys: Dict[int, int] = {}
        self._shard_rows: Dict[int, List[int]] = {}
        self._column_stats: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """The worker count ``n``."""
        return self.cluster.num_workers

    @property
    def backend_name(self) -> str:
        """The execution backend this engine runs on."""
        return self._backend_name

    # ------------------------------------------------------------------
    # engine lifecycle hooks (plugged into the inherited run()/run_iter())
    # ------------------------------------------------------------------
    def _start_backend(self) -> None:
        """Acquire (or validate) the execution backend before level 0."""
        if self._owns_backend:
            self._backend = make_backend(
                self._backend_name,
                self.num_workers,
                self.graph,
                self.index,
                self.gamma,
                use_shared_memory=self.config.shared_memory,
                fault=self.config.fault,
                fuse_ops=self.config.fuse_ops,
                tracer=self.cluster.tracer,
            )
        else:
            if self._backend.num_workers != self.num_workers:
                raise ValueError(
                    f"backend has {self._backend.num_workers} workers but "
                    f"the cluster has {self.num_workers}"
                )
            expected = (id(self.graph), id(self.index))
            if self._backend.source_token != expected:
                raise ValueError(
                    "the supplied backend was built for a different graph "
                    "snapshot; rebuild it from this graph's current index"
                )

    def _finish_backend(self) -> None:
        """Release an owned backend; reset a borrowed one for its owner."""
        if self._owns_backend:
            if self._backend is not None:
                self._backend.shutdown()
                self._backend = None
        else:
            # the caller keeps the backend: clear this run's shard state
            # (best effort — a backend that just broke mid-run must not
            # displace the original error with its cleanup failure)
            try:
                self._backend.run_unmetered(
                    [(w, "reset", 0, {}) for w in range(self.num_workers)]
                )
            except Exception:
                pass

    def _master(self):
        return self.cluster.master()

    def _seed_level(self, tree: GenerationTree) -> None:
        with self.cluster.tracer.span("seed", "level", level=0):
            self._seed_parallel(tree)

    def _extend_level(self, tree: GenerationTree, level: int) -> List[TreeNode]:
        with self.cluster.tracer.span(
            f"vspawn level {level}", "level", level=level
        ):
            if self.config.fuse_ops:
                return self._vspawn_parallel_fused(tree, level)
            return self._vspawn_parallel(tree, level)

    def _mine_node(self, node: TreeNode) -> None:
        self._mine_nodes_batch([node])

    def _mine_nodes(self, nodes) -> None:
        """``HSpawn`` one level: jointly when fused, node-by-node otherwise."""
        nodes = list(nodes)
        with self.cluster.tracer.span(
            f"hspawn {len(nodes)} nodes", "level", nodes=len(nodes)
        ):
            if self.config.fuse_ops:
                self._mine_nodes_batch(nodes)
            else:
                for node in nodes:
                    self._mine_node(node)

    # ------------------------------------------------------------------
    # seeding and vertical spawning
    # ------------------------------------------------------------------
    def _seed_parallel(self, tree: GenerationTree) -> None:
        """Cold start: single-node patterns, matches sharded by node id.

        Node ownership follows the vertex cut: node ``v`` is seeded on the
        fragment ``v mod n`` (deterministic and even).
        """
        n = self.num_workers
        for label in sorted(self.graph_stats.node_label_counts):
            count = self.graph_stats.node_label_counts[label]
            if count < self.config.sigma:
                continue
            pattern = Pattern([label])
            node, created = tree.add(pattern, level=0)
            if not created:
                continue
            if self.index is not None:
                owners = self.index.nodes_with_label(label)
                shards: List = [
                    owners[owners % n == worker][:, None] for worker in range(n)
                ]
            else:
                shards = [[] for _ in range(n)]
                for v in self.graph.nodes_with_label(label):
                    shards[v % n].append((v,))
            node.support = count
            self._install_shards(node, shards)
            self.stats.patterns_spawned += 1
            self.stats.patterns_frequent += 1

    def _union_table(
        self, node: TreeNode, shards: List, truncated: bool = False
    ) -> MatchTable:
        """A lightweight master-side union view of the shard matches."""
        if self.index is not None:
            width = node.pattern.num_nodes
            parts = [
                np.asarray(shard, dtype=np.int64).reshape(-1, width)
                for shard in shards
            ]
            matches: Union[List[Match], np.ndarray] = (
                np.concatenate(parts)
                if parts
                else np.empty((0, width), dtype=np.int64)
            )
        else:
            matches = [match for shard in shards for match in shard]
        return MatchTable(
            self.graph,
            node.pattern,
            matches,
            [],
            truncated=truncated,
            index=self.index,
        )

    def _install_shards(
        self,
        node: TreeNode,
        shards: Optional[List],
        truncated: bool = False,
        adopt: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Install one pattern's shards in its own superstep (unfused path)."""
        self._install_shards_many([(node, shards, truncated, adopt)])

    def _install_shards_many(
        self,
        batch: List[Tuple[TreeNode, Optional[List], bool, Optional[Tuple[int, int]]]],
    ) -> None:
        """Install per-worker match tables + column statistics in one superstep.

        ``batch`` holds ``(node, shards, truncated, adopt)`` entries — the
        fused ``VSpawn`` installs a whole level's children in one round,
        the unfused path one child at a time.  The column statistics feed
        the master's alphabet generation, saving a dedicated round per
        pattern.  ``shards`` carries the per-worker matches; on a remote
        backend ``adopt`` instead names the join slot the matches were
        parked in worker-side, so no rows cross the process boundary.
        Truncated patterns are leaves: no worker state is installed, so
        they are skipped by both spawning directions (matching the
        sequential engine's refusal to certify anything from a capped
        table).
        """
        pending: List[Tuple[TreeNode, int, bool, Optional[List], Optional[Tuple[int, int]]]] = []
        for node, shards, truncated, adopt in batch:
            if truncated:
                self.stats.truncated_patterns += 1
                if not self._backend.remote:
                    node.table = self._union_table(node, shards, truncated=True)
                continue
            key = next_node_key()
            self._keys[id(node)] = key
            mined = not self.config.prune or node.support >= self.config.sigma
            pending.append((node, key, mined, shards, adopt))
        if not pending:
            return
        requests = []
        for node, key, mined, shards, adopt in pending:
            want_variable = (
                self.config.variable_literals and node.pattern.num_nodes > 1
            )
            base_payload = {
                "pattern": node.pattern,
                "mined": mined,
                "want_variable": want_variable,
                "same_attr_only": self.config.variable_literals_same_attr_only,
                # this run's Γ travels with the install: a session-shared
                # backend may have been constructed for an older snapshot
                # whose top attributes differ
                "gamma": self.gamma,
            }
            for worker in range(self.num_workers):
                payload = dict(base_payload)
                if adopt is not None:
                    payload["adopt"] = adopt
                else:
                    payload["matches"] = shards[worker]
                requests.append((worker, "install", key, payload))
        with self.cluster.superstep() as step:
            parts_all = self._backend.run_superstep(step, requests)
        n = self.num_workers
        for index, (node, key, mined, shards, adopt) in enumerate(pending):
            parts = parts_all[index * n:(index + 1) * n]
            self._shard_rows[key] = [part[0] for part in parts]
            if mined:
                self._column_stats[key] = (
                    [part[1] for part in parts],
                    [part[2] for part in parts],
                )
            if not self._backend.remote:
                # keep a union view for code that only reads matches (workers
                # hold the authoritative shards; skipped on real processes
                # where it would double the master's memory)
                node.table = self._union_table(node, shards)

    def _drop_parent(self, parent: TreeNode, parent_key: int) -> None:
        """Free a finished pattern's worker-side state and master bookkeeping."""
        self._backend.run_unmetered(
            [
                (worker, "drop", parent_key, {})
                for worker in range(self.num_workers)
            ],
            wait=False,
        )
        self._keys.pop(id(parent), None)
        self._shard_rows.pop(parent_key, None)
        self._column_stats.pop(parent_key, None)

    def _spawn_extensions(self, parent: TreeNode) -> List[Extension]:
        """Master-side extension generation from merged worker tallies.

        Workers tally their shard and collapse pivot sets into counts;
        pivot-disjoint sharding makes the master's aggregation a plain sum,
        so only small count dictionaries are shipped.
        """
        key = self._keys[id(parent)]
        can_add = parent.pattern.num_nodes < self.config.k
        requests = [
            (worker, "tally", key, {"can_add": can_add})
            for worker in range(self.num_workers)
        ]
        with self.cluster.superstep() as step:
            parts = self._backend.run_superstep(step, requests)
        return self._extensions_from_tallies(parent, parts)

    def _extensions_from_tallies(
        self, parent: TreeNode, parts: List
    ) -> List[Extension]:
        """Master-side extension generation from one parent's merged tallies."""
        with self.cluster.master():
            merged = merge_extension_counts(parts)
            self.cluster.ship_to_master(
                sum(len(p.new_node) + len(p.closing) for p in parts)
            )
            extensions = extensions_from_counts(
                parent.pattern, merged, self.config
            )
            extensions += wildcard_extensions_from_counts(
                parent.pattern, merged, self.config
            )
            if self.config.mine_negative and self.config.speculative_closing_edges:
                extensions += speculative_closing_extensions(
                    self.graph_stats, parent, self.config
                )
        return extensions

    def _rebalance_direct(
        self, parent_key: int, position: int, node: TreeNode
    ) -> None:
        """Rebalance a skewed parked join worker-to-worker.

        Three manifest-only rounds replace the fetch-to-master round-trip:

        1. every worker summarizes its parked join as ``(pivot ids, row
           counts)`` (``join_groups``) — scalars;
        2. the master plans whole-pivot-group moves from the summaries
           (:func:`~repro.parallel.balancer.plan_pivot_group_moves` — the
           same greedy as the master-side rebalance) and lays out one
           shared staging segment with a contiguous span per ``(src,
           dst)`` transfer;
        3. senders copy the planned groups into their spans
           (``stage_out``), receivers splice them into their parked joins
           (``stage_in``) — the rows go worker-to-worker through shared
           memory and never visit the master, which the backend's
           :class:`~repro.parallel.backend.TransferLedger` makes provable.

        The join result stays parked under ``(parent_key, position)``, so
        the upcoming install adopts it as usual.
        """
        n = self.num_workers
        pivot = node.pattern.pivot
        width = node.pattern.num_nodes
        requests = [
            (
                worker,
                "join_groups",
                parent_key,
                {"position": position, "pivot": pivot},
            )
            for worker in range(n)
        ]
        with self.cluster.superstep() as step:
            summaries = self._backend.run_superstep(step, requests)
        self.cluster.ship_to_master(
            sum(2 * len(pivots) for pivots, _ in summaries)
        )
        with self.cluster.master():
            moves, _received = plan_pivot_group_moves(summaries)
            # src == dst means "keep the group" — no transfer needed
            transfers = {
                key: value
                for key, value in moves.items()
                if key[0] != key[1] and value[1] > 0
            }
        if not transfers:
            return
        offsets: Dict[Tuple[int, int], int] = {}
        cursor = 0
        for key in sorted(transfers):
            offsets[key] = cursor
            cursor += transfers[key][1] * width * 8
        segment = self._backend.create_stage(cursor)
        try:
            sends: Dict[int, List[Tuple[int, np.ndarray]]] = {}
            spans: Dict[int, List[Tuple[int, int]]] = {}
            for (src, dst), (pivots, rows) in sorted(transfers.items()):
                sends.setdefault(src, []).append(
                    (offsets[(src, dst)], np.asarray(pivots, dtype=np.int64))
                )
                spans.setdefault(dst, []).append((offsets[(src, dst)], rows))
            out_requests = [
                (
                    src,
                    "stage_out",
                    parent_key,
                    {
                        "position": position,
                        "pivot": pivot,
                        "segment": segment.name,
                        "sends": send_list,
                    },
                )
                for src, send_list in sorted(sends.items())
            ]
            # two supersteps: every sender must have written its spans
            # before any receiver reads (the BSP barrier provides this)
            with self.cluster.superstep() as step:
                self._backend.run_superstep(step, out_requests)
            in_requests = [
                (
                    dst,
                    "stage_in",
                    parent_key,
                    {
                        "position": position,
                        "width": width,
                        "segment": segment.name,
                        "spans": span_list,
                    },
                )
                for dst, span_list in sorted(spans.items())
            ]
            with self.cluster.superstep() as step:
                for dst, span_list in sorted(spans.items()):
                    step.stage(
                        dst, sum(rows for _, rows in span_list) * width
                    )
                self._backend.run_superstep(step, in_requests)
        finally:
            self._backend.release_stage(segment)

    def _vspawn_parallel(self, tree: GenerationTree, level: int) -> List[TreeNode]:
        """``VSpawn(level)``: distributed tallying + batched incremental joins."""
        created_nodes: List[TreeNode] = []
        parents = list(tree.level(level - 1))
        edge_label_counts = self.graph_stats.edge_label_counts
        total_edges = self.graph.num_edges
        n = self.num_workers
        cap = self.config.max_matches_per_pattern
        for parent in parents:
            parent_key = self._keys.get(id(parent))
            if parent_key is None:
                continue  # never installed (e.g. truncated leaf)
            if (
                self.config.prune and parent.support < self.config.sigma
            ) or parent.support == 0:
                # a leaf (infrequent or zero-support): its HSpawn already
                # ran last level, so its worker-side shards are dead weight
                self._drop_parent(parent, parent_key)
                continue
            extensions = self._spawn_extensions(parent)
            # master-side dedup first, so workers only join novel patterns
            novel: List[Tuple[TreeNode, Extension]] = []
            with self.cluster.master():
                for extension in extensions:
                    pattern = apply_extension(parent.pattern, extension)
                    if pattern.num_nodes > self.config.k:
                        continue
                    node, created = tree.add(pattern, level, parent)
                    if not created:
                        continue
                    self.stats.patterns_spawned += 1
                    novel.append((node, extension))
                    if (
                        self.config.max_patterns_per_level is not None
                        and len(created_nodes) + len(novel)
                        >= self.config.max_patterns_per_level
                    ):
                        break
            if novel:
                # one superstep: every worker joins its shard with ALL new
                # extension edges of this parent (the (Q, e) work units).
                # Remote workers park the joined rows locally (the upcoming
                # install adopts them in place) and ship scalars only.
                remote = self._backend.remote
                requests = [
                    (
                        worker,
                        "join",
                        parent_key,
                        {
                            "extensions": [
                                (extension, node.pattern.pivot)
                                for node, extension in novel
                            ],
                            "cap": cap,
                            "park": remote,
                        },
                    )
                    for worker in range(n)
                ]
                with self.cluster.superstep() as step:
                    for worker in range(n):
                        for _, extension in novel:
                            label = extension.edge_label
                            label_edges = (
                                total_edges
                                if label == WILDCARD
                                else edge_label_counts.get(label, 0)
                            )
                            step.ship(worker, label_edges - label_edges // n)
                    joined = self._backend.run_superstep(step, requests)
                for position, (node, extension) in enumerate(novel):
                    per_worker = [joined[worker][position] for worker in range(n)]
                    new_shards = [part[0] for part in per_worker]
                    sizes = [part[2] for part in per_worker]
                    truncated = cap is not None and (
                        any(part[3] for part in per_worker)
                        or sum(sizes) >= cap
                    )
                    with self.cluster.master():
                        # pivot-disjoint shards: global support is a plain sum
                        node.support = sum(part[1] for part in per_worker)
                        self.cluster.ship_to_master(n)
                    adopt: Optional[Tuple[int, int]] = (
                        (parent_key, position) if remote else None
                    )
                    if not truncated and self.balance and is_skewed(sizes):
                        # matches move in whole pivot groups, preserving the
                        # pivot-disjointness that makes supports summable
                        staged = (
                            remote
                            and self.config.direct_shipping
                            and self._backend.supports_staging
                        )
                        if staged:
                            # worker-to-worker: groups move through a shared
                            # staging segment, the master sees only the
                            # (pivot, count) manifests; rows stay parked for
                            # the install to adopt
                            self._rebalance_direct(parent_key, position, node)
                        elif remote:
                            # pull the parked shards in for redistribution —
                            # the fallback case the rows must visit the master
                            fetch = [
                                (
                                    worker,
                                    "fetch_join",
                                    parent_key,
                                    {"position": position},
                                )
                                for worker in range(n)
                            ]
                            with self.cluster.superstep() as step:
                                new_shards = self._backend.run_superstep(
                                    step, fetch
                                )
                            adopt = None
                        if not staged:
                            if self.index is not None:
                                new_shards, moved = rebalance_pivot_group_arrays(
                                    new_shards, node.pattern.pivot
                                )
                            else:
                                new_shards, moved = rebalance_pivot_groups(
                                    new_shards, node.pattern.pivot
                                )
                            with self.cluster.superstep() as step:
                                for worker, received in moved.items():
                                    step.ship(
                                        worker, received * node.pattern.num_nodes
                                    )
                    self._install_shards(
                        node, new_shards, truncated=truncated, adopt=adopt
                    )
                    if node.support >= self.config.sigma:
                        self.stats.patterns_frequent += 1
                    if node.support == 0:
                        self.stats.patterns_zero_support += 1
                        if (
                            self.config.mine_negative
                            and parent.support >= self.config.sigma
                        ):
                            negative = GFD(node.pattern, frozenset(), FALSE)
                            self._emit(negative, parent.support)
                    created_nodes.append(node)
            # the parent's children are joined: free its worker-side state
            self._drop_parent(parent, parent_key)
            if (
                self.config.max_patterns_per_level is not None
                and len(created_nodes) >= self.config.max_patterns_per_level
            ):
                return created_nodes
        return created_nodes

    def _vspawn_parallel_fused(
        self, tree: GenerationTree, level: int
    ) -> List[TreeNode]:
        """``VSpawn(level)`` with per-level fused supersteps.

        Three rounds for the whole level instead of roughly three per
        parent/child: every surviving parent tallies in one superstep,
        every novel child joins in one superstep, every non-truncated
        child installs in one superstep (rare skew rebalances keep their
        own rounds in between).  Master-side dedup, support aggregation
        and the zero-support negative emissions run in exactly the
        per-parent, per-child order of :meth:`_vspawn_parallel`, so the
        discovered set and the transfer ledger are byte-identical — the
        differential suite pins fused ≡ unfused.  One deliberate
        read-only difference: parents past a binding
        ``max_patterns_per_level`` cap are still tallied (the joint round
        was already submitted) but never extended, joined or dropped —
        tallies ship no ledger-visible rows.
        """
        created_nodes: List[TreeNode] = []
        parents = list(tree.level(level - 1))
        edge_label_counts = self.graph_stats.edge_label_counts
        total_edges = self.graph.num_edges
        n = self.num_workers
        cap = self.config.max_matches_per_pattern
        level_cap = self.config.max_patterns_per_level
        remote = self._backend.remote

        eligible: List[Tuple[TreeNode, int]] = []
        for parent in parents:
            parent_key = self._keys.get(id(parent))
            if parent_key is None:
                continue  # never installed (e.g. truncated leaf)
            if (
                self.config.prune and parent.support < self.config.sigma
            ) or parent.support == 0:
                # a leaf (infrequent or zero-support): its HSpawn already
                # ran last level, so its worker-side shards are dead weight
                self._drop_parent(parent, parent_key)
                continue
            eligible.append((parent, parent_key))
        if not eligible:
            return created_nodes

        # round 1 — every parent's distributed tally in one superstep
        requests = [
            (
                worker,
                "tally",
                parent_key,
                {"can_add": parent.pattern.num_nodes < self.config.k},
            )
            for parent, parent_key in eligible
            for worker in range(n)
        ]
        with self.cluster.superstep() as step:
            parts_all = self._backend.run_superstep(step, requests)

        # master-side extension generation + dedup, in parent order (the
        # dedup against earlier parents' children is order-sensitive)
        novel_by_parent: List[Tuple[TreeNode, int, List[Tuple[TreeNode, Extension]]]] = []
        spawned = 0
        for index, (parent, parent_key) in enumerate(eligible):
            parts = parts_all[index * n:(index + 1) * n]
            extensions = self._extensions_from_tallies(parent, parts)
            novel: List[Tuple[TreeNode, Extension]] = []
            with self.cluster.master():
                for extension in extensions:
                    pattern = apply_extension(parent.pattern, extension)
                    if pattern.num_nodes > self.config.k:
                        continue
                    node, created = tree.add(pattern, level, parent)
                    if not created:
                        continue
                    self.stats.patterns_spawned += 1
                    novel.append((node, extension))
                    if (
                        level_cap is not None
                        and spawned + len(novel) >= level_cap
                    ):
                        break
            novel_by_parent.append((parent, parent_key, novel))
            spawned += len(novel)
            if level_cap is not None and spawned >= level_cap:
                break

        # round 2 — every parent's incremental joins in one superstep
        join_parents = [entry for entry in novel_by_parent if entry[2]]
        joined_all: List = []
        if join_parents:
            requests = [
                (
                    worker,
                    "join",
                    parent_key,
                    {
                        "extensions": [
                            (extension, node.pattern.pivot)
                            for node, extension in novel
                        ],
                        "cap": cap,
                        "park": remote,
                    },
                )
                for parent, parent_key, novel in join_parents
                for worker in range(n)
            ]
            with self.cluster.superstep() as step:
                for parent, parent_key, novel in join_parents:
                    for worker in range(n):
                        for _, extension in novel:
                            label = extension.edge_label
                            label_edges = (
                                total_edges
                                if label == WILDCARD
                                else edge_label_counts.get(label, 0)
                            )
                            step.ship(worker, label_edges - label_edges // n)
                joined_all = self._backend.run_superstep(step, requests)

        # per-child support aggregation and (rare) skew rebalancing, in
        # (parent, position) order; installs collect into one batch
        install_batch: List[Tuple[TreeNode, Optional[List], bool, Optional[Tuple[int, int]]]] = []
        child_meta: List[Tuple[TreeNode, TreeNode]] = []
        for offset, (parent, parent_key, novel) in enumerate(join_parents):
            joined = joined_all[offset * n:(offset + 1) * n]
            for position, (node, extension) in enumerate(novel):
                per_worker = [joined[worker][position] for worker in range(n)]
                new_shards = [part[0] for part in per_worker]
                sizes = [part[2] for part in per_worker]
                truncated = cap is not None and (
                    any(part[3] for part in per_worker)
                    or sum(sizes) >= cap
                )
                with self.cluster.master():
                    # pivot-disjoint shards: global support is a plain sum
                    node.support = sum(part[1] for part in per_worker)
                    self.cluster.ship_to_master(n)
                adopt: Optional[Tuple[int, int]] = (
                    (parent_key, position) if remote else None
                )
                if not truncated and self.balance and is_skewed(sizes):
                    staged = (
                        remote
                        and self.config.direct_shipping
                        and self._backend.supports_staging
                    )
                    if staged:
                        self._rebalance_direct(parent_key, position, node)
                    elif remote:
                        fetch = [
                            (
                                worker,
                                "fetch_join",
                                parent_key,
                                {"position": position},
                            )
                            for worker in range(n)
                        ]
                        with self.cluster.superstep() as step:
                            new_shards = self._backend.run_superstep(
                                step, fetch
                            )
                        adopt = None
                    if not staged:
                        if self.index is not None:
                            new_shards, moved = rebalance_pivot_group_arrays(
                                new_shards, node.pattern.pivot
                            )
                        else:
                            new_shards, moved = rebalance_pivot_groups(
                                new_shards, node.pattern.pivot
                            )
                        with self.cluster.superstep() as step:
                            for worker, received in moved.items():
                                step.ship(
                                    worker, received * node.pattern.num_nodes
                                )
                install_batch.append((node, new_shards, truncated, adopt))
                child_meta.append((parent, node))

        # round 3 — every child's install in one superstep
        self._install_shards_many(install_batch)

        for parent, node in child_meta:
            if node.support >= self.config.sigma:
                self.stats.patterns_frequent += 1
            if node.support == 0:
                self.stats.patterns_zero_support += 1
                if (
                    self.config.mine_negative
                    and parent.support >= self.config.sigma
                ):
                    negative = GFD(node.pattern, frozenset(), FALSE)
                    self._emit(negative, parent.support)
            created_nodes.append(node)

        # every processed parent's children are joined (installs adopted
        # the parked rows above): free the worker-side state
        for parent, parent_key, novel in novel_by_parent:
            self._drop_parent(parent, parent_key)
        return created_nodes

    # ------------------------------------------------------------------
    # horizontal spawning (parallel validation)
    # ------------------------------------------------------------------
    def _literal_alphabet_parallel(self, node: TreeNode) -> List[Literal]:
        """The candidate alphabet from merged per-worker column statistics.

        The per-worker statistics were collected in the table-building
        superstep (:meth:`_install_shards`).
        """
        want_variable = (
            self.config.variable_literals and node.pattern.num_nodes > 1
        )
        value_parts, agreement_parts = self._column_stats.pop(
            self._keys[id(node)]
        )
        with self.cluster.master():
            merged_values = merge_value_counts(value_parts)
            self.cluster.ship_to_master(
                sum(len(counter) for part in value_parts for counter in part.values())
            )
            literals: List[Literal] = list(
                constant_literals_from_counts(
                    merged_values,
                    self.config.max_constants,
                    self.config.min_literal_rows,
                )
            )
            if want_variable:
                merged_agreements = merge_agreement_counts(agreement_parts)
                literals.extend(
                    variable_literals_from_counts(
                        merged_agreements, self.config.min_literal_rows
                    )
                )
        return literals

    def _mine_nodes_batch(self, nodes: List[TreeNode]) -> None:
        """``HSpawn`` for a batch of verified patterns in fused supersteps.

        One ``scan`` superstep opens every pattern's mask store; the LHS
        lattices then advance *jointly* — one ``eval`` superstep per
        lattice depth carries every still-active pattern's candidate batch
        (the ``ΣC_{ij}`` rounds of Figure 3, now summed over patterns too)
        — and one ``probe`` superstep resolves all NHSpawn bases.  With a
        single-node batch this is superstep-for-superstep the historical
        per-pattern path, which is exactly how ``config.fuse_ops=False``
        runs it.

        Emissions are buffered per node and replayed in node order at the
        end, so ``_found``'s insertion order — which downstream cover
        ordering observes — is identical whether a level is mined jointly
        or node by node.  (Only the abort *point* of a binding
        ``max_candidates`` budget can shift: candidates are charged in
        lattice-depth-major order across the batch instead of node-major;
        the totals agree.)
        """
        n = self.num_workers
        miners: List[_NodeMining] = []
        for node in nodes:
            key = self._keys.get(id(node))
            if key is None:
                continue  # truncated leaf or never installed
            if node.support < self.config.sigma and self.config.prune:
                continue
            literals = self._literal_alphabet_parallel(node)
            if not literals:
                continue
            miners.append(_NodeMining(node, key, literals))
        if not miners:
            return

        # batch 0 — one superstep: per-literal counts and *local* distinct
        # pivot counts on every shard of every pattern (warms the workers'
        # mask caches and opens the mask stores); pivot-disjoint sharding
        # makes the global support a plain sum.
        requests = [
            (worker, "scan", miner.key, {"literals": miner.literals})
            for miner in miners
            for worker in range(n)
        ]
        with self.cluster.superstep() as step:
            parts_all = self._backend.run_superstep(step, requests)

        empty: FrozenSet[Literal] = frozenset()
        for index, miner in enumerate(miners):
            parts = parts_all[index * n:(index + 1) * n]
            count_parts = [part[0] for part in parts]
            support_parts = [part[1] for part in parts]
            self.cluster.ship_to_master(2 * len(miner.literals) * n)
            literal_support: Dict[Literal, int] = {}
            for position, literal in enumerate(miner.literals):
                miner.literal_count[literal] = sum(
                    part[position] for part in count_parts
                )
                literal_support[literal] = sum(
                    part[position] for part in support_parts
                )
            if self.config.prune:
                miner.lattice_literals = [
                    literal
                    for literal in miner.literals
                    if literal_support[literal] >= self.config.sigma
                ]
            else:
                miner.lattice_literals = miner.literals
            miner.indexed = list(enumerate(miner.lattice_literals))
            miner.total_rows = sum(self._shard_rows[miner.key])
            node = miner.node
            with self.cluster.master():
                for position, rhs in enumerate(miner.lattice_literals):
                    count_rhs = miner.literal_count[rhs]
                    support_rhs = literal_support[rhs]
                    if self.config.prune and support_rhs < self.config.sigma:
                        continue
                    self._charge_candidate()
                    if (empty, rhs) in node.covered:
                        continue
                    if count_rhs == miner.total_rows and miner.total_rows:
                        node.valid_pairs.add((empty, rhs))
                        if support_rhs >= self.config.sigma:
                            miner.emits.append(
                                (GFD(node.pattern, empty, rhs), support_rhs)
                            )
                            miner.nh_bases.append((empty, rhs, 0, support_rhs))
                        continue
                    miner.tasks.append(_Task(rhs, position))

        # the joint lattice: one superstep per depth carries every still-
        # active pattern's candidate batch; workers stack candidates
        # sharing a parent mask into one numpy op, per pattern
        for _ in range(self.config.max_lhs_size):
            round_specs: List[Tuple[_NodeMining, List, List]] = []
            for miner in miners:
                if miner.done:
                    continue
                specs: List[Tuple[int, Literal, Literal, int]] = []
                meta: List[Tuple[_Task, FrozenSet[Literal], int, int]] = []
                with self.cluster.master():
                    for task in miner.tasks:
                        for lhs, max_index, rows_id in task.frontier:
                            for index, literal in miner.indexed:
                                if index <= max_index or literal == task.rhs:
                                    continue
                                extended = lhs | {literal}
                                if any(v <= extended for v in task.valid_sets):
                                    continue
                                if self._is_trivial(extended, task.rhs):
                                    continue
                                self._charge_candidate()
                                mask_id = miner.next_mask_id
                                miner.next_mask_id += 1
                                specs.append(
                                    (rows_id, literal, task.rhs, mask_id)
                                )
                                meta.append((task, extended, index, mask_id))
                if not specs:
                    miner.done = True
                    continue
                round_specs.append((miner, specs, meta))
            if not round_specs:
                break
            requests = [
                (
                    worker,
                    "eval",
                    miner.key,
                    {"specs": specs, "drop": miner.pending_drops},
                )
                for miner, specs, meta in round_specs
                for worker in range(n)
            ]
            with self.cluster.superstep() as step:
                results_all = self._backend.run_superstep(step, requests)
            cursor = 0
            for miner, specs, meta in round_specs:
                miner.pending_drops = []
                results = results_all[cursor:cursor + n]
                cursor += n
                total_lhs = np.zeros(len(specs), dtype=np.int64)
                total_both = np.zeros(len(specs), dtype=np.int64)
                total_supp = np.zeros(len(specs), dtype=np.int64)
                for lhs_arr, both_arr, supp_arr in results:
                    total_lhs += lhs_arr
                    total_both += both_arr
                    total_supp += supp_arr
                self.cluster.ship_to_master(3 * len(specs) * n)
                node = miner.node
                with self.cluster.master():
                    for position, (task, extended, index, mask_id) in enumerate(meta):
                        count_lhs = int(total_lhs[position])
                        count_both = int(total_both[position])
                        supp = int(total_supp[position])
                        keep = False
                        if not (
                            self.config.prune and supp < self.config.sigma
                        ):
                            if count_lhs and count_both == count_lhs:
                                task.valid_sets.append(extended)
                                node.valid_pairs.add((extended, task.rhs))
                                if (extended, task.rhs) not in node.covered:
                                    if supp >= self.config.sigma:
                                        miner.emits.append(
                                            (
                                                GFD(
                                                    node.pattern,
                                                    extended,
                                                    task.rhs,
                                                ),
                                                supp,
                                            )
                                        )
                                        miner.nh_bases.append(
                                            (extended, task.rhs, mask_id, supp)
                                        )
                                        keep = True
                            else:
                                task._next_frontier.append(
                                    (extended, index, mask_id)
                                )
                                keep = True
                        if not keep:
                            miner.pending_drops.append(mask_id)
                for task in miner.tasks:
                    task.frontier = task._next_frontier
                    task._next_frontier = []
                miner.tasks = [task for task in miner.tasks if task.frontier]
                if not miner.tasks and not miner.nh_bases:
                    miner.done = True

        self._nhspawn_joint(miners)
        # every lattice is exhausted: free the workers' mask stores
        self._backend.run_unmetered(
            [
                (worker, "drop_store", miner.key, {})
                for miner in miners
                for worker in range(n)
            ],
            wait=False,
        )
        # replay the buffered emissions in node order — byte-identical to
        # mining the nodes one at a time
        for miner in miners:
            for gfd, support in miner.emits:
                self._emit(gfd, support)

    def _nhspawn_joint(self, miners: List[_NodeMining]) -> None:
        """``NHSpawn`` for every base of every batched pattern in one superstep."""
        if not self.config.mine_negative:
            return
        threshold = self.config.negative_literal_min_rows
        if threshold is None:
            threshold = self.config.sigma
        probing: List[Tuple[_NodeMining, List, List]] = []
        for miner in miners:
            if not miner.nh_bases:
                continue
            specs: List[Tuple[int, Literal]] = []
            meta: List[Tuple[int, FrozenSet[Literal], Literal, int]] = []
            with self.cluster.master():
                for base_index, (lhs, rhs, rows_id, base_support) in enumerate(
                    miner.nh_bases
                ):
                    for literal in miner.literals:
                        if literal == rhs or literal in lhs:
                            continue
                        if self._lhs_unsatisfiable(lhs | {literal}):
                            continue
                        if miner.literal_count.get(literal, 0) < threshold:
                            continue
                        specs.append((rows_id, literal))
                        meta.append((base_index, lhs, literal, base_support))
            if specs:
                probing.append((miner, specs, meta))
        if not probing:
            return
        n = self.num_workers
        requests = [
            (
                worker,
                "probe",
                miner.key,
                {"specs": specs, "drop": miner.pending_drops},
            )
            for miner, specs, meta in probing
            for worker in range(n)
        ]
        with self.cluster.superstep() as step:
            parts_all = self._backend.run_superstep(step, requests)
        cursor = 0
        for miner, specs, meta in probing:
            overlap_parts = parts_all[cursor:cursor + n]
            cursor += n
            self.cluster.ship_to_master(len(specs) * n)
            node = miner.node
            with self.cluster.master():
                emitted_per_base: Dict[int, int] = {}
                for position, (base_index, lhs, literal, base_support) in enumerate(
                    meta
                ):
                    if any(part[position] for part in overlap_parts):
                        continue  # some match satisfies X ∪ {l''}
                    emitted = emitted_per_base.get(base_index, 0)
                    if emitted >= self.config.max_negatives_per_pattern:
                        continue
                    miner.emits.append(
                        (GFD(node.pattern, lhs | {literal}, FALSE), base_support)
                    )
                    emitted_per_base[base_index] = emitted + 1


def discover_parallel(
    graph: Graph,
    config: Optional[DiscoveryConfig] = None,
    num_workers: Optional[int] = None,
    balance: bool = True,
    stats=None,
    index=None,
    backend: Union[None, str, ExecutionBackend] = None,
) -> Tuple[DiscoveryResult, SimulatedCluster]:
    """Run ``ParDis`` and return (result, metered cluster).

    ``stats``/``index`` accept precomputed graph snapshots so worker sweeps
    (Figures 5a-c) don't rescan the same graph once per worker count;
    ``backend`` overrides ``config.parallel_backend`` (a name) or supplies a
    pre-started backend to reuse across runs.

    .. deprecated::
        Standalone calls (without a pre-started ``backend``) spin up and
        tear down one worker-pool set per invocation.  Pipelines should
        hold a :class:`repro.session.Session`, whose single backend serves
        discover → cover → enforce; this wrapper remains as a shim for the
        one-shot case and is differential-tested against the Session path.
    """
    warn_standalone_entry_point("discover_parallel", backend)
    runner = ParallelDiscovery(
        graph,
        config or DiscoveryConfig(),
        num_workers,
        balance=balance,
        stats=stats,
        index=index,
        backend=backend,
    )
    result = runner.run()
    return result, runner.cluster
