"""``ParDis`` — parallel GFD mining over a fragmented graph (Section 6.2).

The algorithm runs in supersteps on a master + ``n`` workers
(:class:`~repro.parallel.cluster.SimulatedCluster`).  The graph is
vertex-cut fragmented; each worker *owns* a shard of every verified
pattern's matches (seeded from the fragment's nodes, then carried along by
the incremental joins ``Q'(F_s) = Q(F_s) ⋈ e(F_t)``).  Per superstep,
mirroring Figure 3:

1. **Parallel pattern verification** — the master spawns extensions (from
   merged per-worker tallies, so the spawned patterns equal ``SeqDis``'s);
   workers join their local match shards with the shipped extension edges
   for *all* of a parent's extensions in one round; skewed shards are
   re-distributed (``ParGFDnb`` disables this);
2. **Parallel GFD validation** — the master grows the LHS lattices of all
   RHS literals level-by-level; each lattice level is validated as one
   batch ``ΣC_{ij}`` in a single superstep: workers intersect boolean row
   masks on their shards, the master aggregates counts and (exactly)
   unions pivot-support sets.

The discovered set equals ``SeqDis``'s output — parallel scalability
(Theorem 5) is about time, not results — which the integration tests
assert.  ``config.max_matches_per_pattern`` is not enforced here (shards
are unbounded); size workloads accordingly.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.config import DiscoveryConfig
from ..core.discovery import SequentialDiscovery
from ..core.generation_tree import GenerationTree, TreeNode
from ..core.match_table import (
    MatchTable,
    constant_literals_from_counts,
    merge_agreement_counts,
    merge_value_counts,
    variable_literals_from_counts,
)
from ..core.reduction import minimal_cover_by_reduction
from ..core.results import DiscoveryResult
from ..core.spawning import (
    counts_from_statistics,
    extension_statistics,
    extensions_from_counts,
    merge_extension_counts,
    speculative_closing_extensions,
    wildcard_extensions_from_counts,
)
from ..gfd.gfd import GFD
from ..gfd.literals import FALSE, Literal
from ..graph.graph import Graph
from ..pattern.canonical import canonical_key
from ..pattern.incremental import Extension, apply_extension, extend_matches
from ..pattern.matcher import Match
from ..pattern.pattern import WILDCARD, Pattern
from .balancer import is_skewed, rebalance_pivot_groups
from .cluster import SimulatedCluster

__all__ = ["ParallelDiscovery", "discover_parallel"]


class _Task:
    """Master-side lattice state for one RHS literal."""

    __slots__ = ("rhs", "rhs_position", "valid_sets", "frontier", "_next_frontier")

    def __init__(self, rhs: Literal, rhs_position: int) -> None:
        self.rhs = rhs
        self.rhs_position = rhs_position
        self.valid_sets: List[FrozenSet[Literal]] = []
        # frontier entries: (lhs set, max literal index used, worker mask id)
        self.frontier: List[Tuple[FrozenSet[Literal], int, int]] = [
            (frozenset(), -1, 0)
        ]
        self._next_frontier: List[Tuple[FrozenSet[Literal], int, int]] = []


class ParallelDiscovery(SequentialDiscovery):
    """``ParDis``: the parallel variant of :class:`SequentialDiscovery`.

    Args:
        graph: the data graph.
        config: discovery parameters (shared with the sequential algorithm).
        num_workers: the number ``n`` of workers.
        balance: enable match re-distribution on skew (Section 6.2's load
            balancing; ``False`` gives the paper's ``ParGFDnb`` baseline).
        cluster: optionally supply a pre-built cluster (for shared metering).
    """

    def __init__(
        self,
        graph: Graph,
        config: DiscoveryConfig,
        num_workers: int,
        balance: bool = True,
        cluster: Optional[SimulatedCluster] = None,
        stats=None,
        index=None,
    ) -> None:
        super().__init__(graph, config, stats=stats, index=index)
        self.cluster = cluster or SimulatedCluster(num_workers)
        self.balance = balance
        # per tree-node shards: node id -> per-worker match lists / tables
        self._shards: Dict[int, List[List[Match]]] = {}
        self._tables: Dict[int, List[MatchTable]] = {}
        self._column_stats: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """The worker count ``n``."""
        return self.cluster.num_workers

    def run(self) -> DiscoveryResult:
        """Execute parallel discovery; results equal the sequential run's."""
        started = time.perf_counter()
        tree = GenerationTree()
        self._seed_parallel(tree)
        for node in tree.level(0):
            self._hspawn_parallel(node)
        for level in range(1, self.config.edge_budget + 1):
            new_nodes = self._vspawn_parallel(tree, level)
            if not new_nodes:
                break
            for node in new_nodes:
                self._hspawn_parallel(node)
        gfds = [gfd for gfd, _ in self._found.values()]
        supports = {gfd: supp for gfd, supp in self._found.values()}
        with self.cluster.master():
            if self.config.minimality_filter:
                gfds = minimal_cover_by_reduction(gfds)
                supports = {gfd: supports[gfd] for gfd in gfds}
        self.stats.positives_found = sum(1 for gfd in gfds if gfd.is_positive)
        self.stats.negatives_found = sum(1 for gfd in gfds if gfd.is_negative)
        self.stats.elapsed_seconds = time.perf_counter() - started
        return DiscoveryResult(
            gfds=gfds, supports=supports, stats=self.stats, tree=tree
        )

    # ------------------------------------------------------------------
    # seeding and vertical spawning
    # ------------------------------------------------------------------
    def _seed_parallel(self, tree: GenerationTree) -> None:
        """Cold start: single-node patterns, matches sharded by node id.

        Node ownership follows the vertex cut: node ``v`` is seeded on the
        fragment ``v mod n`` (deterministic and even).
        """
        n = self.num_workers
        for label in sorted(self.graph_stats.node_label_counts):
            count = self.graph_stats.node_label_counts[label]
            if count < self.config.sigma:
                continue
            pattern = Pattern([label])
            node, created = tree.add(pattern, level=0)
            if not created:
                continue
            shards: List[List[Match]] = [[] for _ in range(n)]
            for v in self.graph.nodes_with_label(label):
                shards[v % n].append((v,))
            node.support = count
            self._install_shards(node, shards)
            self.stats.patterns_spawned += 1
            self.stats.patterns_frequent += 1

    def _install_shards(self, node: TreeNode, shards: List[List[Match]]) -> None:
        """Build per-worker match tables + column statistics in one superstep.

        The column statistics feed the master's alphabet generation, saving
        a dedicated round per pattern.
        """
        tables: List[Optional[MatchTable]] = [None] * self.num_workers
        value_parts = []
        agreement_parts = []
        want_variable = (
            self.config.variable_literals and node.pattern.num_nodes > 1
        )
        mined = not self.config.prune or node.support >= self.config.sigma
        with self.cluster.superstep() as step:
            for worker in range(self.num_workers):
                def build(worker: int = worker):
                    table = MatchTable(
                        self.graph,
                        node.pattern,
                        shards[worker],
                        self.gamma,
                        index=self.index,
                    )
                    if not mined:
                        return table, {}, {}
                    values = table.constant_value_counts()
                    agreements = (
                        table.variable_agreement_counts(
                            self.config.variable_literals_same_attr_only
                        )
                        if want_variable
                        else {}
                    )
                    return table, values, agreements
                table, values, agreements = step.run(worker, build)
                tables[worker] = table
                value_parts.append(values)
                agreement_parts.append(agreements)
        if mined:
            self._column_stats[id(node)] = (value_parts, agreement_parts)
        self._shards[id(node)] = shards
        self._tables[id(node)] = tables  # type: ignore[assignment]
        # keep a lightweight union view for code that only reads matches
        # (extension tallying never touches it — workers tally shards).
        node.table = MatchTable(
            self.graph,
            node.pattern,
            [match for shard in shards for match in shard],
            [],
            index=self.index,
        )

    def _spawn_extensions(self, parent: TreeNode) -> List[Extension]:
        """Master-side extension generation from merged worker tallies.

        Workers tally their shard and collapse pivot sets into counts;
        pivot-disjoint sharding makes the master's aggregation a plain sum,
        so only small count dictionaries are shipped.
        """
        shards = self._shards[id(parent)]
        can_add = parent.pattern.num_nodes < self.config.k
        parts = []
        with self.cluster.superstep() as step:
            for worker in range(self.num_workers):
                def tally(worker: int = worker):
                    return counts_from_statistics(
                        extension_statistics(
                            self.graph,
                            parent.pattern,
                            shards[worker],
                            can_add,
                            index=self.index,
                        )
                    )
                parts.append(step.run(worker, tally))
        with self.cluster.master():
            merged = merge_extension_counts(parts)
            self.cluster.ship_to_master(
                sum(len(p.new_node) + len(p.closing) for p in parts)
            )
            extensions = extensions_from_counts(
                parent.pattern, merged, self.config
            )
            extensions += wildcard_extensions_from_counts(
                parent.pattern, merged, self.config
            )
            if self.config.mine_negative and self.config.speculative_closing_edges:
                extensions += speculative_closing_extensions(
                    self.graph_stats, parent, self.config
                )
        return extensions

    def _vspawn_parallel(self, tree: GenerationTree, level: int) -> List[TreeNode]:
        """``VSpawn(level)``: distributed tallying + batched incremental joins."""
        created_nodes: List[TreeNode] = []
        parents = list(tree.level(level - 1))
        edge_label_counts = self.graph_stats.edge_label_counts
        total_edges = self.graph.num_edges
        n = self.num_workers
        for parent in parents:
            if id(parent) not in self._shards:
                continue
            if self.config.prune and parent.support < self.config.sigma:
                continue
            if parent.support == 0:
                continue
            extensions = self._spawn_extensions(parent)
            # master-side dedup first, so workers only join novel patterns
            novel: List[Tuple[TreeNode, Extension]] = []
            with self.cluster.master():
                for extension in extensions:
                    pattern = apply_extension(parent.pattern, extension)
                    if pattern.num_nodes > self.config.k:
                        continue
                    node, created = tree.add(pattern, level, parent)
                    if not created:
                        continue
                    self.stats.patterns_spawned += 1
                    novel.append((node, extension))
                    if (
                        self.config.max_patterns_per_level is not None
                        and len(created_nodes) + len(novel)
                        >= self.config.max_patterns_per_level
                    ):
                        break
            if not novel:
                continue
            parent_shards = self._shards[id(parent)]
            # one superstep: every worker joins its shard with ALL new
            # extension edges of this parent (the (Q, e) work units).
            joined: List[List[List[Match]]] = []  # [worker][ext] -> matches
            pivot_parts: List[List[int]] = []  # [worker][ext] -> local supp
            with self.cluster.superstep() as step:
                for worker in range(n):
                    for _, extension in novel:
                        label = extension.edge_label
                        label_edges = (
                            total_edges
                            if label == WILDCARD
                            else edge_label_counts.get(label, 0)
                        )
                        step.ship(worker, label_edges - label_edges // n)

                    def join(worker: int = worker):
                        per_ext_matches: List[List[Match]] = []
                        per_ext_supports: List[int] = []
                        for node, extension in novel:
                            matches = extend_matches(
                                self.graph,
                                parent_shards[worker],
                                extension,
                                index=self.index,
                            )
                            pivot_var = node.pattern.pivot
                            per_ext_matches.append(matches)
                            per_ext_supports.append(
                                len({match[pivot_var] for match in matches})
                            )
                        return per_ext_matches, per_ext_supports

                    matches_w, supports_w = step.run(worker, join)
                    joined.append(matches_w)
                    pivot_parts.append(supports_w)
            for position, (node, extension) in enumerate(novel):
                new_shards = [joined[worker][position] for worker in range(n)]
                if self.balance and is_skewed(
                    [len(shard) for shard in new_shards]
                ):
                    # matches move in whole pivot groups, preserving the
                    # pivot-disjointness that makes supports summable
                    new_shards, moved = rebalance_pivot_groups(
                        new_shards, node.pattern.pivot
                    )
                    with self.cluster.superstep() as step:
                        for worker, received in moved.items():
                            step.ship(
                                worker, received * node.pattern.num_nodes
                            )
                with self.cluster.master():
                    # pivot-disjoint shards: global support is a plain sum
                    node.support = sum(
                        pivot_parts[worker][position] for worker in range(n)
                    )
                    self.cluster.ship_to_master(n)
                self._install_shards(node, new_shards)
                if node.support >= self.config.sigma:
                    self.stats.patterns_frequent += 1
                if node.support == 0:
                    self.stats.patterns_zero_support += 1
                    if (
                        self.config.mine_negative
                        and parent.support >= self.config.sigma
                    ):
                        negative = GFD(node.pattern, frozenset(), FALSE)
                        self._emit(negative, parent.support)
                created_nodes.append(node)
            if (
                self.config.max_patterns_per_level is not None
                and len(created_nodes) >= self.config.max_patterns_per_level
            ):
                return created_nodes
        return created_nodes

    # ------------------------------------------------------------------
    # horizontal spawning (parallel validation)
    # ------------------------------------------------------------------
    def _literal_alphabet_parallel(self, node: TreeNode) -> List[Literal]:
        """The candidate alphabet from merged per-worker column statistics.

        The per-worker statistics were collected in the table-building
        superstep (:meth:`_install_shards`).
        """
        want_variable = (
            self.config.variable_literals and node.pattern.num_nodes > 1
        )
        value_parts, agreement_parts = self._column_stats.pop(id(node))
        with self.cluster.master():
            merged_values = merge_value_counts(value_parts)
            self.cluster.ship_to_master(
                sum(len(counter) for part in value_parts for counter in part.values())
            )
            literals: List[Literal] = list(
                constant_literals_from_counts(
                    merged_values,
                    self.config.max_constants,
                    self.config.min_literal_rows,
                )
            )
            if want_variable:
                merged_agreements = merge_agreement_counts(agreement_parts)
                literals.extend(
                    variable_literals_from_counts(
                        merged_agreements, self.config.min_literal_rows
                    )
                )
        return literals

    def _hspawn_parallel(self, node: TreeNode) -> None:
        """``HSpawn`` with per-level batched validation (the ``ΣC_{ij}`` rounds)."""
        if id(node) not in self._tables:
            return
        if node.support < self.config.sigma and self.config.prune:
            return
        literals = self._literal_alphabet_parallel(node)
        if not literals:
            return
        tables = self._tables[id(node)]
        n = self.num_workers
        total_rows = sum(table.num_rows for table in tables)

        # batch 0 — one superstep: per-literal counts and *local* distinct
        # pivot counts on every shard (warms the workers' mask caches);
        # pivot-disjoint sharding makes the global support a plain sum.
        count_parts: List[List[int]] = []
        support_parts: List[List[int]] = []
        with self.cluster.superstep() as step:
            for worker, table in enumerate(tables):
                def scan(table: MatchTable = table):
                    counts, supports = [], []
                    for literal in literals:
                        mask = table.literal_mask(literal)
                        counts.append(table.mask_count(mask))
                        supports.append(table.mask_support(mask))
                    return counts, supports
                counts, supports = step.run(worker, scan)
                count_parts.append(counts)
                support_parts.append(supports)
        self.cluster.ship_to_master(2 * len(literals) * len(tables))
        literal_count: Dict[Literal, int] = {}
        literal_support: Dict[Literal, int] = {}
        for position, literal in enumerate(literals):
            literal_count[literal] = sum(part[position] for part in count_parts)
            literal_support[literal] = sum(
                part[position] for part in support_parts
            )

        if self.config.prune:
            lattice_literals = [
                literal
                for literal in literals
                if literal_support[literal] >= self.config.sigma
            ]
        else:
            lattice_literals = literals

        # worker-side mask stores; id 0 is the full mask
        stores: List[Dict[int, np.ndarray]] = [
            {0: table.full_mask()} for table in tables
        ]
        next_mask_id = 1
        empty: FrozenSet[Literal] = frozenset()
        indexed = list(enumerate(lattice_literals))

        # NHSpawn bases: (lhs, rhs, rows mask id, base support)
        nh_bases: List[Tuple[FrozenSet[Literal], Literal, int, int]] = []

        tasks: List[_Task] = []
        with self.cluster.master():
            for position, rhs in enumerate(lattice_literals):
                count_rhs = literal_count[rhs]
                support_rhs = literal_support[rhs]
                if self.config.prune and support_rhs < self.config.sigma:
                    continue
                self._charge_candidate()
                if (empty, rhs) in node.covered:
                    continue
                if count_rhs == total_rows and total_rows:
                    node.valid_pairs.add((empty, rhs))
                    if support_rhs >= self.config.sigma:
                        self._emit(GFD(node.pattern, empty, rhs), support_rhs)
                        nh_bases.append((empty, rhs, 0, support_rhs))
                    continue
                tasks.append(_Task(rhs, position))

        for _ in range(self.config.max_lhs_size):
            specs: List[Tuple[int, Literal, Literal, int]] = []
            meta: List[Tuple[_Task, FrozenSet[Literal], int, int]] = []
            with self.cluster.master():
                for task in tasks:
                    for lhs, max_index, rows_id in task.frontier:
                        for index, literal in indexed:
                            if index <= max_index or literal == task.rhs:
                                continue
                            extended = lhs | {literal}
                            if any(v <= extended for v in task.valid_sets):
                                continue
                            if self._is_trivial(extended, task.rhs):
                                continue
                            self._charge_candidate()
                            mask_id = next_mask_id
                            next_mask_id += 1
                            specs.append((rows_id, literal, task.rhs, mask_id))
                            meta.append((task, extended, index, mask_id))
            if not specs:
                break
            # group spec positions by their parent mask so each worker can
            # evaluate a whole group with one stacked numpy operation
            groups: Dict[int, List[int]] = {}
            for position, (rows_id, _, _, _) in enumerate(specs):
                groups.setdefault(rows_id, []).append(position)
            group_items = sorted(groups.items())
            # one superstep: the whole level's candidate batch
            total_lhs = np.zeros(len(specs), dtype=np.int64)
            total_both = np.zeros(len(specs), dtype=np.int64)
            total_supp = np.zeros(len(specs), dtype=np.int64)
            with self.cluster.superstep() as step:
                for worker, table in enumerate(tables):
                    def evaluate(
                        worker: int = worker, table: MatchTable = table
                    ):
                        count_lhs_arr = np.zeros(len(specs), dtype=np.int64)
                        count_both_arr = np.zeros(len(specs), dtype=np.int64)
                        support_arr = np.zeros(len(specs), dtype=np.int64)
                        store = stores[worker]
                        for rows_id, positions in group_items:
                            parent = store[rows_id]
                            lhs_stack = np.stack(
                                [
                                    table.literal_mask(specs[p][1])
                                    for p in positions
                                ]
                            )
                            lhs_stack &= parent
                            rhs_stack = np.stack(
                                [
                                    table.literal_mask(specs[p][2])
                                    for p in positions
                                ]
                            )
                            rhs_stack &= lhs_stack
                            count_lhs = lhs_stack.sum(axis=1)
                            count_both = rhs_stack.sum(axis=1)
                            active = np.flatnonzero(count_both)
                            if active.size:
                                supports = table.stack_supports(
                                    rhs_stack[active]
                                )
                                for where, offset in enumerate(active):
                                    support_arr[positions[offset]] = supports[where]
                            for offset, p in enumerate(positions):
                                store[specs[p][3]] = lhs_stack[offset]
                                count_lhs_arr[p] = count_lhs[offset]
                                count_both_arr[p] = count_both[offset]
                        return count_lhs_arr, count_both_arr, support_arr
                    lhs_arr, both_arr, supp_arr = step.run(worker, evaluate)
                    total_lhs += lhs_arr
                    total_both += both_arr
                    total_supp += supp_arr
            self.cluster.ship_to_master(3 * len(specs) * len(tables))
            with self.cluster.master():
                for position, (task, extended, index, mask_id) in enumerate(meta):
                    count_lhs = int(total_lhs[position])
                    count_both = int(total_both[position])
                    supp = int(total_supp[position])
                    keep = False
                    if not (
                        self.config.prune and supp < self.config.sigma
                    ):
                        if count_lhs and count_both == count_lhs:
                            task.valid_sets.append(extended)
                            node.valid_pairs.add((extended, task.rhs))
                            if (extended, task.rhs) not in node.covered:
                                if supp >= self.config.sigma:
                                    self._emit(
                                        GFD(node.pattern, extended, task.rhs),
                                        supp,
                                    )
                                    nh_bases.append(
                                        (extended, task.rhs, mask_id, supp)
                                    )
                                    keep = True
                        else:
                            task._next_frontier.append((extended, index, mask_id))
                            keep = True
                    if not keep:
                        for store in stores:
                            store.pop(mask_id, None)
            for task in tasks:
                task.frontier = task._next_frontier
                task._next_frontier = []
            tasks = [task for task in tasks if task.frontier]
            if not tasks and not nh_bases:
                break

        self._nhspawn_batched(node, tables, stores, literals, literal_count, nh_bases)

    def _nhspawn_batched(
        self,
        node: TreeNode,
        tables: List[MatchTable],
        stores: List[Dict[int, np.ndarray]],
        literals: List[Literal],
        literal_count: Dict[Literal, int],
        nh_bases: List[Tuple[FrozenSet[Literal], Literal, int, int]],
    ) -> None:
        """``NHSpawn`` for all bases of a pattern in one superstep."""
        if not self.config.mine_negative or not nh_bases:
            return
        threshold = self.config.negative_literal_min_rows
        if threshold is None:
            threshold = self.config.sigma
        specs: List[Tuple[int, Literal]] = []
        meta: List[Tuple[int, FrozenSet[Literal], Literal, int]] = []
        with self.cluster.master():
            for base_index, (lhs, rhs, rows_id, base_support) in enumerate(nh_bases):
                for literal in literals:
                    if literal == rhs or literal in lhs:
                        continue
                    if self._lhs_unsatisfiable(lhs | {literal}):
                        continue
                    if literal_count.get(literal, 0) < threshold:
                        continue
                    specs.append((rows_id, literal))
                    meta.append((base_index, lhs, literal, base_support))
        if not specs:
            return
        groups: Dict[int, List[int]] = {}
        for position, (rows_id, _) in enumerate(specs):
            groups.setdefault(rows_id, []).append(position)
        group_items = sorted(groups.items())
        overlap_parts: List[List[bool]] = []
        with self.cluster.superstep() as step:
            for worker, table in enumerate(tables):
                def probe(worker: int = worker, table: MatchTable = table):
                    overlaps: List[bool] = [False] * len(specs)
                    store = stores[worker]
                    for rows_id, positions in group_items:
                        parent = store[rows_id]
                        stack = np.stack(
                            [table.literal_mask(specs[p][1]) for p in positions]
                        )
                        stack &= parent
                        hits = stack.any(axis=1)
                        for offset, p in enumerate(positions):
                            overlaps[p] = bool(hits[offset])
                    return overlaps
                overlap_parts.append(step.run(worker, probe))
        self.cluster.ship_to_master(len(specs) * len(tables))
        with self.cluster.master():
            emitted_per_base: Dict[int, int] = {}
            for position, (base_index, lhs, literal, base_support) in enumerate(meta):
                if any(part[position] for part in overlap_parts):
                    continue  # some match satisfies X ∪ {l''}
                emitted = emitted_per_base.get(base_index, 0)
                if emitted >= self.config.max_negatives_per_pattern:
                    continue
                self._emit(GFD(node.pattern, lhs | {literal}, FALSE), base_support)
                emitted_per_base[base_index] = emitted + 1


def discover_parallel(
    graph: Graph,
    config: Optional[DiscoveryConfig] = None,
    num_workers: int = 4,
    balance: bool = True,
    stats=None,
    index=None,
) -> Tuple[DiscoveryResult, SimulatedCluster]:
    """Run ``ParDis`` and return (result, metered cluster).

    ``stats``/``index`` accept precomputed graph snapshots so worker sweeps
    (Figures 5a-c) don't rescan the same graph once per worker count.
    """
    runner = ParallelDiscovery(
        graph,
        config or DiscoveryConfig(),
        num_workers,
        balance=balance,
        stats=stats,
        index=index,
    )
    result = runner.run()
    return result, runner.cluster
