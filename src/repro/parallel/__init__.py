"""Parallel GFD discovery: backends, metered cluster, ParDis, ParCover."""

from .backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    LifecycleCounters,
    MultiprocessBackend,
    SerialBackend,
    SharedIndexBuffers,
    TransferLedger,
    make_backend,
    shared_memory_available,
)
from .balancer import (
    assign_units_lpt,
    is_skewed,
    plan_pivot_group_moves,
    rebalance_pivot_group_arrays,
    rebalance_pivot_groups,
    rebalance_shards,
)
from .cluster import ClusterMetrics, SimulatedCluster, WorkerMetrics
from .costs import ChaseCostModel, PhaseCostPlanner
from .faults import FaultPlan
from .janitor import live_segments, sweep_orphans
from .parcover import parallel_cover, parallel_cover_ungrouped
from .pardis import ParallelDiscovery, discover_parallel

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "MultiprocessBackend",
    "SharedIndexBuffers",
    "TransferLedger",
    "LifecycleCounters",
    "ChaseCostModel",
    "PhaseCostPlanner",
    "FaultPlan",
    "live_segments",
    "sweep_orphans",
    "make_backend",
    "shared_memory_available",
    "SimulatedCluster",
    "ClusterMetrics",
    "WorkerMetrics",
    "ParallelDiscovery",
    "discover_parallel",
    "parallel_cover",
    "parallel_cover_ungrouped",
    "assign_units_lpt",
    "is_skewed",
    "plan_pivot_group_moves",
    "rebalance_shards",
    "rebalance_pivot_groups",
    "rebalance_pivot_group_arrays",
]
