"""Parallel GFD discovery: metered cluster, ParDis, ParCover, balancing."""

from .balancer import (
    assign_units_lpt,
    is_skewed,
    rebalance_pivot_groups,
    rebalance_shards,
)
from .cluster import ClusterMetrics, SimulatedCluster, WorkerMetrics
from .parcover import parallel_cover, parallel_cover_ungrouped
from .pardis import ParallelDiscovery, discover_parallel

__all__ = [
    "SimulatedCluster",
    "ClusterMetrics",
    "WorkerMetrics",
    "ParallelDiscovery",
    "discover_parallel",
    "parallel_cover",
    "parallel_cover_ungrouped",
    "assign_units_lpt",
    "is_skewed",
    "rebalance_shards",
    "rebalance_pivot_groups",
]
