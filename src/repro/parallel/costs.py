"""Measured chase costs for ``ParCover``'s LPT balancing.

The paper balances cover work units with LPT over *static* weights
``|group| × |embedded|`` — the number of leave-out tests times the size of
the chase context.  That proxy ignores what actually dominates a unit's
cost: how many embeddings each context rule has into the group's pattern
and how long the chase fixpoint runs, which varies by orders of magnitude
on skewed Σ.

:class:`ChaseCostModel` closes the loop.  Every ``op_implication_batch``
measures its units' chase seconds worker-side and the master feeds them
back here, keyed by the unit's pattern-isomorphism class (the same key
``ParCover`` groups by).  The next cover over an evolving Σ — the repeated
case a :class:`~repro.session.Session` serves — weighs each unit by

* its class's EWMA of measured seconds, when the class has been seen, or
* the static weight scaled by the global seconds-per-static-weight rate,
  so unseen units stay comparable to measured ones.

Weights only matter relatively, and LPT is oblivious to their unit, so
mixing measured seconds with rate-scaled static weights is sound.  With no
observations yet the model degrades to exactly the paper's static weights.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

__all__ = ["ChaseCostModel"]


class ChaseCostModel:
    """EWMA per-unit chase costs, fed back from worker-measured timings.

    Args:
        alpha: EWMA smoothing factor in ``(0, 1]`` — the weight of the
            newest observation (1.0 = keep only the latest measurement).
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        #: Number of unit timings absorbed (:meth:`observe` calls).
        self.observations = 0
        self._seconds: Dict[Hashable, float] = {}
        self._rate: Optional[float] = None  # EWMA of seconds / static weight

    @staticmethod
    def static_weight(group_size: int, embedded_size: int) -> float:
        """The paper's proxy weight ``|group| × max(1, |embedded|)``."""
        return float(group_size * max(1, embedded_size))

    def observe(
        self,
        key: Hashable,
        group_size: int,
        embedded_size: int,
        seconds: float,
    ) -> None:
        """Absorb one unit's measured chase seconds.

        ``key`` identifies the unit's pattern-isomorphism class; the global
        seconds-per-static-weight rate is updated alongside so classes never
        measured still get a calibrated estimate.
        """
        seconds = max(0.0, float(seconds))
        previous = self._seconds.get(key)
        if previous is None:
            self._seconds[key] = seconds
        else:
            self._seconds[key] = (
                self.alpha * seconds + (1.0 - self.alpha) * previous
            )
        rate = seconds / self.static_weight(group_size, embedded_size)
        if self._rate is None:
            self._rate = rate
        else:
            self._rate = self.alpha * rate + (1.0 - self.alpha) * self._rate
        self.observations += 1

    def weight(
        self, key: Hashable, group_size: int, embedded_size: int
    ) -> float:
        """The LPT weight for one unit: measured, calibrated, or static."""
        measured = self._seconds.get(key)
        if measured is not None:
            return measured
        static = self.static_weight(group_size, embedded_size)
        if self._rate is not None:
            return static * self._rate
        return static

    def __len__(self) -> int:
        return len(self._seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaseCostModel(classes={len(self._seconds)}, "
            f"observations={self.observations})"
        )
