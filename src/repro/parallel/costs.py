"""Measured chase costs for ``ParCover``'s LPT balancing.

The paper balances cover work units with LPT over *static* weights
``|group| × |embedded|`` — the number of leave-out tests times the size of
the chase context.  That proxy ignores what actually dominates a unit's
cost: how many embeddings each context rule has into the group's pattern
and how long the chase fixpoint runs, which varies by orders of magnitude
on skewed Σ.

:class:`ChaseCostModel` closes the loop.  Every ``op_implication_batch``
measures its units' chase seconds worker-side and the master feeds them
back here, keyed by the unit's pattern-isomorphism class (the same key
``ParCover`` groups by).  The next cover over an evolving Σ — the repeated
case a :class:`~repro.session.Session` serves — weighs each unit by

* its class's EWMA of measured seconds, when the class has been seen, or
* the static weight scaled by the global seconds-per-static-weight rate,
  so unseen units stay comparable to measured ones.

Weights only matter relatively, and LPT is oblivious to their unit, so
mixing measured seconds with rate-scaled static weights is sound.  With no
observations yet the model degrades to exactly the paper's static weights.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from ..obs.tracer import NULL_TRACER

__all__ = ["ChaseCostModel", "PhaseCostPlanner"]


class ChaseCostModel:
    """EWMA per-unit chase costs, fed back from worker-measured timings.

    Args:
        alpha: EWMA smoothing factor in ``(0, 1]`` — the weight of the
            newest observation (1.0 = keep only the latest measurement).
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        #: Number of unit timings absorbed (:meth:`observe` calls).
        self.observations = 0
        self._seconds: Dict[Hashable, float] = {}
        self._rate: Optional[float] = None  # EWMA of seconds / static weight

    @staticmethod
    def static_weight(group_size: int, embedded_size: int) -> float:
        """The paper's proxy weight ``|group| × max(1, |embedded|)``."""
        return float(group_size * max(1, embedded_size))

    def observe(
        self,
        key: Hashable,
        group_size: int,
        embedded_size: int,
        seconds: float,
    ) -> None:
        """Absorb one unit's measured chase seconds.

        ``key`` identifies the unit's pattern-isomorphism class; the global
        seconds-per-static-weight rate is updated alongside so classes never
        measured still get a calibrated estimate.
        """
        seconds = max(0.0, float(seconds))
        previous = self._seconds.get(key)
        if previous is None:
            self._seconds[key] = seconds
        else:
            self._seconds[key] = (
                self.alpha * seconds + (1.0 - self.alpha) * previous
            )
        weight = self.static_weight(group_size, embedded_size)
        if weight > 0.0:
            # an empty leave-out group has no static weight; its timing
            # still updates the per-class EWMA above, but cannot calibrate
            # the seconds-per-static-weight rate
            rate = seconds / weight
            if self._rate is None:
                self._rate = rate
            else:
                self._rate = (
                    self.alpha * rate + (1.0 - self.alpha) * self._rate
                )
        self.observations += 1

    def weight(
        self, key: Hashable, group_size: int, embedded_size: int
    ) -> float:
        """The LPT weight for one unit: measured, calibrated, or static."""
        measured = self._seconds.get(key)
        if measured is not None:
            return measured
        static = self.static_weight(group_size, embedded_size)
        if self._rate is not None:
            return static * self._rate
        return static

    def __len__(self) -> int:
        return len(self._seconds)

    # ------------------------------------------------------------------
    # persistence — warm-starting a fresh process's cover balancing
    # ------------------------------------------------------------------
    def as_state(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of the model (see :meth:`from_state`).

        The isomorphism-class keys are nested tuples of strings and ints
        (:func:`~repro.pattern.canonical.canonical_key` output); they are
        stored as JSON-encoded strings so the mapping survives a round trip
        through a JSON document and restores to the *same* hashable keys.
        """
        return {
            "alpha": self.alpha,
            "observations": self.observations,
            "rate": self._rate,
            "seconds": {
                json.dumps(key): value
                for key, value in sorted(
                    self._seconds.items(), key=lambda item: repr(item[0])
                )
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ChaseCostModel":
        """Rebuild a model from :meth:`as_state` output."""

        def _tuplify(value: Any) -> Any:
            if isinstance(value, list):
                return tuple(_tuplify(item) for item in value)
            return value

        model = cls(alpha=float(state.get("alpha", 0.5)))
        model.observations = int(state.get("observations", 0))
        rate = state.get("rate")
        model._rate = None if rate is None else float(rate)
        for encoded, value in state.get("seconds", {}).items():
            model._seconds[_tuplify(json.loads(encoded))] = float(value)
        return model

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaseCostModel(classes={len(self._seconds)}, "
            f"observations={self.observations})"
        )


class PhaseCostPlanner:
    """Cost-based serial-vs-multiprocess choice, one decision per phase.

    The same measured-seconds idea as :class:`ChaseCostModel`, generalized
    from cover units to whole session phases (``discover``, ``cover``,
    ``enforce``, ``refresh``).  Each observation is *(phase, backend, input
    size, wall seconds)*; the planner keeps a per-``(phase, backend)`` EWMA
    of seconds-per-item plus a fixed-overhead estimate (the intercept the
    multiprocess backend pays for pool spin-up and shared-memory attach),
    and :meth:`choose` picks the backend with the lower predicted wall time.

    The decision policy is deliberately asymmetric so multiprocess is never
    slower than serial *by construction*:

    * with no multiprocess observations for a phase, serial wins unless the
      input exceeds ``mp_min_size`` (the crossover floor below which the
      round-trip constant factor is known to dominate);
    * once both backends have been measured, multiprocess must beat serial
      by ``margin`` (default: merely tie) to be chosen — ties break serial.
    """

    #: Phases the session consults the planner for.
    PHASES = ("discover", "cover", "enforce", "refresh")

    #: The session tracer; :meth:`choose` emits one ``planner_decision``
    #: typed event per consultation when tracing is on.
    tracer: Any = NULL_TRACER

    def __init__(
        self,
        alpha: float = 0.5,
        mp_min_size: int = 50_000,
        margin: float = 1.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if mp_min_size < 0:
            raise ValueError("mp_min_size must be >= 0")
        if margin <= 0.0:
            raise ValueError("margin must be > 0")
        self.alpha = alpha
        self.mp_min_size = mp_min_size
        self.margin = margin
        #: Number of phase timings absorbed (:meth:`observe` calls).
        self.observations = 0
        # (phase, backend) -> EWMA seconds-per-item
        self._rates: Dict[Tuple[str, str], float] = {}

    def observe(
        self, phase: str, backend: str, size: int, seconds: float
    ) -> None:
        """Absorb one phase run: ``size`` input items took ``seconds``."""
        seconds = max(0.0, float(seconds))
        rate = seconds / max(1, size)
        key = (phase, backend)
        previous = self._rates.get(key)
        if previous is None:
            self._rates[key] = rate
        else:
            self._rates[key] = (
                self.alpha * rate + (1.0 - self.alpha) * previous
            )
        self.observations += 1

    def estimate(
        self, phase: str, backend: str, size: int
    ) -> Optional[float]:
        """Predicted wall seconds, or ``None`` with no observations yet."""
        rate = self._rates.get((phase, backend))
        if rate is None:
            return None
        return rate * max(1, size)

    def choose(
        self,
        phase: str,
        size: int,
        backends: Sequence[str] = ("serial", "multiprocess"),
    ) -> str:
        """The backend predicted fastest for ``size`` input items."""
        serial = backends[0]
        best = serial
        best_cost = self.estimate(phase, serial, size)
        for backend in backends[1:]:
            cost = self.estimate(phase, backend, size)
            if cost is None:
                # unmeasured parallel backend: worth the gamble on inputs
                # past the crossover floor, measured serial or not — the
                # one gamble produces the timing that settles every later
                # choice (otherwise a measured-serial phase could starve
                # multiprocess of a measurement forever)
                if size >= self.mp_min_size:
                    best, best_cost = backend, cost
                continue
            if best_cost is None:
                if size < self.mp_min_size:
                    continue  # keep unmeasured serial on small inputs
                best, best_cost = backend, cost
            elif cost * self.margin < best_cost:
                best, best_cost = backend, cost
        if self.tracer.enabled:
            self.tracer.event(
                "planner_decision",
                phase=phase,
                size=size,
                chosen=best,
                estimates={
                    backend: self.estimate(phase, backend, size)
                    for backend in backends
                },
            )
        return best

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Observed rates per phase/backend (for metrics surfaces)."""
        report: Dict[str, Dict[str, float]] = {}
        for (phase, backend), rate in sorted(self._rates.items()):
            report.setdefault(phase, {})[backend] = rate
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseCostPlanner(pairs={len(self._rates)}, "
            f"observations={self.observations})"
        )
