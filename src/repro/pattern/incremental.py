"""Incremental pattern matching: ``Q'(F) = Q(F) ⋈ e``.

Both ``SeqDis`` and ``ParDis`` grow patterns one edge at a time and extend
the *stored* matches of the parent pattern instead of re-matching from
scratch (Sections 5.1 and 6.2).  An :class:`Extension` describes the added
edge; :func:`extend_matches` performs the join against a graph (sequential
case) and :func:`extend_match` against a single base match (the per-work-unit
operation workers execute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from .matcher import Match
from .pattern import WILDCARD, Pattern

__all__ = ["Extension", "apply_extension", "extend_match", "extend_matches"]


@dataclass(frozen=True)
class Extension:
    """One-edge extension of a pattern.

    Two shapes exist (Section 5.1's ``VSpawn``):

    * **closing edge** — ``new_node_label is None``: an edge between the two
      existing variables ``src`` and ``dst``.
    * **new node** — ``new_node_label`` set: a fresh variable carrying that
      label; the edge runs ``anchor -> new`` when ``outward`` else
      ``new -> anchor``, where ``anchor`` is ``src``.
    """

    src: int
    dst: int
    edge_label: str
    new_node_label: Optional[str] = None
    outward: bool = True

    @property
    def is_closing(self) -> bool:
        """Whether this extension adds an edge between existing variables."""
        return self.new_node_label is None


def apply_extension(pattern: Pattern, extension: Extension) -> Pattern:
    """The extended pattern ``Q' = Q + e``."""
    if extension.is_closing:
        return pattern.with_edge(extension.src, extension.dst, extension.edge_label)
    return pattern.with_new_node(
        extension.new_node_label,
        extension.src,
        extension.outward,
        extension.edge_label,
    )


def extend_match(
    graph: Graph,
    match: Match,
    extension: Extension,
) -> Iterator[Match]:
    """Extend one match of ``Q`` to matches of ``Q + e``.

    For a closing edge this filters (yields the unchanged match when the edge
    exists in the graph); for a new-node extension it fans out over candidate
    neighbors, enforcing label and injectivity constraints.
    """
    if extension.is_closing:
        source_node = match[extension.src]
        target_node = match[extension.dst]
        labels = graph.edge_labels(source_node, target_node)
        if not labels:
            return
        if extension.edge_label != WILDCARD and extension.edge_label not in labels:
            return
        yield match
        return

    anchor_node = match[extension.src]
    if extension.outward:
        neighbors = graph.out_neighbors(anchor_node)
    else:
        neighbors = graph.in_neighbors(anchor_node)
    wanted_edge = extension.edge_label
    wanted_node = extension.new_node_label
    for neighbor, labels in neighbors.items():
        if wanted_edge != WILDCARD and wanted_edge not in labels:
            continue
        if wanted_node != WILDCARD and graph.node_label(neighbor) != wanted_node:
            continue
        if neighbor in match:
            continue  # injectivity
        yield match + (neighbor,)


def extend_matches(
    graph: Graph,
    matches: Sequence[Match],
    extension: Extension,
    max_matches: Optional[int] = None,
) -> List[Match]:
    """Join a batch of base matches with the extension edge."""
    result: List[Match] = []
    for match in matches:
        for extended in extend_match(graph, match, extension):
            result.append(extended)
            if max_matches is not None and len(result) >= max_matches:
                return result
    return result
