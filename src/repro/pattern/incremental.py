"""Incremental pattern matching: ``Q'(F) = Q(F) ⋈ e``.

Both ``SeqDis`` and ``ParDis`` grow patterns one edge at a time and extend
the *stored* matches of the parent pattern instead of re-matching from
scratch (Sections 5.1 and 6.2).  An :class:`Extension` describes the added
edge; :func:`extend_matches` performs the join against a graph (sequential
case) and :func:`extend_match` against a single base match (the per-work-unit
operation workers execute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph.graph import Graph
from ..graph.index import GraphIndex
from .matcher import Match
from .pattern import WILDCARD, Pattern

__all__ = ["Extension", "apply_extension", "extend_match", "extend_matches"]

#: A batch of matches: list of tuples, or an ``(N, num_vars)`` int64 array.
MatchBatch = Union[Sequence[Match], np.ndarray]


@dataclass(frozen=True)
class Extension:
    """One-edge extension of a pattern.

    Two shapes exist (Section 5.1's ``VSpawn``):

    * **closing edge** — ``new_node_label is None``: an edge between the two
      existing variables ``src`` and ``dst``.
    * **new node** — ``new_node_label`` set: a fresh variable carrying that
      label; the edge runs ``anchor -> new`` when ``outward`` else
      ``new -> anchor``, where ``anchor`` is ``src``.
    """

    src: int
    dst: int
    edge_label: str
    new_node_label: Optional[str] = None
    outward: bool = True

    @property
    def is_closing(self) -> bool:
        """Whether this extension adds an edge between existing variables."""
        return self.new_node_label is None


def apply_extension(pattern: Pattern, extension: Extension) -> Pattern:
    """The extended pattern ``Q' = Q + e``."""
    if extension.is_closing:
        return pattern.with_edge(extension.src, extension.dst, extension.edge_label)
    return pattern.with_new_node(
        extension.new_node_label,
        extension.src,
        extension.outward,
        extension.edge_label,
    )


def extend_match(
    graph: Graph,
    match: Match,
    extension: Extension,
) -> Iterator[Match]:
    """Extend one match of ``Q`` to matches of ``Q + e``.

    For a closing edge this filters (yields the unchanged match when the edge
    exists in the graph); for a new-node extension it fans out over candidate
    neighbors, enforcing label and injectivity constraints.
    """
    if extension.is_closing:
        source_node = match[extension.src]
        target_node = match[extension.dst]
        labels = graph.edge_labels(source_node, target_node)
        if not labels:
            return
        if extension.edge_label != WILDCARD and extension.edge_label not in labels:
            return
        yield match
        return

    anchor_node = match[extension.src]
    if extension.outward:
        neighbors = graph.out_neighbors(anchor_node)
    else:
        neighbors = graph.in_neighbors(anchor_node)
    wanted_edge = extension.edge_label
    wanted_node = extension.new_node_label
    for neighbor, labels in neighbors.items():
        if wanted_edge != WILDCARD and wanted_edge not in labels:
            continue
        if wanted_node != WILDCARD and graph.node_label(neighbor) != wanted_node:
            continue
        if neighbor in match:
            continue  # injectivity
        yield match + (neighbor,)


def extend_matches(
    graph: Graph,
    matches: MatchBatch,
    extension: Extension,
    max_matches: Optional[int] = None,
    index: Optional[GraphIndex] = None,
    as_array: bool = False,
) -> MatchBatch:
    """Join a batch of base matches with the extension edge.

    With ``index`` the whole batch is joined by vectorized numpy set-ops
    (one edge-existence ``searchsorted`` for a closing edge; one ragged
    neighborhood gather + label-mask for a new-node fan-out) instead of the
    per-match Python loop.  The uncapped result *set* equals the dict
    path's; per-match neighbor order differs (CSR vs dict insertion), so a
    binding ``max_matches`` may keep a different truncated subset.

    ``as_array`` (index path only) returns the ``(N, vars)`` int64 array
    directly — the sequential engine keeps batches in array form end-to-end.
    """
    if index is not None:
        result_array = _extend_matches_indexed(index, matches, extension, max_matches)
        if as_array:
            return result_array
        return [tuple(row) for row in result_array.tolist()]
    result: List[Match] = []
    for match in matches:
        for extended in extend_match(graph, match, extension):
            result.append(extended)
            if max_matches is not None and len(result) >= max_matches:
                return result
    return result


def _as_match_array(matches: MatchBatch, width: int) -> np.ndarray:
    """Coerce a match batch into a 2-D int64 array (``width`` is a floor).

    Non-empty inputs carry their real width; ``width`` only sizes the empty
    case (any width ≥ the extension's requirement joins to an empty result).
    """
    if isinstance(matches, np.ndarray):
        if matches.ndim == 2:
            return matches
        return matches.reshape(-1, width)
    if not len(matches):
        return np.empty((0, width), dtype=np.int64)
    return np.asarray(matches, dtype=np.int64)


def _extend_matches_indexed(
    index: GraphIndex,
    matches: MatchBatch,
    extension: Extension,
    max_matches: Optional[int],
) -> np.ndarray:
    """Vectorized join of a whole match batch with one extension edge."""
    # the batch width: a new-node extension's fresh variable is ``dst``, so
    # the parent batch has exactly ``dst`` columns; a closing edge needs at
    # least ``max(src, dst) + 1`` (non-empty batches carry the real width).
    if extension.is_closing:
        width = max(extension.src, extension.dst) + 1
    else:
        width = extension.dst
    array = _as_match_array(matches, width)
    out_width = array.shape[1] + (0 if extension.is_closing else 1)
    if array.shape[0] == 0:
        return np.empty((0, out_width), dtype=np.int64)

    if extension.is_closing:
        label = extension.edge_label
        if label == WILDCARD:
            code = -1
        else:
            code = index.edge_label_code(label)
            if code < 0:
                return np.empty((0, array.shape[1]), dtype=np.int64)
        mask = index.edges_exist(
            array[:, extension.src], array[:, extension.dst], code
        )
        result = array[mask]
        if max_matches is not None and result.shape[0] > max_matches:
            result = result[:max_matches]
        return result

    # new-node fan-out: group rows by anchor node, compute each distinct
    # anchor's filtered candidate list once, then expand per row.
    edge_code = -1
    if extension.edge_label != WILDCARD:
        edge_code = index.edge_label_code(extension.edge_label)
        if edge_code < 0:
            return np.empty((0, array.shape[1] + 1), dtype=np.int64)
    node_code = -1
    if extension.new_node_label != WILDCARD:
        node_code = index.node_label_code(extension.new_node_label)
        if node_code < 0:
            return np.empty((0, array.shape[1] + 1), dtype=np.int64)

    anchors = array[:, extension.src]
    unique_anchors, inverse = np.unique(anchors, return_inverse=True)
    # one ragged gather over the distinct anchors, filtered by label masks;
    # the boolean keep preserves row-major order, so the flat pool stays
    # grouped by anchor
    anchor_row, flat_pool, flat_labels = index.gather_neighborhoods(
        unique_anchors, extension.outward
    )
    keep = np.ones(flat_pool.size, dtype=bool)
    if edge_code >= 0:
        keep &= flat_labels == edge_code
    if node_code >= 0:
        keep &= index.node_label_codes[flat_pool] == node_code
    anchor_row = anchor_row[keep]
    flat_pool = flat_pool[keep]
    if edge_code < 0 and flat_pool.size > 1:
        # wildcard edge label: parallel edges list the same endpoint once
        # per label; dedup per (anchor, neighbor) like dict-adjacency keys
        # (entries stay (anchor, neighbor, label)-sorted, so dups adjoin)
        distinct = np.empty(flat_pool.size, dtype=bool)
        distinct[0] = True
        np.not_equal(flat_pool[1:], flat_pool[:-1], out=distinct[1:])
        distinct[1:] |= anchor_row[1:] != anchor_row[:-1]
        anchor_row = anchor_row[distinct]
        flat_pool = flat_pool[distinct]
    pool_lengths = np.bincount(anchor_row, minlength=len(unique_anchors))
    pool_offsets = np.cumsum(pool_lengths) - pool_lengths
    counts = pool_lengths[inverse]
    width = array.shape[1]
    empty = np.empty((0, width + 1), dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return empty

    def expand(row_lo: int, row_hi: int) -> np.ndarray:
        """Fan out the input rows ``[row_lo, row_hi)`` and filter injectivity."""
        block_counts = counts[row_lo:row_hi]
        block_total = int(block_counts.sum())
        if block_total == 0:
            return empty
        row = np.repeat(np.arange(row_lo, row_hi, dtype=np.int64), block_counts)
        exclusive = np.cumsum(block_counts) - block_counts
        position = (
            np.arange(block_total, dtype=np.int64)
            - np.repeat(exclusive, block_counts)
            + np.repeat(pool_offsets[inverse[row_lo:row_hi]], block_counts)
        )
        new_nodes = flat_pool[position]
        # injectivity: the new endpoint must differ from every mapped variable
        valid = np.ones(block_total, dtype=bool)
        for variable in range(width):
            valid &= new_nodes != array[row, variable]
        row = row[valid]
        new_nodes = new_nodes[valid]
        return np.concatenate([array[row], new_nodes[:, None]], axis=1)

    # max_matches is a blow-up guard: never materialize a join that is far
    # beyond the cap — expand in bounded blocks and stop once the cap fills
    budget = None if max_matches is None else max(4 * max_matches, 1 << 20)
    if budget is None or total <= budget:
        result = expand(0, array.shape[0])
        if max_matches is not None and result.shape[0] > max_matches:
            result = result[:max_matches]
        return result
    cumulative = np.cumsum(counts)
    parts: List[np.ndarray] = []
    collected = 0
    row_lo = 0
    num_rows = array.shape[0]
    while row_lo < num_rows and collected < max_matches:
        base = int(cumulative[row_lo - 1]) if row_lo else 0
        row_hi = int(np.searchsorted(cumulative, base + budget, side="right"))
        row_hi = max(row_hi, row_lo + 1)
        block = expand(row_lo, row_hi)
        parts.append(block)
        collected += block.shape[0]
        row_lo = row_hi
    result = np.concatenate(parts) if parts else empty
    if result.shape[0] > max_matches:
        result = result[:max_matches]
    return result
