"""Canonical forms for small patterns.

Vertical spawning generates the same pattern along many extension orders; the
generation tree merges them via ``iso(Q)`` (Section 5.1), and ``ParCover``
groups GFDs whose patterns are isomorphic (Section 6.3).  Both need equality
*up to pivot-preserving isomorphism*, decided here by a canonical key.

Patterns are tiny (``k ≤ 6`` in the paper), so an exact search is viable:
nodes are first partitioned by a Weisfeiler-Leman-style refinement invariant,
then the lexicographically smallest encoding over the remaining permutations
is taken.  The pivot is always placed first, which bakes pivot preservation
into the key.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Dict, Iterator, List, Sequence, Tuple

from .pattern import Pattern

__all__ = ["canonical_key", "canonical_ordering", "are_isomorphic", "canonicalize"]

#: A canonical key: (labels in canonical order, sorted re-indexed edges).
CanonicalKey = Tuple[Tuple[str, ...], Tuple[Tuple[int, int, str], ...]]


def _refinement_invariant(pattern: Pattern, rounds: int = 2) -> List[str]:
    """A per-node isomorphism invariant via iterated neighborhood hashing."""
    colors = [
        f"{label}|p" if v == pattern.pivot else label
        for v, label in enumerate(pattern.labels)
    ]
    adjacency = pattern.adjacency()
    for _ in range(rounds):
        new_colors = []
        for v in pattern.variables():
            signature = sorted(
                ("o" if is_out else "i", label, colors[other])
                for other, _, label, is_out in adjacency[v]
            )
            new_colors.append(f"{colors[v]}#{signature}")
        colors = new_colors
    return colors


def _class_orderings(
    pattern: Pattern, invariant: Sequence[str]
) -> Iterator[Tuple[int, ...]]:
    """All node orderings that respect invariant classes, pivot first.

    Classes are sorted by invariant string; orderings permute nodes only
    within a class, which keeps the permutation search small in practice.
    """
    pivot = pattern.pivot
    others = [v for v in pattern.variables() if v != pivot]
    classes: Dict[str, List[int]] = {}
    for v in others:
        classes.setdefault(invariant[v], []).append(v)
    ordered_classes = [classes[key] for key in sorted(classes)]

    def expand(prefix: Tuple[int, ...], remaining: List[List[int]]) -> Iterator[Tuple[int, ...]]:
        if not remaining:
            yield prefix
            return
        head, tail = remaining[0], remaining[1:]
        for perm in permutations(head):
            yield from expand(prefix + perm, tail)

    yield from expand((pivot,), ordered_classes)


def _encode(pattern: Pattern, ordering: Sequence[int]) -> CanonicalKey:
    """Encode the pattern with nodes renamed by position in ``ordering``."""
    position = {old: new for new, old in enumerate(ordering)}
    labels = tuple(pattern.labels[old] for old in ordering)
    edges = tuple(
        sorted((position[e.src], position[e.dst], e.label) for e in pattern.edges)
    )
    return (labels, edges)


@lru_cache(maxsize=131072)
def canonical_key(pattern: Pattern) -> CanonicalKey:
    """A key equal for exactly the pivot-preserving-isomorphic patterns.

    Memoized: patterns are immutable and the discovery/cover pipelines ask
    for the same pattern's key many times (tree merges, grouping, identity).
    """
    invariant = _refinement_invariant(pattern)
    best: CanonicalKey | None = None
    for ordering in _class_orderings(pattern, invariant):
        key = _encode(pattern, ordering)
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def canonical_ordering(pattern: Pattern) -> Tuple[int, ...]:
    """The node ordering realizing :func:`canonical_key`.

    ``ordering[position] = old variable``; renaming variables by position
    yields :func:`canonicalize`'s representative.  Used to normalize the
    literals of a GFD together with its pattern.
    """
    invariant = _refinement_invariant(pattern)
    best: CanonicalKey | None = None
    best_ordering: Tuple[int, ...] | None = None
    for ordering in _class_orderings(pattern, invariant):
        key = _encode(pattern, ordering)
        if best is None or key < best:
            best, best_ordering = key, ordering
    assert best_ordering is not None
    return best_ordering


def canonicalize(pattern: Pattern) -> Pattern:
    """The canonical representative of the pattern's isomorphism class.

    The pivot becomes variable 0; two pivot-preserving-isomorphic patterns
    canonicalize to equal objects.
    """
    labels, edges = canonical_key(pattern)
    return Pattern(labels, edges, pivot=0)


def are_isomorphic(first: Pattern, second: Pattern) -> bool:
    """Pivot-preserving isomorphism test between two patterns."""
    if first.num_nodes != second.num_nodes or first.num_edges != second.num_edges:
        return False
    if sorted(first.labels) != sorted(second.labels):
        return False
    return canonical_key(first) == canonical_key(second)
