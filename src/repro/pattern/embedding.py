"""Pattern-into-pattern embeddings.

A GFD ``φ' = Q'[x̄'](X' → Y')`` is *embedded* in a pattern ``Q`` when there is
an isomorphism from ``Q'`` onto a subgraph of ``Q`` (Section 3).  Embeddings
drive the closure characterization of implication/satisfiability and the
reduction ordering ``≪`` (Section 4.1).

The label condition is directional: ``Q``'s label at the image must *match*
``Q'``'s requirement — i.e. ``L_Q(f(u)) ⪯ L_{Q'}(u)`` — so that every graph
node matching ``Q`` also matches ``Q'`` through ``f``.  Concretely, a
wildcard in the inner (embedded) pattern accepts anything; a wildcard in the
outer pattern only satisfies a wildcard requirement.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Tuple

from .pattern import WILDCARD, Pattern, label_matches

__all__ = [
    "embeddings",
    "cached_embeddings",
    "may_embed",
    "is_embedded",
    "embeds_strictly",
]

#: An embedding: image in the outer pattern per inner-pattern variable.
Embedding = Tuple[int, ...]


def embeddings(
    inner: Pattern,
    outer: Pattern,
    pivot_preserving: bool = False,
    max_results: Optional[int] = None,
) -> Iterator[Embedding]:
    """Enumerate injective embeddings of ``inner`` into ``outer``.

    Args:
        inner: the pattern being embedded (e.g. the pattern of a known GFD).
        outer: the host pattern.
        pivot_preserving: require ``f(inner.pivot) == outer.pivot`` — the
            condition of the GFD ordering ``≪`` (Section 4.1).
        max_results: stop after this many embeddings.

    Yields tuples ``f`` with ``f[u]`` the outer variable for inner ``u``.
    """
    if not may_embed(inner, outer):
        return

    # adjacency of outer for O(1) edge lookups: (src, dst) -> set of labels
    outer_edges: Dict[Tuple[int, int], set] = {}
    for edge in outer.edges:
        outer_edges.setdefault((edge.src, edge.dst), set()).add(edge.label)

    inner_adjacency = inner.adjacency()
    order: List[int] = []
    visited = set()
    start = inner.pivot
    # BFS order from the pivot keeps back-edge constraints available early.
    frontier = [start]
    visited.add(start)
    while frontier:
        node = frontier.pop(0)
        order.append(node)
        for other, _, _, _ in inner_adjacency[node]:
            if other not in visited:
                visited.add(other)
                frontier.append(other)
    # patterns handed to embeddings are connected; defend anyway:
    for node in inner.variables():
        if node not in visited:
            order.append(node)

    assignment: List[int] = [-1] * inner.num_nodes
    used = [False] * outer.num_nodes
    emitted = 0

    def label_ok(inner_var: int, outer_var: int) -> bool:
        return label_matches(outer.labels[outer_var], inner.labels[inner_var])

    def edges_ok(inner_var: int, outer_var: int) -> bool:
        for other, _, label, is_out in inner_adjacency[inner_var]:
            image = assignment[other]
            if image == -1:
                continue
            pair = (outer_var, image) if is_out else (image, outer_var)
            labels = outer_edges.get(pair)
            if not labels:
                return False
            if label == WILDCARD:
                continue
            # the outer edge label must itself match the inner requirement:
            # L_outer(e) ⪯ l_inner means equality for concrete inner labels
            # (a wildcard outer edge only satisfies a wildcard inner edge).
            if label not in labels:
                return False
        return True

    def backtrack(position: int) -> Iterator[Embedding]:
        nonlocal emitted
        if position == len(order):
            emitted += 1
            yield tuple(assignment)
            return
        inner_var = order[position]
        if pivot_preserving and inner_var == inner.pivot:
            candidates: Iterator[int] = iter((outer.pivot,))
        else:
            candidates = iter(range(outer.num_nodes))
        for outer_var in candidates:
            if used[outer_var]:
                continue
            if not label_ok(inner_var, outer_var):
                continue
            if not edges_ok(inner_var, outer_var):
                continue
            assignment[inner_var] = outer_var
            used[outer_var] = True
            yield from backtrack(position + 1)
            used[outer_var] = False
            assignment[inner_var] = -1
            if max_results is not None and emitted >= max_results:
                return

    yield from backtrack(0)


@lru_cache(maxsize=131072)
def _label_multisets(pattern: Pattern) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Concrete (non-wildcard) node/edge label counts of a pattern."""
    nodes: Dict[str, int] = {}
    for label in pattern.labels:
        if label != WILDCARD:
            nodes[label] = nodes.get(label, 0) + 1
    edges: Dict[str, int] = {}
    for edge in pattern.edges:
        if edge.label != WILDCARD:
            edges[edge.label] = edges.get(edge.label, 0) + 1
    return nodes, edges


def may_embed(inner: Pattern, outer: Pattern) -> bool:
    """Cheap necessary conditions for any embedding of inner into outer.

    A concrete inner label only maps onto the *same* outer label, so every
    concrete label must appear in the outer pattern at least as often.
    Rejects the overwhelming majority of incomparable pattern pairs before
    the backtracking search allocates anything.
    """
    if inner.num_nodes > outer.num_nodes or inner.num_edges > outer.num_edges:
        return False
    inner_nodes, inner_edges = _label_multisets(inner)
    outer_nodes, outer_edges = _label_multisets(outer)
    for label, count in inner_nodes.items():
        if outer_nodes.get(label, 0) < count:
            return False
    for label, count in inner_edges.items():
        if outer_edges.get(label, 0) < count:
            return False
    return True


@lru_cache(maxsize=131072)
def cached_embeddings(
    inner: Pattern,
    outer: Pattern,
    pivot_preserving: bool = False,
    max_results: Optional[int] = None,
) -> Tuple[Embedding, ...]:
    """Materialized :func:`embeddings`, memoized on the pattern pair.

    Patterns are immutable and hash structurally, and cover/implication
    checking re-enumerates the same (inner, outer) pairs once per GFD pair —
    memoization turns the quadratic re-enumeration into a dictionary hit.
    """
    return tuple(embeddings(inner, outer, pivot_preserving, max_results))


@lru_cache(maxsize=131072)
def is_embedded(inner: Pattern, outer: Pattern, pivot_preserving: bool = False) -> bool:
    """Whether at least one embedding of ``inner`` into ``outer`` exists."""
    for _ in embeddings(inner, outer, pivot_preserving, max_results=1):
        return True
    return False


def embeds_strictly(inner: Pattern, outer: Pattern) -> bool:
    """Pivot-preserving embedding that is *not* an isomorphism.

    This is the topological half of ``Q ≪ Q'``: ``inner`` removes
    nodes/edges from ``outer`` or upgrades labels to wildcard.
    """
    if not is_embedded(inner, outer, pivot_preserving=True):
        return False
    if inner.num_nodes < outer.num_nodes or inner.num_edges < outer.num_edges:
        return True
    # same size: strict only if some label is strictly more general
    from .canonical import canonical_key  # local import avoids a cycle

    return canonical_key(inner) != canonical_key(outer)
