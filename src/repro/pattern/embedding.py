"""Pattern-into-pattern embeddings.

A GFD ``φ' = Q'[x̄'](X' → Y')`` is *embedded* in a pattern ``Q`` when there is
an isomorphism from ``Q'`` onto a subgraph of ``Q`` (Section 3).  Embeddings
drive the closure characterization of implication/satisfiability and the
reduction ordering ``≪`` (Section 4.1).

The label condition is directional: ``Q``'s label at the image must *match*
``Q'``'s requirement — i.e. ``L_Q(f(u)) ⪯ L_{Q'}(u)`` — so that every graph
node matching ``Q`` also matches ``Q'`` through ``f``.  Concretely, a
wildcard in the inner (embedded) pattern accepts anything; a wildcard in the
outer pattern only satisfies a wildcard requirement.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .pattern import WILDCARD, Pattern, label_matches

__all__ = ["embeddings", "is_embedded", "embeds_strictly"]

#: An embedding: image in the outer pattern per inner-pattern variable.
Embedding = Tuple[int, ...]


def embeddings(
    inner: Pattern,
    outer: Pattern,
    pivot_preserving: bool = False,
    max_results: Optional[int] = None,
) -> Iterator[Embedding]:
    """Enumerate injective embeddings of ``inner`` into ``outer``.

    Args:
        inner: the pattern being embedded (e.g. the pattern of a known GFD).
        outer: the host pattern.
        pivot_preserving: require ``f(inner.pivot) == outer.pivot`` — the
            condition of the GFD ordering ``≪`` (Section 4.1).
        max_results: stop after this many embeddings.

    Yields tuples ``f`` with ``f[u]`` the outer variable for inner ``u``.
    """
    if inner.num_nodes > outer.num_nodes or inner.num_edges > outer.num_edges:
        return

    # adjacency of outer for O(1) edge lookups: (src, dst) -> set of labels
    outer_edges: Dict[Tuple[int, int], set] = {}
    for edge in outer.edges:
        outer_edges.setdefault((edge.src, edge.dst), set()).add(edge.label)

    inner_adjacency = inner.adjacency()
    order: List[int] = []
    visited = set()
    start = inner.pivot
    # BFS order from the pivot keeps back-edge constraints available early.
    frontier = [start]
    visited.add(start)
    while frontier:
        node = frontier.pop(0)
        order.append(node)
        for other, _, _, _ in inner_adjacency[node]:
            if other not in visited:
                visited.add(other)
                frontier.append(other)
    # patterns handed to embeddings are connected; defend anyway:
    for node in inner.variables():
        if node not in visited:
            order.append(node)

    assignment: List[int] = [-1] * inner.num_nodes
    used = [False] * outer.num_nodes
    emitted = 0

    def label_ok(inner_var: int, outer_var: int) -> bool:
        return label_matches(outer.labels[outer_var], inner.labels[inner_var])

    def edges_ok(inner_var: int, outer_var: int) -> bool:
        for other, _, label, is_out in inner_adjacency[inner_var]:
            image = assignment[other]
            if image == -1:
                continue
            pair = (outer_var, image) if is_out else (image, outer_var)
            labels = outer_edges.get(pair)
            if not labels:
                return False
            if label == WILDCARD:
                continue
            # the outer edge label must itself match the inner requirement:
            # L_outer(e) ⪯ l_inner means equality for concrete inner labels
            # (a wildcard outer edge only satisfies a wildcard inner edge).
            if label not in labels:
                return False
        return True

    def backtrack(position: int) -> Iterator[Embedding]:
        nonlocal emitted
        if position == len(order):
            emitted += 1
            yield tuple(assignment)
            return
        inner_var = order[position]
        if pivot_preserving and inner_var == inner.pivot:
            candidates: Iterator[int] = iter((outer.pivot,))
        else:
            candidates = iter(range(outer.num_nodes))
        for outer_var in candidates:
            if used[outer_var]:
                continue
            if not label_ok(inner_var, outer_var):
                continue
            if not edges_ok(inner_var, outer_var):
                continue
            assignment[inner_var] = outer_var
            used[outer_var] = True
            yield from backtrack(position + 1)
            used[outer_var] = False
            assignment[inner_var] = -1
            if max_results is not None and emitted >= max_results:
                return

    yield from backtrack(0)


def is_embedded(inner: Pattern, outer: Pattern, pivot_preserving: bool = False) -> bool:
    """Whether at least one embedding of ``inner`` into ``outer`` exists."""
    for _ in embeddings(inner, outer, pivot_preserving, max_results=1):
        return True
    return False


def embeds_strictly(inner: Pattern, outer: Pattern) -> bool:
    """Pivot-preserving embedding that is *not* an isomorphism.

    This is the topological half of ``Q ≪ Q'``: ``inner`` removes
    nodes/edges from ``outer`` or upgrades labels to wildcard.
    """
    if not is_embedded(inner, outer, pivot_preserving=True):
        return False
    if inner.num_nodes < outer.num_nodes or inner.num_edges < outer.num_edges:
        return True
    # same size: strict only if some label is strictly more general
    from .canonical import canonical_key  # local import avoids a cycle

    return canonical_key(inner) != canonical_key(outer)
