"""Graph patterns, canonical forms, matching and embeddings."""

from .canonical import are_isomorphic, canonical_key, canonical_ordering, canonicalize
from .embedding import embeddings, embeds_strictly, is_embedded
from .incremental import Extension, apply_extension, extend_match, extend_matches
from .matcher import (
    Match,
    count_matches,
    find_matches,
    has_match,
    match_exists_at_pivot,
    pivot_image,
)
from .pattern import WILDCARD, Pattern, PatternEdge, label_matches, variable_name

__all__ = [
    "WILDCARD",
    "Pattern",
    "PatternEdge",
    "Match",
    "Extension",
    "label_matches",
    "variable_name",
    "find_matches",
    "count_matches",
    "pivot_image",
    "has_match",
    "match_exists_at_pivot",
    "canonical_key",
    "canonical_ordering",
    "canonicalize",
    "are_isomorphic",
    "embeddings",
    "is_embedded",
    "embeds_strictly",
    "apply_extension",
    "extend_match",
    "extend_matches",
]
