"""Graph patterns ``Q[x̄]`` with wildcards and a pivot (Section 2.1).

A pattern is a small directed graph whose nodes are the *variables* ``x̄``
(represented as dense integers ``0..n-1``); node and edge labels may be the
wildcard ``'_'``, which matches any label.  One variable is designated the
**pivot** ``z`` (Section 4.1): support is counted as the number of distinct
graph nodes the pivot maps to, and matching exploits the locality of the
pivot's ``d_Q``-neighborhood.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "WILDCARD",
    "PatternEdge",
    "Pattern",
    "label_matches",
    "variable_name",
]

#: The wildcard label ``'_'``: matches any label in the alphabet.
WILDCARD = "_"

#: Human-readable variable names for display, in pattern-variable order.
_VARIABLE_NAMES = "xyzuvwabcdefghijklmnopqrst"


def variable_name(index: int) -> str:
    """Display name for pattern variable ``index``: x, y, z, u, ..., x1, y1, ..."""
    base = len(_VARIABLE_NAMES)
    if index < base:
        return _VARIABLE_NAMES[index]
    return f"{_VARIABLE_NAMES[index % base]}{index // base}"


def label_matches(graph_label: str, pattern_label: str) -> bool:
    """The paper's ``⪯`` test: graph label matches pattern label or wildcard."""
    return pattern_label == WILDCARD or graph_label == pattern_label


@dataclass(frozen=True)
class PatternEdge:
    """A directed pattern edge ``src -[label]-> dst`` (label may be wildcard)."""

    src: int
    dst: int
    label: str

    def as_tuple(self) -> Tuple[int, int, str]:
        """The edge as a plain tuple."""
        return (self.src, self.dst, self.label)


class Pattern:
    """An immutable graph pattern with labeled nodes/edges and a pivot.

    Args:
        labels: node labels in variable order (``'_'`` for wildcard).
        edges: the pattern edges; duplicates are rejected.
        pivot: the designated pivot variable (defaults to variable 0).

    Patterns compare equal structurally (same labels, same edge set, same
    pivot) — use :mod:`repro.pattern.canonical` for equality up to
    isomorphism.
    """

    __slots__ = ("labels", "edges", "pivot", "_adjacency", "_hash", "_edge_set")

    def __init__(
        self,
        labels: Sequence[str],
        edges: Iterable[Tuple[int, int, str]] = (),
        pivot: int = 0,
    ) -> None:
        labels = tuple(labels)
        if not labels:
            raise ValueError("a pattern needs at least one node")
        if not 0 <= pivot < len(labels):
            raise ValueError(f"pivot {pivot} out of range for {len(labels)} nodes")
        edge_objects = []
        seen = set()
        for src, dst, label in edges:
            if not (0 <= src < len(labels) and 0 <= dst < len(labels)):
                raise ValueError(f"edge ({src},{dst}) references missing node")
            key = (src, dst, label)
            if key in seen:
                raise ValueError(f"duplicate pattern edge {key}")
            seen.add(key)
            edge_objects.append(PatternEdge(src, dst, label))
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "edges", tuple(edge_objects))
        object.__setattr__(self, "pivot", pivot)
        object.__setattr__(self, "_adjacency", None)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_edge_set", None)

    # -- the frozen dance: slots + immutability ------------------------------
    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Pattern is immutable")

    def __reduce__(self):
        """Pickle as constructor arguments (the blocked ``__setattr__``
        breaks the default slot-state protocol); caches rebuild lazily."""
        return (
            Pattern,
            (self.labels, [edge.as_tuple() for edge in self.edges], self.pivot),
        )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of pattern variables ``|x̄|``."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of pattern edges (the *size*/level of the pattern)."""
        return len(self.edges)

    def variables(self) -> range:
        """All variable indices."""
        return range(len(self.labels))

    def edge_set(self) -> FrozenSet[Tuple[int, int, str]]:
        """The pattern edges as a frozen set of tuples (cached)."""
        cached = object.__getattribute__(self, "_edge_set")
        if cached is None:
            cached = frozenset(edge.as_tuple() for edge in self.edges)
            object.__setattr__(self, "_edge_set", cached)
        return cached

    def adjacency(self) -> Dict[int, List[Tuple[int, int, str, bool]]]:
        """Per variable: incident edges as ``(other, edge_index, label, is_out)``.

        Cached; used by the matcher to build search plans.
        """
        cached = object.__getattribute__(self, "_adjacency")
        if cached is not None:
            return cached
        adjacency: Dict[int, List[Tuple[int, int, str, bool]]] = {
            v: [] for v in self.variables()
        }
        for index, edge in enumerate(self.edges):
            adjacency[edge.src].append((edge.dst, index, edge.label, True))
            adjacency[edge.dst].append((edge.src, index, edge.label, False))
        object.__setattr__(self, "_adjacency", adjacency)
        return adjacency

    def is_connected(self) -> bool:
        """Whether every pair of variables is connected by an undirected path."""
        if self.num_nodes == 1:
            return True
        adjacency = self.adjacency()
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for other, _, _, _ in adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == self.num_nodes

    def radius_at_pivot(self) -> int:
        """``d_Q``: longest shortest (undirected) path from the pivot (Section 4.1)."""
        adjacency = self.adjacency()
        distances = {self.pivot: 0}
        frontier = [self.pivot]
        while frontier:
            next_frontier = []
            for node in frontier:
                for other, _, _, _ in adjacency[node]:
                    if other not in distances:
                        distances[other] = distances[node] + 1
                        next_frontier.append(other)
            frontier = next_frontier
        return max(distances.values()) if distances else 0

    # ------------------------------------------------------------------
    # derivation (used by spawning and the ``≪`` ordering)
    # ------------------------------------------------------------------
    def with_edge(self, src: int, dst: int, label: str) -> "Pattern":
        """A new pattern with one extra edge between existing variables."""
        return Pattern(
            self.labels,
            [edge.as_tuple() for edge in self.edges] + [(src, dst, label)],
            self.pivot,
        )

    def with_new_node(
        self, label: str, src: Optional[int], dst_is_new: bool, edge_label: str
    ) -> "Pattern":
        """A new pattern extended with a fresh node and one connecting edge.

        If ``dst_is_new`` the edge runs ``src -> new`` else ``new -> src``.
        """
        if src is None or not 0 <= src < self.num_nodes:
            raise ValueError("src must be an existing variable")
        new_index = self.num_nodes
        edge = (src, new_index, edge_label) if dst_is_new else (new_index, src, edge_label)
        return Pattern(
            self.labels + (label,),
            [e.as_tuple() for e in self.edges] + [edge],
            self.pivot,
        )

    def with_label(self, variable: int, label: str) -> "Pattern":
        """A new pattern where ``variable`` carries ``label`` (e.g. wildcard upgrade)."""
        labels = list(self.labels)
        labels[variable] = label
        return Pattern(labels, (e.as_tuple() for e in self.edges), self.pivot)

    def with_pivot(self, pivot: int) -> "Pattern":
        """The same pattern re-pivoted at ``pivot``."""
        return Pattern(self.labels, (e.as_tuple() for e in self.edges), pivot)

    def without_edge(self, index: int) -> "Pattern":
        """Remove edge ``index``, dropping any variable left isolated.

        Used to enumerate the ``≪``-smaller patterns and the *bases* of
        negative GFDs (Section 4.2).  Returns the reduced pattern and is only
        valid when the result stays connected and keeps the pivot; callers
        check :meth:`is_connected`.  Variables are re-indexed densely; the
        mapping old->new is returned alongside.
        """
        kept_edges = [
            edge.as_tuple() for position, edge in enumerate(self.edges)
            if position != index
        ]
        used: Set[int] = {self.pivot}
        for src, dst, _ in kept_edges:
            used.add(src)
            used.add(dst)
        ordered = sorted(used)
        remap = {old: new for new, old in enumerate(ordered)}
        pattern = Pattern(
            [self.labels[old] for old in ordered],
            [(remap[s], remap[d], l) for s, d, l in kept_edges],
            remap[self.pivot],
        )
        return pattern

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return (
            self.labels == other.labels
            and self.pivot == other.pivot
            and self.edge_set() == other.edge_set()
        )

    def __hash__(self) -> int:
        cached = object.__getattribute__(self, "_hash")
        if cached is None:
            cached = hash((self.labels, self.pivot, self.edge_set()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        nodes = ",".join(
            f"{variable_name(v)}:{label}" for v, label in enumerate(self.labels)
        )
        edges = ", ".join(
            f"{variable_name(e.src)}-[{e.label}]->{variable_name(e.dst)}"
            for e in self.edges
        )
        return f"Pattern[{nodes} | {edges} | pivot={variable_name(self.pivot)}]"
