"""Subgraph isomorphism with wildcard labels.

A *match* of pattern ``Q`` in graph ``G`` (Section 2.1) is an injective
mapping ``h`` from pattern variables to graph nodes such that

* node labels satisfy ``L_G(h(u)) ⪯ L_Q(u)`` (wildcard matches anything),
* every pattern edge ``(u, v, l)`` maps to a graph edge ``(h(u), h(v), l')``
  with ``l' ⪯ l``, and parallel pattern edges between the same endpoints map
  to *distinct* graph edges.

Matches are the non-induced kind: extra graph edges among matched nodes are
allowed (the match subgraph consists of exactly the images of pattern edges).

The matcher is a VF2-style backtracking search with a connectivity-driven
search plan and label-index candidate seeding.  It is the hot loop of the
whole library; keep it allocation-light.

Two data-access backends exist: the mutable graph's dict adjacency, and —
when a frozen :class:`~repro.graph.index.GraphIndex` is passed — flat CSR
arrays, where candidate pools are vectorized label masks over CSR slices
and *all* back-edge consistency checks for a pool happen as one batched
``np.searchsorted`` over the sorted edge keys instead of per-candidate dict
probes.  Both backends enumerate the same match set.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.graph import Graph
from ..graph.index import GraphIndex
from .pattern import WILDCARD, Pattern, label_matches

__all__ = [
    "Match",
    "find_matches",
    "count_matches",
    "pivot_image",
    "has_match",
    "match_exists_at_pivot",
]

#: A match: graph node per pattern variable, indexed by variable.
Match = Tuple[int, ...]


def _search_order(pattern: Pattern, root: int) -> List[int]:
    """Visit order over pattern variables: root first, then by connectivity.

    Greedy: always pick the unvisited variable with the most edges to visited
    ones (maximizes pruning), tie-broken by non-wildcard label then index.
    Assumes the pattern is connected (discovery only mines connected patterns).
    """
    adjacency = pattern.adjacency()
    order = [root]
    visited = {root}
    while len(order) < pattern.num_nodes:
        best = None
        best_key = None
        for candidate in pattern.variables():
            if candidate in visited:
                continue
            links = sum(
                1 for other, _, _, _ in adjacency[candidate] if other in visited
            )
            key = (links, pattern.labels[candidate] != WILDCARD, -candidate)
            if best_key is None or key > best_key:
                best, best_key = candidate, key
        assert best is not None
        order.append(best)
        visited.add(best)
    return order


def _root_candidates(
    graph: Graph, pattern: Pattern, root: int, seeds: Optional[Iterable[int]]
) -> Iterable[int]:
    """Candidate graph nodes for the first variable of the search plan."""
    label = pattern.labels[root]
    if seeds is not None:
        if label == WILDCARD:
            return seeds
        return (v for v in seeds if graph.node_label(v) == label)
    if label == WILDCARD:
        return graph.nodes()
    return graph.nodes_with_label(label)


def _parallel_edges_ok(
    pattern_labels: Sequence[str], graph_labels: Set[str]
) -> bool:
    """Injective assignment test for parallel pattern edges on one node pair.

    Concrete pattern labels must all be present; wildcard pattern edges then
    need enough *distinct remaining* graph labels to map to injectively.
    """
    concrete = [l for l in pattern_labels if l != WILDCARD]
    for label in concrete:
        if label not in graph_labels:
            return False
    wildcards = len(pattern_labels) - len(concrete)
    return len(graph_labels) - len(concrete) >= wildcards


def find_matches(
    graph: Graph,
    pattern: Pattern,
    seeds: Optional[Iterable[int]] = None,
    max_matches: Optional[int] = None,
    root: Optional[int] = None,
    index: Optional[GraphIndex] = None,
) -> Iterator[Match]:
    """Enumerate matches of ``pattern`` in ``graph``.

    Args:
        graph: the data graph.
        pattern: a connected pattern.
        seeds: restrict the *root* variable (default: the pivot) to these
            graph nodes — used for pivot-local matching.
        max_matches: stop after this many matches (None = all).
        root: which variable anchors the search (default: the pivot).
        index: optional frozen index of ``graph``; switches candidate
            generation and back-edge checks to the vectorized CSR backend.

    Yields match tuples (graph node per variable, in variable order).
    """
    anchor = pattern.pivot if root is None else root
    order = _search_order(pattern, anchor)
    adjacency = pattern.adjacency()
    labels = pattern.labels

    # Pre-compute, for each plan position > 0, the edges back to already
    # mapped variables: (mapped_var, label, is_out_from_new).
    position_of = {variable: position for position, variable in enumerate(order)}
    back_edges: List[List[Tuple[int, str, bool]]] = [[] for _ in order]
    for position, variable in enumerate(order):
        for other, _, label, is_out in adjacency[variable]:
            if position_of[other] < position:
                back_edges[position].append((other, label, is_out))

    # Parallel-edge groups (same unordered endpoints, same direction) needing
    # the injective label assignment check.
    parallel: Dict[Tuple[int, int], List[str]] = {}
    for edge in pattern.edges:
        parallel.setdefault((edge.src, edge.dst), []).append(edge.label)
    parallel_groups = {
        pair: edge_labels
        for pair, edge_labels in parallel.items()
        if len(edge_labels) > 1
    }

    if index is not None:
        yield from _find_matches_indexed(
            index,
            pattern,
            order,
            back_edges,
            parallel_groups,
            position_of,
            seeds,
            max_matches,
        )
        return

    assignment: List[int] = [-1] * pattern.num_nodes
    used: Set[int] = set()
    emitted = 0

    def candidates_for(position: int) -> Iterable[int]:
        """Graph-node candidates for plan position ``position``."""
        variable = order[position]
        required_label = labels[variable]
        # choose the cheapest back-edge to drive candidate generation
        best: Optional[Iterable[int]] = None
        best_size = None
        for mapped_var, edge_label, is_out in back_edges[position]:
            mapped_node = assignment[mapped_var]
            if is_out:
                # pattern edge variable -> mapped_var, so candidate has an
                # out-edge to mapped_node: candidates are in-neighbors sources
                neighbors = graph.in_neighbors(mapped_node)
            else:
                neighbors = graph.out_neighbors(mapped_node)
            if edge_label == WILDCARD:
                pool = list(neighbors)
            else:
                pool = [n for n, ls in neighbors.items() if edge_label in ls]
            if best_size is None or len(pool) < best_size:
                best, best_size = pool, len(pool)
                if best_size == 0:
                    return ()
        assert best is not None
        if required_label == WILDCARD:
            return best
        return [n for n in best if graph.node_label(n) == required_label]

    def edges_consistent(position: int, node: int) -> bool:
        """Verify all back edges from plan position ``position`` map to graph edges."""
        variable = order[position]
        for mapped_var, edge_label, is_out in back_edges[position]:
            mapped_node = assignment[mapped_var]
            if is_out:
                graph_labels = graph.edge_labels(node, mapped_node)
            else:
                graph_labels = graph.edge_labels(mapped_node, node)
            if not graph_labels:
                return False
            if edge_label != WILDCARD and edge_label not in graph_labels:
                return False
        # group check for parallel pattern edges whose endpoints are now mapped
        for (src, dst), group_labels in parallel_groups.items():
            if position_of[src] <= position and position_of[dst] <= position:
                s_node = node if src == variable else assignment[src]
                d_node = node if dst == variable else assignment[dst]
                if s_node == -1 or d_node == -1:
                    continue
                if not _parallel_edges_ok(
                    group_labels, graph.edge_labels(s_node, d_node)
                ):
                    return False
        return True

    def backtrack(position: int) -> Iterator[Match]:
        nonlocal emitted
        if position == len(order):
            emitted += 1
            yield tuple(assignment)
            return
        variable = order[position]
        if position == 0:
            pool: Iterable[int] = _root_candidates(graph, pattern, variable, seeds)
        else:
            pool = candidates_for(position)
        for node in pool:
            if node in used:
                continue
            if position == 0 and labels[variable] != WILDCARD:
                if graph.node_label(node) != labels[variable]:
                    continue
            if position > 0 and not edges_consistent(position, node):
                continue
            assignment[variable] = node
            used.add(node)
            yield from backtrack(position + 1)
            used.discard(node)
            assignment[variable] = -1
            if max_matches is not None and emitted >= max_matches:
                return

    yield from backtrack(0)


def _find_matches_indexed(
    index: GraphIndex,
    pattern: Pattern,
    order: List[int],
    back_edges: List[List[Tuple[int, str, bool]]],
    parallel_groups: Dict[Tuple[int, int], List[str]],
    position_of: Dict[int, int],
    seeds: Optional[Iterable[int]],
    max_matches: Optional[int],
) -> Iterator[Match]:
    """CSR-backed backtracking: vectorized pools + batched edge checks.

    Per plan position, the cheapest back edge drives a CSR-slice candidate
    pool; the *remaining* back edges are then applied to the whole pool as
    batched ``searchsorted`` existence masks, and the label requirement as
    one integer-compare mask — the per-candidate ``edges_consistent`` loop
    of the dict backend collapses into a handful of array ops.
    """
    labels = pattern.labels
    node_codes = index.node_label_codes
    empty_pool = np.empty(0, dtype=np.int64)

    # back edges with pre-resolved edge-label codes; an absent concrete
    # label means the position can never be satisfied (code None)
    back_info: List[List[Tuple[int, Optional[int], bool]]] = []
    for position_edges in back_edges:
        infos: List[Tuple[int, Optional[int], bool]] = []
        for mapped_var, edge_label, is_out in position_edges:
            if edge_label == WILDCARD:
                code: Optional[int] = -1
            else:
                resolved = index.edge_label_code(edge_label)
                code = resolved if resolved >= 0 else None
            infos.append((mapped_var, code, is_out))
        back_info.append(infos)

    def label_filter(pool: np.ndarray, required_label: str) -> np.ndarray:
        if required_label == WILDCARD or pool.size == 0:
            return pool
        code = index.node_label_code(required_label)
        if code < 0:
            return empty_pool
        return pool[node_codes[pool] == code]

    root_var = order[0]
    if seeds is not None:
        seed_pool = (
            seeds
            if isinstance(seeds, np.ndarray)
            else np.asarray(list(seeds), dtype=np.int64)
        )
        root_pool = label_filter(seed_pool, labels[root_var])
    elif labels[root_var] == WILDCARD:
        root_pool = np.arange(index.num_nodes, dtype=np.int64)
    else:
        root_pool = index.nodes_with_label(labels[root_var])

    assignment: List[int] = [-1] * pattern.num_nodes
    used: Set[int] = set()
    emitted = 0

    def candidates_for(position: int) -> np.ndarray:
        infos = back_info[position]
        chosen = None
        chosen_pool = None
        for which, (mapped_var, code, is_out) in enumerate(infos):
            if code is None:
                return empty_pool
            # pattern edge candidate -> mapped (is_out): candidates are the
            # in-neighbors of the mapped node, and vice versa
            pool = index.neighbors(
                int(assignment[mapped_var]), not is_out, code
            )
            if chosen_pool is None or len(pool) < len(chosen_pool):
                chosen, chosen_pool = which, pool
                if len(pool) == 0:
                    return empty_pool
        assert chosen_pool is not None
        pool = chosen_pool
        for which, (mapped_var, code, is_out) in enumerate(infos):
            if which == chosen or pool.size == 0:
                continue
            mapped_node = int(assignment[mapped_var])
            if is_out:
                mask = index.edges_exist(pool, mapped_node, code)
            else:
                mask = index.edges_exist(
                    np.full(pool.size, mapped_node, dtype=np.int64), pool, code
                )
            pool = pool[mask]
        return label_filter(pool, labels[order[position]])

    def parallel_ok(position: int, node: int) -> bool:
        variable = order[position]
        for (src, dst), group_labels in parallel_groups.items():
            if position_of[src] <= position and position_of[dst] <= position:
                s_node = node if src == variable else assignment[src]
                d_node = node if dst == variable else assignment[dst]
                if s_node == -1 or d_node == -1:
                    continue
                if not _parallel_edges_ok(
                    group_labels, index.edge_labels(int(s_node), int(d_node))
                ):
                    return False
        return True

    check_parallel = bool(parallel_groups)

    def backtrack(position: int) -> Iterator[Match]:
        nonlocal emitted
        if position == len(order):
            emitted += 1
            yield tuple(assignment)
            return
        variable = order[position]
        pool = root_pool if position == 0 else candidates_for(position)
        # tolist() makes the iteration yield plain ints (faster than numpy
        # scalar iteration, and keeps emitted matches numpy-free)
        for node in pool.tolist():
            if node in used:
                continue
            if check_parallel and position > 0 and not parallel_ok(position, node):
                continue
            assignment[variable] = node
            used.add(node)
            yield from backtrack(position + 1)
            used.discard(node)
            assignment[variable] = -1
            if max_matches is not None and emitted >= max_matches:
                return

    yield from backtrack(0)


def count_matches(
    graph: Graph,
    pattern: Pattern,
    limit: Optional[int] = None,
    index: Optional[GraphIndex] = None,
) -> int:
    """Number of matches of ``pattern`` in ``graph`` (capped at ``limit``)."""
    count = 0
    for _ in find_matches(graph, pattern, max_matches=limit, index=index):
        count += 1
    return count


def pivot_image(
    graph: Graph,
    pattern: Pattern,
    seeds: Optional[Iterable[int]] = None,
    index: Optional[GraphIndex] = None,
) -> Set[int]:
    """``Q(G, z)``: the distinct graph nodes the pivot maps to over all matches.

    This is the paper's pattern support set (Section 4.2).  The search is
    anchored at the pivot and stops at the *first* match per pivot candidate,
    so it is much cheaper than full enumeration.
    """
    image: Set[int] = set()
    if index is not None:
        if seeds is None:
            candidates: Iterable[int] = (
                range(index.num_nodes)
                if pattern.labels[pattern.pivot] == WILDCARD
                else index.nodes_with_label(pattern.labels[pattern.pivot])
            )
        else:
            candidates = seeds
    else:
        candidates = _root_candidates(graph, pattern, pattern.pivot, seeds)
    for candidate in candidates:
        candidate = int(candidate)
        if candidate in image:
            continue
        if match_exists_at_pivot(graph, pattern, candidate, index=index):
            image.add(candidate)
    return image


def match_exists_at_pivot(
    graph: Graph,
    pattern: Pattern,
    pivot_node: int,
    index: Optional[GraphIndex] = None,
) -> bool:
    """Whether some match maps the pivot to ``pivot_node``."""
    for _ in find_matches(
        graph, pattern, seeds=(pivot_node,), max_matches=1, index=index
    ):
        return True
    return False


def has_match(
    graph: Graph, pattern: Pattern, index: Optional[GraphIndex] = None
) -> bool:
    """Whether ``pattern`` has at least one match in ``graph``."""
    for _ in find_matches(graph, pattern, max_matches=1, index=index):
        return True
    return False
