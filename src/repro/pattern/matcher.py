"""Subgraph isomorphism with wildcard labels.

A *match* of pattern ``Q`` in graph ``G`` (Section 2.1) is an injective
mapping ``h`` from pattern variables to graph nodes such that

* node labels satisfy ``L_G(h(u)) ⪯ L_Q(u)`` (wildcard matches anything),
* every pattern edge ``(u, v, l)`` maps to a graph edge ``(h(u), h(v), l')``
  with ``l' ⪯ l``, and parallel pattern edges between the same endpoints map
  to *distinct* graph edges.

Matches are the non-induced kind: extra graph edges among matched nodes are
allowed (the match subgraph consists of exactly the images of pattern edges).

The matcher is a VF2-style backtracking search with a connectivity-driven
search plan and label-index candidate seeding.  It is the hot loop of the
whole library; keep it allocation-light.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..graph.graph import Graph
from .pattern import WILDCARD, Pattern, label_matches

__all__ = [
    "Match",
    "find_matches",
    "count_matches",
    "pivot_image",
    "has_match",
    "match_exists_at_pivot",
]

#: A match: graph node per pattern variable, indexed by variable.
Match = Tuple[int, ...]


def _search_order(pattern: Pattern, root: int) -> List[int]:
    """Visit order over pattern variables: root first, then by connectivity.

    Greedy: always pick the unvisited variable with the most edges to visited
    ones (maximizes pruning), tie-broken by non-wildcard label then index.
    Assumes the pattern is connected (discovery only mines connected patterns).
    """
    adjacency = pattern.adjacency()
    order = [root]
    visited = {root}
    while len(order) < pattern.num_nodes:
        best = None
        best_key = None
        for candidate in pattern.variables():
            if candidate in visited:
                continue
            links = sum(
                1 for other, _, _, _ in adjacency[candidate] if other in visited
            )
            key = (links, pattern.labels[candidate] != WILDCARD, -candidate)
            if best_key is None or key > best_key:
                best, best_key = candidate, key
        assert best is not None
        order.append(best)
        visited.add(best)
    return order


def _root_candidates(
    graph: Graph, pattern: Pattern, root: int, seeds: Optional[Iterable[int]]
) -> Iterable[int]:
    """Candidate graph nodes for the first variable of the search plan."""
    label = pattern.labels[root]
    if seeds is not None:
        if label == WILDCARD:
            return seeds
        return (v for v in seeds if graph.node_label(v) == label)
    if label == WILDCARD:
        return graph.nodes()
    return graph.nodes_with_label(label)


def _parallel_edges_ok(
    pattern_labels: Sequence[str], graph_labels: Set[str]
) -> bool:
    """Injective assignment test for parallel pattern edges on one node pair.

    Concrete pattern labels must all be present; wildcard pattern edges then
    need enough *distinct remaining* graph labels to map to injectively.
    """
    concrete = [l for l in pattern_labels if l != WILDCARD]
    for label in concrete:
        if label not in graph_labels:
            return False
    wildcards = len(pattern_labels) - len(concrete)
    return len(graph_labels) - len(concrete) >= wildcards


def find_matches(
    graph: Graph,
    pattern: Pattern,
    seeds: Optional[Iterable[int]] = None,
    max_matches: Optional[int] = None,
    root: Optional[int] = None,
) -> Iterator[Match]:
    """Enumerate matches of ``pattern`` in ``graph``.

    Args:
        graph: the data graph.
        pattern: a connected pattern.
        seeds: restrict the *root* variable (default: the pivot) to these
            graph nodes — used for pivot-local matching.
        max_matches: stop after this many matches (None = all).
        root: which variable anchors the search (default: the pivot).

    Yields match tuples (graph node per variable, in variable order).
    """
    anchor = pattern.pivot if root is None else root
    order = _search_order(pattern, anchor)
    adjacency = pattern.adjacency()
    labels = pattern.labels

    # Pre-compute, for each plan position > 0, the edges back to already
    # mapped variables: (mapped_var, label, is_out_from_new).
    position_of = {variable: position for position, variable in enumerate(order)}
    back_edges: List[List[Tuple[int, str, bool]]] = [[] for _ in order]
    for position, variable in enumerate(order):
        for other, _, label, is_out in adjacency[variable]:
            if position_of[other] < position:
                back_edges[position].append((other, label, is_out))

    # Parallel-edge groups (same unordered endpoints, same direction) needing
    # the injective label assignment check.
    parallel: Dict[Tuple[int, int], List[str]] = {}
    for edge in pattern.edges:
        parallel.setdefault((edge.src, edge.dst), []).append(edge.label)
    parallel_groups = {
        pair: edge_labels
        for pair, edge_labels in parallel.items()
        if len(edge_labels) > 1
    }

    assignment: List[int] = [-1] * pattern.num_nodes
    used: Set[int] = set()
    emitted = 0

    def candidates_for(position: int) -> Iterable[int]:
        """Graph-node candidates for plan position ``position``."""
        variable = order[position]
        required_label = labels[variable]
        # choose the cheapest back-edge to drive candidate generation
        best: Optional[Iterable[int]] = None
        best_size = None
        for mapped_var, edge_label, is_out in back_edges[position]:
            mapped_node = assignment[mapped_var]
            if is_out:
                # pattern edge variable -> mapped_var, so candidate has an
                # out-edge to mapped_node: candidates are in-neighbors sources
                neighbors = graph.in_neighbors(mapped_node)
            else:
                neighbors = graph.out_neighbors(mapped_node)
            if edge_label == WILDCARD:
                pool = list(neighbors)
            else:
                pool = [n for n, ls in neighbors.items() if edge_label in ls]
            if best_size is None or len(pool) < best_size:
                best, best_size = pool, len(pool)
                if best_size == 0:
                    return ()
        assert best is not None
        if required_label == WILDCARD:
            return best
        return [n for n in best if graph.node_label(n) == required_label]

    def edges_consistent(position: int, node: int) -> bool:
        """Verify all back edges from plan position ``position`` map to graph edges."""
        variable = order[position]
        for mapped_var, edge_label, is_out in back_edges[position]:
            mapped_node = assignment[mapped_var]
            if is_out:
                graph_labels = graph.edge_labels(node, mapped_node)
            else:
                graph_labels = graph.edge_labels(mapped_node, node)
            if not graph_labels:
                return False
            if edge_label != WILDCARD and edge_label not in graph_labels:
                return False
        # group check for parallel pattern edges whose endpoints are now mapped
        for (src, dst), group_labels in parallel_groups.items():
            if position_of[src] <= position and position_of[dst] <= position:
                s_node = node if src == variable else assignment[src]
                d_node = node if dst == variable else assignment[dst]
                if s_node == -1 or d_node == -1:
                    continue
                if not _parallel_edges_ok(
                    group_labels, graph.edge_labels(s_node, d_node)
                ):
                    return False
        return True

    def backtrack(position: int) -> Iterator[Match]:
        nonlocal emitted
        if position == len(order):
            emitted += 1
            yield tuple(assignment)
            return
        variable = order[position]
        if position == 0:
            pool: Iterable[int] = _root_candidates(graph, pattern, variable, seeds)
        else:
            pool = candidates_for(position)
        for node in pool:
            if node in used:
                continue
            if position == 0 and labels[variable] != WILDCARD:
                if graph.node_label(node) != labels[variable]:
                    continue
            if position > 0 and not edges_consistent(position, node):
                continue
            assignment[variable] = node
            used.add(node)
            yield from backtrack(position + 1)
            used.discard(node)
            assignment[variable] = -1
            if max_matches is not None and emitted >= max_matches:
                return

    yield from backtrack(0)


def count_matches(graph: Graph, pattern: Pattern, limit: Optional[int] = None) -> int:
    """Number of matches of ``pattern`` in ``graph`` (capped at ``limit``)."""
    count = 0
    for _ in find_matches(graph, pattern, max_matches=limit):
        count += 1
    return count


def pivot_image(
    graph: Graph, pattern: Pattern, seeds: Optional[Iterable[int]] = None
) -> Set[int]:
    """``Q(G, z)``: the distinct graph nodes the pivot maps to over all matches.

    This is the paper's pattern support set (Section 4.2).  The search is
    anchored at the pivot and stops at the *first* match per pivot candidate,
    so it is much cheaper than full enumeration.
    """
    image: Set[int] = set()
    candidates = _root_candidates(graph, pattern, pattern.pivot, seeds)
    for candidate in candidates:
        if candidate in image:
            continue
        if match_exists_at_pivot(graph, pattern, candidate):
            image.add(candidate)
    return image


def match_exists_at_pivot(graph: Graph, pattern: Pattern, pivot_node: int) -> bool:
    """Whether some match maps the pivot to ``pivot_node``."""
    for _ in find_matches(graph, pattern, seeds=(pivot_node,), max_matches=1):
        return True
    return False


def has_match(graph: Graph, pattern: Pattern) -> bool:
    """Whether ``pattern`` has at least one match in ``graph``."""
    for _ in find_matches(graph, pattern, max_matches=1):
        return True
    return False
