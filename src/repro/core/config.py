"""Configuration of the discovery problem (Section 4.3).

The paper's discovery problem takes a graph ``G``, a bound ``k ≥ 2`` on the
number of pattern variables and a support threshold ``σ > 0``, plus the
practical knobs of Section 4.3's *Remarks*: the active attributes ``Γ`` and
the frequent-constant budget.  :class:`DiscoveryConfig` gathers those and the
engineering limits that keep mining tractable on a laptop.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "DiscoveryConfig",
    "EnforcementConfig",
    "FaultConfig",
    "CandidateBudgetExceeded",
]


def _default_backend() -> str:
    """The default ``ParDis`` backend; ``REPRO_PARALLEL_BACKEND`` overrides.

    The environment hook lets the CI matrix run the whole suite under the
    multiprocess backend without touching any call site.
    """
    return os.environ.get("REPRO_PARALLEL_BACKEND", "serial")


def _default_fault_plan() -> Optional[str]:
    """The JSON fault plan from ``REPRO_FAULT_PLAN`` (``None`` when unset)."""
    return os.environ.get("REPRO_FAULT_PLAN") or None


def _default_fault() -> Optional["FaultConfig"]:
    """Supervision default: off, unless a chaos plan is in the environment.

    With ``REPRO_FAULT_PLAN`` set, every config grows a default
    :class:`FaultConfig` — the chaos CI job runs the whole differential
    suite under injected faults without touching any call site, exactly
    like the ``REPRO_PARALLEL_BACKEND`` hook.
    """
    return FaultConfig() if _default_fault_plan() is not None else None


@dataclass
class FaultConfig:
    """Supervision policy of the multiprocess execution backend.

    With a :class:`FaultConfig` attached (``DiscoveryConfig.fault`` /
    ``EnforcementConfig.fault``), every op submitted to a worker process is
    *supervised*: a deadline detects hung workers, ``BrokenProcessPool``
    detects dead ones, and a failed op is retried with exponential backoff
    after the worker is respawned and its **install log** replayed (the
    per-worker journal of state-mutating ops — installs, parked joins,
    lattice masks, Σ, enforcement tables — every op is a deterministic
    function of the index snapshot and that state, so replay reconstructs
    the worker exactly).  ``None`` (the default) keeps the unsupervised
    fast path byte-identical to earlier releases.

    Supervised backends disable worker-to-worker staging
    (``supports_staging``): staging segments are unlinked right after
    their superstep, so a journal could not replay them — rebalancing
    automatically takes the fetch-through-master route instead, which is
    fully replayable.  Results are identical either way.

    Attributes:
        op_timeout_s: per-op deadline in seconds; a worker that exceeds it
            is declared hung, killed and respawned (``None`` = no deadline,
            only crash detection).
        max_retries: attempts per op after the first failure; each retry
            waits ``backoff_base * 2**attempt`` seconds.
        backoff_base: first retry delay in seconds.
        max_respawns: worker respawns tolerated per worker slot before the
            degradation ladder ends (see ``degrade_to_serial``).
        degrade_to_serial: after ``max_respawns``, demote the worker slot
            to an in-process shard (journal-seeded) instead of failing the
            phase; recorded in ``LifecycleCounters.degraded_workers`` and
            announced by a single ``RuntimeWarning``.  ``False`` raises.
        fault_plan: JSON fault-injection plan shipped to the workers (see
            :class:`repro.parallel.faults.FaultPlan`); defaults to the
            ``REPRO_FAULT_PLAN`` environment variable.  Production configs
            leave this ``None`` — supervision without injection.
    """

    op_timeout_s: Optional[float] = 30.0
    max_retries: int = 2
    backoff_base: float = 0.05
    max_respawns: int = 2
    degrade_to_serial: bool = True
    fault_plan: Optional[str] = field(default_factory=_default_fault_plan)

    def __post_init__(self) -> None:
        if self.op_timeout_s is not None and self.op_timeout_s <= 0:
            raise ValueError("op_timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")


class CandidateBudgetExceeded(RuntimeError):
    """Raised when a run exceeds ``DiscoveryConfig.max_candidates``.

    Carries the counters accumulated so far so ablation benches can report
    how far an unpruned run got before giving up.
    """

    def __init__(self, candidates_checked: int, patterns_spawned: int) -> None:
        super().__init__(
            f"candidate budget exceeded: {candidates_checked} candidates "
            f"over {patterns_spawned} patterns"
        )
        self.candidates_checked = candidates_checked
        self.patterns_spawned = patterns_spawned


@dataclass
class DiscoveryConfig:
    """All parameters of GFD discovery.

    Attributes:
        k: bound on pattern variables ``|x̄|`` (k-bounded GFDs, Section 3).
        sigma: support threshold ``σ`` — a GFD is *frequent* when
            ``supp(φ, G) ≥ σ`` (Section 4.2).
        max_edges: bound on pattern edges (the generation-tree depth).  The
            paper iterates up to ``k²``; the default ``None`` uses ``k``,
            which covers all trees plus one cycle-closing edge and is the
            regime the experiments operate in.
        active_attributes: the attribute set ``Γ`` literals may use; ``None``
            selects the ``max_active_attributes`` most common attributes.
        max_active_attributes: size of the inferred ``Γ`` (paper: 5).
        max_constants: frequent values considered per ``(variable, attr)``
            column (paper: 5 most frequent values per attribute).
        max_lhs_size: cap ``J`` on ``|X|``; the paper's bound is
            ``i·|Γ|(|Γ|+1)`` which is far beyond what reduced GFDs reach —
            2 matches the rules its examples exhibit.
        variable_literals: mine ``x.A = y.B`` literals.
        variable_literals_same_attr_only: restrict variable literals to the
            same attribute on both sides (all paper examples have this form).
        mine_negative: run ``NVSpawn``/``NHSpawn`` for negative GFDs.
        max_negatives_per_pattern: cap on negative GFDs emitted per pattern
            (negatives are abundant; the cap keeps covers reviewable).
        speculative_closing_edges: let ``NVSpawn`` try frequent label-triples
            as closing edges even when no match witnesses them — this is how
            zero-match "illegal structure" patterns like ``φ3`` arise.
        enable_wildcards: spawn wildcard-labeled extension nodes when the
            endpoint labels of an extension are diverse (the paper's label
            upgrading); wildcards widen the search considerably.
        wildcard_min_labels: label diversity required to spawn a wildcard.
        max_matches_per_pattern: safety cap on stored matches; a pattern
            whose match count reaches the cap is *truncated* and becomes a
            leaf — it emits no GFDs (validity cannot be certified from a
            sample) and is not extended further.  Both engines apply the
            same rule (``ParDis`` enforces the cap per shard and combines
            the verdicts), so the discovered sets agree even when the cap
            binds, although the retained sample differs per engine.
        max_patterns_per_level: optional cap on spawned patterns per level.
        prune: apply the pruning strategies of Lemma 4 (``ParGFDn``
            disables this to reproduce the paper's infeasibility finding).
        minimality_filter: run the final pairwise ``≪``-minimality pass.
        min_literal_rows: a candidate literal must hold on at least this many
            rows of the match table to enter the alphabet.
        negative_literal_min_rows: the literal ``l''`` extending a base into
            a negative GFD must hold on at least this many rows *globally*
            in the pattern's table (``None`` = ``sigma``).  This keeps
            negatives meaningful: both the base and the conflicting literal
            are individually frequent, only their combination never occurs
            (e.g. the paper's Gold Bear / Gold Lion rule).
        max_candidates: abort with :class:`CandidateBudgetExceeded` once this
            many GFD candidates have been checked — how the benchmarks
            reproduce the paper's "ParGFDn / ParArab fail to complete"
            findings without actually exhausting memory.
        use_index: run matching, spawning and match-table construction
            against the graph's frozen CSR :class:`~repro.graph.index.
            GraphIndex` (vectorized hot paths).  Disabling falls back to the
            dict-adjacency reference implementation; results are identical
            (truncated patterns are leaves on both paths, so a binding
            ``max_matches_per_pattern`` no longer lets the paths diverge).
            The flag exists for equivalence testing and debugging; the
            multiprocess backend requires the index.
        parallel_backend: execution backend of ``ParDis`` — ``"serial"``
            runs the worker ops inline under the simulated cluster (exact
            historical semantics, no extra processes), ``"multiprocess"``
            runs them in real per-worker processes over shared-memory graph
            buffers, and ``"auto"`` lets the
            :class:`~repro.parallel.costs.PhaseCostPlanner` pick between
            them per phase from measured latencies (never slower than
            serial by construction).  Results are identical by construction
            (the differential harness asserts it).  Default ``"serial"``,
            or the ``REPRO_PARALLEL_BACKEND`` environment variable.
        num_workers: default worker count ``n`` for parallel runs when the
            engine call does not pass one (``None`` = the engine default, 4).
        shared_memory: ship the frozen index to multiprocess workers via
            ``multiprocessing.shared_memory`` (attach-once, zero-copy numpy
            views).  Disabling — or running on a platform without shared
            memory — falls back to pickling the buffers into each worker.
        direct_shipping: when a skewed join triggers rebalancing on the
            multiprocess backend, move whole pivot groups worker-to-worker
            through a shared-memory staging segment: the master plans the
            moves from per-group row *counts* and exchanges only manifests
            (pivot ids, offsets), never match rows.  Disabling — or running
            without shared memory — falls back to round-tripping the
            rebalanced shards through the master (the historical path).
            Either way the discovered set is identical; only the transfer
            route changes (``backend.transfers`` proves which route ran).
        sketch_support_prefilter: use an HLL-style distinct-pivot sketch as
            a cheap upper bound before exact support counting in the
            ``HSpawn`` alphabet prefilter.  Exact counting remains the
            source of truth for every emitted GFD; the sketch only skips
            exact counts for literals whose upper bound is already below
            ``σ``, so with the (default-off) flag enabled, results can
            differ only by the sketch's bounded overcount direction.
        sketch_precision: HLL precision ``p`` (``2^p`` registers).
        sketch_backend: name of the registered
            :class:`~repro.core.sketch.CardinalitySketch` estimator used by
            the prefilter (``"hll"`` — the default — or ``"exact"``; compact
            alternatives like UltraLogLog register via
            :func:`~repro.core.sketch.register_sketch`).
        fuse_ops: fuse the engines' per-pattern supersteps into per-level
            batches (all parents tally in one round, all novel children
            join and install in one round each, all verified patterns scan
            / advance their LHS lattices / probe negatives jointly) and let
            the backend ship each worker's whole batch as a single fused
            submission — one pickle round trip per worker per superstep
            instead of one per op.  Results are byte-identical with the
            flag off (the differential harness pins fused ≡ unfused);
            ``False`` restores the historical per-pattern rounds.
        planner_mp_min_size: the ``"auto"`` planner's crossover floor —
            with no multiprocess timings observed yet for a phase, inputs
            below this many items stay serial (the round-trip constant
            factor is known to dominate there); see
            :class:`~repro.parallel.costs.PhaseCostPlanner`.
        fault: supervision policy of the multiprocess backend (timeouts,
            retry/respawn budgets, the degradation ladder) — see
            :class:`FaultConfig`.  ``None`` (the default) disables
            supervision; setting ``REPRO_FAULT_PLAN`` enables it with an
            injected chaos plan.
    """

    k: int = 3
    sigma: int = 10
    max_edges: Optional[int] = None
    active_attributes: Optional[List[str]] = None
    max_active_attributes: int = 5
    max_constants: int = 5
    max_lhs_size: int = 2
    variable_literals: bool = True
    variable_literals_same_attr_only: bool = True
    mine_negative: bool = True
    max_negatives_per_pattern: int = 20
    speculative_closing_edges: bool = True
    enable_wildcards: bool = False
    wildcard_min_labels: int = 3
    max_matches_per_pattern: Optional[int] = 500_000
    max_patterns_per_level: Optional[int] = None
    prune: bool = True
    minimality_filter: bool = True
    min_literal_rows: int = 1
    negative_literal_min_rows: Optional[int] = None
    max_candidates: Optional[int] = None
    use_index: bool = True
    parallel_backend: str = field(default_factory=_default_backend)
    num_workers: Optional[int] = None
    shared_memory: bool = True
    direct_shipping: bool = True
    sketch_support_prefilter: bool = False
    sketch_precision: int = 12
    sketch_backend: str = "hll"
    fuse_ops: bool = True
    planner_mp_min_size: int = 50_000
    fault: Optional[FaultConfig] = field(default_factory=_default_fault)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.sigma < 1:
            raise ValueError("sigma must be >= 1")
        if self.max_lhs_size < 0:
            raise ValueError("max_lhs_size must be >= 0")
        if self.parallel_backend not in ("serial", "multiprocess", "auto"):
            raise ValueError(
                "parallel_backend must be 'serial', 'multiprocess' or "
                f"'auto', got {self.parallel_backend!r}"
            )
        if self.planner_mp_min_size < 0:
            raise ValueError("planner_mp_min_size must be >= 0")
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")

    @property
    def edge_budget(self) -> int:
        """The pattern-edge bound actually used (``max_edges`` or ``k``)."""
        return self.max_edges if self.max_edges is not None else self.k


@dataclass
class EnforcementConfig:
    """Parameters of the rule *enforcement* engine (:mod:`repro.enforce`).

    Enforcement is the consumer side of discovery: a fixed rule set ``Σ``
    is validated against a live graph, repeatedly.  The knobs mirror the
    discovery ones where the machinery is shared (backend, workers, shared
    memory, index) and add the delta-maintenance and reporting policies.

    Attributes:
        backend: evaluation backend — ``"serial"`` evaluates the compiled
            plan inline on ``num_workers`` in-process shards,
            ``"multiprocess"`` on real per-worker processes attaching the
            frozen graph index via shared memory (PR 2 machinery).  The
            ``REPRO_PARALLEL_BACKEND`` environment variable sets the
            default, exactly as for discovery.
        num_workers: evaluation shards (``None`` = 1 for serial, 4 for
            multiprocess — serial sharding exists for differential testing,
            not speed).
        shared_memory: ship the index to multiprocess workers via
            ``multiprocessing.shared_memory`` (else pickle).
        use_index: evaluate against the frozen CSR index (the fast path).
            Disabling falls back to the dict-graph reference tables;
            results are identical.  The multiprocess backend requires the
            index.
        persistent_tables: keep each pattern group's match shard (and its
            per-rule violation masks) *resident in the workers* across
            validation passes.  A full pass installs the shards once; an
            incremental :meth:`~repro.enforce.engine.EnforcementEngine.
            refresh` then ships only the affected-pivot ball (node ids) and
            each shard's slice of the re-derived matches — kept rows and
            their cached masks never travel again, and a clean refresh
            ships nothing at all (``backend.transfers`` proves it).
            Disabling reverts to install/evaluate/drop every pass (the
            PR 3 behavior); reports are identical either way.
        max_delta_fraction: on :meth:`~repro.enforce.engine.
            EnforcementEngine.refresh`, fall back to full revalidation when
            more than this fraction of the graph's nodes was touched since
            the last validation — localized re-matching only pays while the
            delta is small.
        max_violations_per_rule: per-rule cap on the violating *rows* each
            worker materializes and returns (``None`` — the default — keeps
            the exact behavior).  The ``CandidateBudget`` of the serving
            side: an adversarial negative rule whose violation set is the
            whole match table then degrades gracefully — violation *counts*
            (and therefore :attr:`~repro.enforce.engine.EnforcementReport.
            is_clean`) stay exact, computed from mask popcounts, but the
            reported node sets, samples and distinct-pivot figures cover
            only the retained rows and the rule report is flagged
            ``witnesses_truncated``.  When the cap binds, the retained
            subset depends on shard boundaries (order independence cannot
            be had without materializing everything — the very cost the cap
            avoids).
        max_violation_samples: violating matches retained per rule in the
            report (``None`` = all).  When the cap binds, the retained
            subset is a seeded uniform sample over the lexicographically
            sorted violation set — deterministic and independent of match
            enumeration order, worker count and backend.
        sample_seed: RNG seed of that capped sample.
        sketch_cardinality: report each rule's distinct violating pivots
            as a sketch *upper bound* (cf. the support prefilter)
            instead of the exact distinct count — O(1) memory per rule on
            huge violation sets; counts and node sets stay exact.
        sketch_backend: registered cardinality estimator used when
            ``sketch_cardinality`` is on (default ``"hll"``).
        fault: supervision policy of the multiprocess backend (see
            :class:`FaultConfig`); ``None`` disables supervision.
    """

    backend: str = field(default_factory=_default_backend)
    num_workers: Optional[int] = None
    shared_memory: bool = True
    use_index: bool = True
    persistent_tables: bool = True
    max_delta_fraction: float = 0.25
    max_violations_per_rule: Optional[int] = None
    max_violation_samples: Optional[int] = 10
    sample_seed: int = 0
    sketch_cardinality: bool = False
    sketch_backend: str = "hll"
    fault: Optional[FaultConfig] = field(default_factory=_default_fault)

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "multiprocess"):
            raise ValueError(
                "backend must be 'serial' or 'multiprocess', "
                f"got {self.backend!r}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 <= self.max_delta_fraction <= 1.0:
            raise ValueError("max_delta_fraction must be a fraction in [0, 1]")
        if self.max_violation_samples is not None and self.max_violation_samples < 0:
            raise ValueError("max_violation_samples must be >= 0")
        if self.max_violations_per_rule is not None and self.max_violations_per_rule < 1:
            raise ValueError("max_violations_per_rule must be >= 1")
        if self.backend == "multiprocess" and not self.use_index:
            raise ValueError("the multiprocess backend requires use_index=True")

    @property
    def resolved_workers(self) -> int:
        """The worker count actually used."""
        if self.num_workers is not None:
            return self.num_workers
        return 4 if self.backend == "multiprocess" else 1
