"""``SeqCover`` — sequential cover computation (Section 5.2).

A *cover* ``Σ_c ⊆ Σ`` satisfies: ``G ⊨ Σ_c``, ``Σ_c ≡ Σ``, all GFDs minimum,
and ``Σ_c`` minimal (no member implied by the others).  Following the
classical relational procedure (and the paper's SeqCover): repeatedly test
``Σ \\ {φ} ⊨ φ`` via the closure characterization and drop redundant GFDs
until a fixpoint.  The scan order is deterministic (larger GFDs first, so
the cover prefers small general rules over large specific ones).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..gfd.gfd import GFD
from ..gfd.implication import ImplicationChecker

__all__ = ["CoverResult", "sequential_cover"]


@dataclass
class CoverResult:
    """Outcome of a cover computation."""

    cover: List[GFD]
    removed: List[GFD] = field(default_factory=list)
    implication_tests: int = 0
    elapsed_seconds: float = 0.0

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the input eliminated as redundant."""
        total = len(self.cover) + len(self.removed)
        return len(self.removed) / total if total else 0.0


def _scan_order(sigma: Sequence[GFD]) -> List[int]:
    """Indices ordered so the most specific GFDs are tested (dropped) first."""
    return sorted(
        range(len(sigma)),
        key=lambda index: (
            -sigma[index].pattern.num_edges,
            -len(sigma[index].lhs),
            str(sigma[index]),
        ),
    )


def sequential_cover(sigma: Sequence[GFD]) -> CoverResult:
    """Compute a cover of ``Σ`` by leave-one-out implication testing.

    The procedure is sound for any order because implication is monotone in
    ``Σ``: once ``Σ' ⊨ φ`` with ``Σ' ⊆ Σ \\ {φ}``, removing other redundant
    GFDs later keeps a derivation as long as removal is always justified
    against the *current* remainder — which is what the loop tests.
    """
    started = time.perf_counter()
    sigma = list(sigma)
    alive = [True] * len(sigma)
    tests = 0
    removed: List[GFD] = []
    for index in _scan_order(sigma):
        remainder = [
            gfd for position, gfd in enumerate(sigma)
            if alive[position] and position != index
        ]
        checker = ImplicationChecker(remainder)
        tests += 1
        if checker.implies(sigma[index]):
            alive[index] = False
            removed.append(sigma[index])
    cover = [gfd for position, gfd in enumerate(sigma) if alive[position]]
    return CoverResult(
        cover=cover,
        removed=removed,
        implication_tests=tests,
        elapsed_seconds=time.perf_counter() - started,
    )
