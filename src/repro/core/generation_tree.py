"""The GFD generation tree (Section 5.1, Figure 2).

The tree controls candidate generation: level ``i`` holds one node per
(isomorphism class of) pattern with ``i`` edges; a node stores the pattern,
its verified matches (as a :class:`~repro.core.match_table.MatchTable`), its
support ``|Q(G, z)|``, the parent set ``P(Q)`` (Section 5.1's bookkeeping
used later by ``ParCover`` grouping), and the literal-mining state:

* ``valid_pairs`` — the ``(X, l)`` dependencies verified to hold at this
  pattern (used by Lemma 4(b) and pattern-reduction pruning), and
* ``covered`` — pairs already valid at an ancestor pattern, which must not
  be re-emitted here (they would not be *pattern-reduced*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..gfd.literals import Literal
from ..pattern.canonical import CanonicalKey, canonical_key
from ..pattern.pattern import Pattern
from .match_table import MatchTable

__all__ = ["TreeNode", "GenerationTree", "DependencyPair"]

#: A dependency at a pattern: (LHS literal set, RHS literal).
DependencyPair = Tuple[FrozenSet[Literal], Literal]


@dataclass
class TreeNode:
    """One pattern in the generation tree."""

    pattern: Pattern
    key: CanonicalKey
    level: int
    table: Optional[MatchTable] = None
    support: int = 0
    parents: List["TreeNode"] = field(default_factory=list)
    valid_pairs: Set[DependencyPair] = field(default_factory=set)
    covered: Set[DependencyPair] = field(default_factory=set)
    exhausted: bool = False

    @property
    def frequent(self) -> bool:
        """Whether the pattern itself clears zero support (has matches)."""
        return self.support > 0

    def ancestors(self) -> List["TreeNode"]:
        """All transitive parents (without duplicates), nearest first."""
        seen: Set[int] = set()
        ordered: List[TreeNode] = []
        frontier = list(self.parents)
        while frontier:
            node = frontier.pop(0)
            if id(node) in seen:
                continue
            seen.add(id(node))
            ordered.append(node)
            frontier.extend(node.parents)
        return ordered


class GenerationTree:
    """Levelwise container of :class:`TreeNode`, deduplicated by canonical key.

    Levels are indexed by pattern size (number of edges).
    """

    def __init__(self) -> None:
        self._levels: List[List[TreeNode]] = []
        self._by_key: Dict[CanonicalKey, TreeNode] = {}

    # ------------------------------------------------------------------
    def level(self, index: int) -> List[TreeNode]:
        """The nodes at level ``index`` (empty list when absent)."""
        if index < len(self._levels):
            return self._levels[index]
        return []

    @property
    def num_levels(self) -> int:
        """Number of populated levels."""
        return len(self._levels)

    def all_nodes(self) -> List[TreeNode]:
        """Every node, level by level."""
        return [node for level in self._levels for node in level]

    def find(self, pattern: Pattern) -> Optional[TreeNode]:
        """The node for ``pattern``'s isomorphism class, if spawned."""
        return self._by_key.get(canonical_key(pattern))

    # ------------------------------------------------------------------
    def add(
        self,
        pattern: Pattern,
        level: int,
        parent: Optional[TreeNode] = None,
    ) -> Tuple[TreeNode, bool]:
        """Insert ``pattern`` at ``level`` or merge into its iso class.

        Returns ``(node, created)``.  When an isomorphic node already exists
        (``iso(Q)`` of Section 5.1), the parent link is merged into ``P(Q)``
        and no new node is created.
        """
        key = canonical_key(pattern)
        node = self._by_key.get(key)
        if node is not None:
            if parent is not None and parent not in node.parents:
                node.parents.append(parent)
            return node, False
        node = TreeNode(pattern=pattern, key=key, level=level)
        if parent is not None:
            node.parents.append(parent)
            # inherit pattern-reduction knowledge along the primary parent;
            # literal indices carry over because extensions preserve the
            # parent's variable numbering.
            node.covered = set(parent.covered) | set(parent.valid_pairs)
        while len(self._levels) <= level:
            self._levels.append([])
        self._levels[level].append(node)
        self._by_key[key] = node
        return node, True

    def __len__(self) -> int:
        return len(self._by_key)
