"""Columnar match tables — the bridge between pattern and FD mining.

The paper's key algorithmic idea is to run pattern mining and dependency
mining *in a single process* (Section 5.1).  Once the matches of a pattern
``Q`` are known, checking a dependency ``X → l`` is relational work: treat
every match ``h(x̄)`` as a row, every pair ``(variable, attribute)`` as a
column, and evaluate literals column-wise.  :class:`MatchTable` materializes
exactly that relation, restricted to the *active attributes* ``Γ``
(Section 4.3), and supports

* literal evaluation over row-index subsets (``HSpawn``'s inner loop),
* distinct-pivot counting (the support ``|Q(G, Xl, z)|``), and
* candidate-literal generation (frequent constants per column, compatible
  column pairs for variable literals).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..graph.graph import Graph
from ..graph.index import MISSING, GraphIndex
from ..gfd.literals import (
    ConstantLiteral,
    FalseLiteral,
    Literal,
    VariableLiteral,
    make_variable_literal,
)
from ..pattern.matcher import Match
from ..pattern.pattern import Pattern

__all__ = [
    "MatchTable",
    "MISSING",
    "merge_value_counts",
    "merge_agreement_counts",
    "constant_literals_from_counts",
    "variable_literals_from_counts",
]


class MatchTable:
    """The matches of one pattern as a columnar relation.

    Args:
        graph: the data graph (attribute source).
        pattern: the matched pattern.
        matches: the match tuples (graph node per variable) — or, with
            ``index``, optionally an ``(N, num_vars)`` int64 array.
        attributes: the active attributes ``Γ`` whose columns to materialize.
        truncated: set when ``matches`` is a capped subset — validity
            judgements must not be made from a truncated table.
        index: a frozen :class:`~repro.graph.index.GraphIndex` of ``graph``;
            when given, columns are gathered from the index's columnar
            attribute codes (one fancy-indexing per column) instead of the
            per-row ``get_attr`` loop, and raw-value columns materialize
            lazily by decoding.
    """

    def __init__(
        self,
        graph: Graph,
        pattern: Pattern,
        matches: Union[Sequence[Match], np.ndarray],
        attributes: Sequence[str],
        truncated: bool = False,
        index: Optional[GraphIndex] = None,
    ) -> None:
        self.graph = graph
        self.pattern = pattern
        self.index = index
        self.attributes = list(attributes)
        self.truncated = truncated
        # rows are kept sorted by pivot so distinct-pivot counting over a
        # mask is a run count instead of a sort (stable: preserves relative
        # order within a pivot).
        pivot_var = pattern.pivot
        # columns are kept twice: raw Python values (for counters and
        # candidate generation) and factorized integer codes (for literal
        # masks — a C-speed vector compare instead of a per-row loop).
        # Code 0 is reserved for MISSING; values share one code space (per
        # table without an index, graph-global with one) so variable
        # literals compare codes directly.
        self._columns: Dict[Tuple[int, str], List[Any]] = {}
        self._codes: Dict[Tuple[int, str], np.ndarray] = {}
        if index is not None:
            if isinstance(matches, np.ndarray):
                array = matches.reshape(-1, pattern.num_nodes)
            elif len(matches):
                array = np.asarray(matches, dtype=np.int64)
            else:
                array = np.empty((0, pattern.num_nodes), dtype=np.int64)
            order = np.argsort(array[:, pivot_var], kind="stable")
            array = np.ascontiguousarray(array[order])
            self._match_array: Optional[np.ndarray] = array
            self._matches: Optional[List[Match]] = None
            self._pivot_array = array[:, pivot_var]
            self._value_codes: Dict[Any, int] = index.code_of_value
            num_rows = array.shape[0]
            for variable in pattern.variables():
                nodes = array[:, variable]
                for attr in self.attributes:
                    column_codes = index.attr_code_array(attr)
                    self._codes[(variable, attr)] = (
                        column_codes[nodes]
                        if column_codes is not None
                        else np.zeros(num_rows, dtype=np.int64)
                    )
        else:
            self._matches = sorted(matches, key=lambda match: match[pivot_var])
            self._match_array = None
            self._pivot_array = np.asarray(
                [match[pivot_var] for match in self._matches], dtype=np.int64
            )
            self._value_codes = {}
            num_rows = len(self._matches)
            for variable in pattern.variables():
                for attr in self.attributes:
                    column = [
                        graph.get_attr(match[variable], attr, MISSING)
                        for match in self._matches
                    ]
                    self._columns[(variable, attr)] = column
                    self._codes[(variable, attr)] = self._encode(column)
        self._num_rows = num_rows
        self._pivots_list: Optional[List[int]] = None
        # lazily-computed row sets per literal: the lattice search reduces to
        # numpy boolean-mask operations instead of per-row Python loops.
        if num_rows > 1:
            boundary = np.empty(num_rows, dtype=bool)
            boundary[0] = True
            boundary[1:] = self._pivot_array[1:] != self._pivot_array[:-1]
            self._pivot_run_starts = np.flatnonzero(boundary)
        else:
            self._pivot_run_starts = np.zeros(
                1 if num_rows else 0, dtype=np.int64
            )
        self._full_mask = np.ones(num_rows, dtype=bool)
        self._literal_masks: Dict[Literal, np.ndarray] = {}
        self._literal_rows: Dict[Literal, frozenset] = {}
        self._literal_pivots: Dict[Literal, frozenset] = {}
        #: literal-mask cache audit: (hits, misses) over the table lifetime.
        self.mask_cache_hits = 0
        self.mask_cache_misses = 0

    @classmethod
    def from_index(
        cls,
        index: GraphIndex,
        pattern: Pattern,
        matches: Union[Sequence[Match], np.ndarray],
        attributes: Sequence[str],
        truncated: bool = False,
    ) -> "MatchTable":
        """Fast constructor: columns gathered from a frozen graph index."""
        return cls(
            index.graph, pattern, matches, attributes,
            truncated=truncated, index=index,
        )

    # ------------------------------------------------------------------
    @property
    def matches(self) -> List[Match]:
        """The pivot-sorted match tuples (materialized lazily on the index path)."""
        if self._matches is None:
            self._matches = [tuple(row) for row in self._match_array.tolist()]
        return self._matches

    @property
    def match_array(self) -> np.ndarray:
        """The pivot-sorted matches as an ``(N, num_vars)`` int64 array."""
        if self._match_array is None:
            if self._matches:
                self._match_array = np.asarray(self._matches, dtype=np.int64)
            else:
                self._match_array = np.empty(
                    (0, self.pattern.num_nodes), dtype=np.int64
                )
        return self._match_array

    @property
    def _pivots(self) -> List[int]:
        """The per-row pivot nodes as a plain list (lazy)."""
        if self._pivots_list is None:
            self._pivots_list = self._pivot_array.tolist()
        return self._pivots_list

    @property
    def num_rows(self) -> int:
        """Number of matches in the table."""
        return self._num_rows

    def all_rows(self) -> List[int]:
        """Every row index."""
        return list(range(self._num_rows))

    def column(self, variable: int, attr: str) -> List[Any]:
        """The value column for ``(variable, attr)`` (``MISSING`` sentinel)."""
        cached = self._columns.get((variable, attr))
        if cached is None:
            cached = self.index.decode_values(self._codes[(variable, attr)])
            self._columns[(variable, attr)] = cached
        return cached

    def pivot_of(self, row: int) -> int:
        """The pivot's graph node at ``row``."""
        return int(self._pivot_array[row])

    def distinct_pivots(self, rows: Iterable[int]) -> Set[int]:
        """``{h(z) | row ∈ rows}`` — the support set of a row subset."""
        pivots = self._pivots
        return {pivots[row] for row in rows}

    def support(self, rows: Iterable[int]) -> int:
        """Number of distinct pivots over ``rows``."""
        return len(self.distinct_pivots(rows))

    # ------------------------------------------------------------------
    # literal evaluation
    # ------------------------------------------------------------------
    def _encode(self, column: List[Any]) -> np.ndarray:
        """Factorize a value column into integer codes (0 = MISSING)."""
        codes = np.empty(len(column), dtype=np.int64)
        value_codes = self._value_codes
        for row, cell in enumerate(column):
            if cell is MISSING:
                codes[row] = 0
                continue
            code = value_codes.get(cell)
            if code is None:
                code = len(value_codes) + 1
                value_codes[cell] = code
            codes[row] = code
        return codes

    # -- numpy mask interface (the discovery hot loop) -----------------
    def full_mask(self) -> np.ndarray:
        """A boolean mask selecting every row (do not mutate)."""
        return self._full_mask

    def literal_mask(self, literal: Literal) -> np.ndarray:
        """Boolean row mask of ``literal`` (cached; do not mutate).

        Missing attributes never satisfy a literal (Section 2.2 semantics):
        code 0 (MISSING) never equals a value code, and two MISSING cells
        are explicitly excluded from variable-literal equality.
        """
        cached = self._literal_masks.get(literal)
        if cached is not None:
            self.mask_cache_hits += 1
            return cached
        self.mask_cache_misses += 1
        if isinstance(literal, ConstantLiteral):
            codes = self._codes[(literal.var, literal.attr)]
            wanted = self._value_codes.get(literal.value, -1)
            mask = codes == wanted
        else:
            assert isinstance(literal, VariableLiteral)
            codes1 = self._codes[(literal.var1, literal.attr1)]
            codes2 = self._codes[(literal.var2, literal.attr2)]
            mask = (codes1 == codes2) & (codes1 != 0)
        self._literal_masks[literal] = mask
        return mask

    def violation_mask(
        self,
        lhs: Iterable[Literal],
        rhs: Optional[Literal],
    ) -> np.ndarray:
        """Rows violating ``X → l``: ``h ⊨ X`` but ``h ⊭ l`` (Section 2.2).

        ``rhs`` is the single RHS literal of a normal-form GFD; ``None`` or
        a :class:`FalseLiteral` selects the negative semantics, where every
        row satisfying ``X`` is a violation.  Missing attributes follow the
        literal-mask rules: a missing LHS attribute satisfies the
        implication vacuously (the row drops out of the LHS mask), a
        missing RHS attribute fails the RHS.  The result may alias cached
        masks for degenerate literal sets — do not mutate.
        """
        mask: Optional[np.ndarray] = None
        for literal in lhs:
            current = self.literal_mask(literal)
            mask = current if mask is None else mask & current
        if rhs is None or isinstance(rhs, FalseLiteral):
            return mask if mask is not None else self._full_mask
        rhs_mask = self.literal_mask(rhs)
        return ~rhs_mask if mask is None else mask & ~rhs_mask

    def literal_count(self, literal: Literal) -> int:
        """Number of rows satisfying ``literal``."""
        return int(np.count_nonzero(self.literal_mask(literal)))

    @staticmethod
    def mask_count(mask: np.ndarray) -> int:
        """Number of selected rows."""
        return int(np.count_nonzero(mask))

    def mask_support(self, mask: np.ndarray) -> int:
        """Distinct pivots over the selected rows (``|Q(G, ·, z)|``).

        Rows are pivot-sorted, so the distinct count is the number of value
        runs in the selection — no sort needed.
        """
        codes = self._pivot_array[mask]
        if codes.size == 0:
            return 0
        return int(np.count_nonzero(codes[1:] != codes[:-1])) + 1

    def mask_pivot_values(self, mask: np.ndarray) -> np.ndarray:
        """The (non-distinct) pivot nodes of the selected rows.

        Feeds sketch-based distinct estimation without exposing the
        table's internal pivot layout to callers.
        """
        return self._pivot_array[mask]

    def sketch_support_bound(
        self,
        mask: np.ndarray,
        precision: int = 12,
        z: float = 3.0,
        kind: str = "hll",
    ) -> int:
        """A probable *upper bound* on :meth:`mask_support` via a sketch.

        Cheap pre-filter companion to the exact run count: a bound below a
        threshold proves (with sketch confidence ``z``) the support is too,
        while anything at or above it still needs :meth:`mask_support`.
        ``kind`` selects a registered cardinality estimator (default HLL).
        """
        from .support import sketch_distinct_upper_bound

        return sketch_distinct_upper_bound(
            self._pivot_array[mask], precision, z, kind=kind
        )

    def stack_supports(self, stack: np.ndarray) -> np.ndarray:
        """Distinct-pivot counts per row of a 2-D boolean mask stack.

        Vectorized over the whole stack: rows are pivot-sorted, so a pivot
        contributes when any of its run's positions is selected —
        ``reduceat`` over the precomputed run starts.
        """
        if stack.shape[1] == 0 or self._pivot_run_starts.size == 0:
            return np.zeros(stack.shape[0], dtype=np.int64)
        group_any = np.add.reduceat(stack, self._pivot_run_starts, axis=1) > 0
        return group_any.sum(axis=1)

    def mask_pivot_set(self, mask: np.ndarray) -> frozenset:
        """The distinct pivot node ids over the selected rows."""
        if not mask.any():
            return frozenset()
        return frozenset(np.unique(self._pivot_array[mask]).tolist())

    def literal_rows(self, literal: Literal) -> frozenset:
        """All rows satisfying ``literal`` (cached)."""
        cached = self._literal_rows.get(literal)
        if cached is None:
            cached = frozenset(np.flatnonzero(self.literal_mask(literal)).tolist())
            self._literal_rows[literal] = cached
        return cached

    def literal_pivots(self, literal: Literal) -> frozenset:
        """Distinct pivots over :meth:`literal_rows` (cached).

        ``|literal_pivots(l)|`` bounds the support of every GFD whose LHS or
        RHS contains ``l`` at this pattern — the alphabet prefilter of the
        discovery algorithms.
        """
        cached = self._literal_pivots.get(literal)
        if cached is None:
            pivots = self._pivots
            cached = frozenset(pivots[row] for row in self.literal_rows(literal))
            self._literal_pivots[literal] = cached
        return cached

    def rows_satisfying(self, literal: Literal, rows: Iterable[int]) -> Set[int]:
        """Filter ``rows`` down to those whose match satisfies ``literal``."""
        if not isinstance(rows, (set, frozenset)):
            rows = set(rows)
        return rows & self.literal_rows(literal)

    def rows_satisfying_all(
        self, literals: Iterable[Literal], rows: Optional[Iterable[int]] = None
    ) -> Set[int]:
        """Rows satisfying every literal of ``literals``."""
        current: Set[int] = set(rows) if rows is not None else set(self.all_rows())
        for literal in literals:
            current = self.rows_satisfying(literal, current)
            if not current:
                break
        return current

    # ------------------------------------------------------------------
    # candidate literals (HSpawn's alphabet)
    # ------------------------------------------------------------------
    def constant_value_counts(self) -> Dict[Tuple[int, str], Counter]:
        """Per-column value frequencies (mergeable across match shards).

        Computed by a ``np.unique`` group-by over the code column and a
        decode of the (few) distinct codes — never a per-row Python loop.
        """
        counts: Dict[Tuple[int, str], Counter] = {}
        decode = (
            self.index.value_of_code if self.index is not None else None
        )
        if decode is None:
            # per-table code space: invert the interning dict once
            decode = [MISSING] * (len(self._value_codes) + 1)
            for value, code in self._value_codes.items():
                decode[code] = value
        for key, codes in self._codes.items():
            counter: Counter = Counter()
            if codes.size:
                present = codes[codes != 0]
                if present.size:
                    values, tallies = np.unique(present, return_counts=True)
                    for code, tally in zip(values.tolist(), tallies.tolist()):
                        counter[decode[code]] = tally
            counts[key] = counter
        return counts

    def variable_agreement_counts(
        self, same_attr_only: bool = True
    ) -> Dict[Tuple[int, str, int, str], int]:
        """Per column pair: rows on which both columns agree (mergeable).

        Agreement is a vectorized code compare: codes share one space per
        table (or graph-globally with an index), so value equality is code
        equality, and code 0 (MISSING) never agrees.
        """
        counts: Dict[Tuple[int, str, int, str], int] = {}
        keys = sorted(self._codes)
        for index, (var1, attr1) in enumerate(keys):
            for var2, attr2 in keys[index + 1:]:
                if var1 == var2:
                    continue
                if same_attr_only and attr1 != attr2:
                    continue
                codes1 = self._codes[(var1, attr1)]
                codes2 = self._codes[(var2, attr2)]
                agreeing = int(
                    np.count_nonzero((codes1 == codes2) & (codes1 != 0))
                )
                counts[(var1, attr1, var2, attr2)] = agreeing
        return counts

    def candidate_constant_literals(
        self, max_constants: int, min_rows: int = 1
    ) -> List[ConstantLiteral]:
        """Frequent constant literals per column.

        For each ``(variable, attr)`` column, the ``max_constants`` most
        frequent present values occurring in at least ``min_rows`` rows —
        the paper's "5 most frequent values" protocol (Section 7).
        """
        return constant_literals_from_counts(
            self.constant_value_counts(), max_constants, min_rows
        )

    def candidate_variable_literals(
        self, same_attr_only: bool = True, min_rows: int = 1
    ) -> List[VariableLiteral]:
        """Variable literals ``x.A = y.B`` over distinct variables.

        Only pairs agreeing on at least ``min_rows`` rows are candidates;
        ``same_attr_only`` restricts to ``A = B`` (the common case in the
        paper's examples, e.g. ``y.name = z.name``).
        """
        return variable_literals_from_counts(
            self.variable_agreement_counts(same_attr_only), min_rows
        )


def merge_value_counts(
    parts: Iterable[Dict[Tuple[int, str], Counter]],
) -> Dict[Tuple[int, str], Counter]:
    """Combine per-shard column value counts (``ParDis`` master aggregation)."""
    merged: Dict[Tuple[int, str], Counter] = {}
    for part in parts:
        for key, counter in part.items():
            if key in merged:
                merged[key].update(counter)
            else:
                merged[key] = Counter(counter)
    return merged


def merge_agreement_counts(
    parts: Iterable[Dict[Tuple[int, str, int, str], int]],
) -> Dict[Tuple[int, str, int, str], int]:
    """Combine per-shard column-pair agreement counts."""
    merged: Dict[Tuple[int, str, int, str], int] = {}
    for part in parts:
        for key, count in part.items():
            merged[key] = merged.get(key, 0) + count
    return merged


def constant_literals_from_counts(
    counts: Dict[Tuple[int, str], Counter], max_constants: int, min_rows: int
) -> List[ConstantLiteral]:
    """Build the constant-literal alphabet from (merged) value counts.

    Ranking is deterministic: by descending count, then value text — the
    sequential and distributed paths therefore produce identical alphabets.
    """
    import heapq

    literals: List[ConstantLiteral] = []
    for (variable, attr) in sorted(counts):
        counter = counts[(variable, attr)]
        if len(counter) > max_constants:
            # narrow to values at or above the k-th largest count before
            # paying the str() tie-break key on every value
            threshold = heapq.nlargest(max_constants, counter.values())[-1]
            pool = [kv for kv in counter.items() if kv[1] >= threshold]
        else:
            pool = list(counter.items())
        ranked = sorted(pool, key=lambda kv: (-kv[1], str(kv[0])))
        for value, count in ranked[:max_constants]:
            if count >= min_rows:
                literals.append(ConstantLiteral(variable, attr, value))
    return literals


def variable_literals_from_counts(
    counts: Dict[Tuple[int, str, int, str], int], min_rows: int
) -> List[VariableLiteral]:
    """Build the variable-literal alphabet from (merged) agreement counts."""
    literals: List[VariableLiteral] = []
    for (var1, attr1, var2, attr2) in sorted(counts):
        if counts[(var1, attr1, var2, attr2)] >= min_rows:
            literals.append(make_variable_literal(var1, attr1, var2, attr2))
    return literals
