"""The GFD ordering ``≪`` and minimality (Section 4.1).

``φ1 ≪ φ2`` when an isomorphism ``f`` from ``Q1`` onto a subgraph of ``Q2``
exists with (a) ``f`` preserving pivots, (b) ``f(X1) ⊆ X2`` and
``f(l1) = l2``, and (c) either ``Q1`` properly reduces ``Q2`` (fewer
nodes/edges, or a label strictly upgraded to wildcard) or ``f(X1) ⊊ X2``.
A GFD is *reduced* in ``G`` when no ``≪``-smaller GFD holds in ``G``, and
*minimum* when additionally nontrivial.

The discovery engine prunes most non-reduced candidates levelwise (Lemma 4);
:func:`minimal_cover_by_reduction` is the final safety net that removes any
surviving ``≪``-comparable pairs and exact duplicates (via the canonical
form of :func:`normalize_gfd`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..gfd.gfd import GFD
from ..gfd.literals import FalseLiteral, Literal, rename_literal
from ..pattern.canonical import canonical_key, canonical_ordering
from ..pattern.embedding import cached_embeddings
from ..pattern.pattern import WILDCARD, Pattern

__all__ = ["gfd_reduces", "normalize_gfd", "gfd_identity", "minimal_cover_by_reduction"]


def _strict_topological(inner: Pattern, outer: Pattern, mapping: Tuple[int, ...]) -> bool:
    """Whether ``inner ≪ outer`` *properly* through ``mapping``.

    Proper: fewer nodes, fewer edges, or at least one node/edge label of
    ``outer`` strictly upgraded to wildcard in ``inner``.
    """
    if inner.num_nodes < outer.num_nodes or inner.num_edges < outer.num_edges:
        return True
    for variable in inner.variables():
        if (
            inner.labels[variable] == WILDCARD
            and outer.labels[mapping[variable]] != WILDCARD
        ):
            return True
    outer_edges = {}
    for edge in outer.edges:
        outer_edges.setdefault((edge.src, edge.dst), set()).add(edge.label)
    for edge in inner.edges:
        if edge.label == WILDCARD:
            pair = (mapping[edge.src], mapping[edge.dst])
            if any(label != WILDCARD for label in outer_edges.get(pair, ())):
                return True
    return False


def gfd_reduces(smaller: GFD, larger: GFD) -> bool:
    """``smaller ≪ larger`` — the reduction ordering on GFDs.

    Both positive and negative GFDs are supported; ``f(l1) = l2`` holds for
    negatives exactly when both RHS are ``false``.
    """
    if isinstance(smaller.rhs, FalseLiteral) != isinstance(larger.rhs, FalseLiteral):
        return False
    for mapping in cached_embeddings(
        smaller.pattern, larger.pattern, pivot_preserving=True
    ):
        mapped_lhs = frozenset(rename_literal(l, mapping) for l in smaller.lhs)
        if not mapped_lhs <= larger.lhs:
            continue
        if not isinstance(smaller.rhs, FalseLiteral):
            if rename_literal(smaller.rhs, mapping) != larger.rhs:
                continue
        if _strict_topological(smaller.pattern, larger.pattern, mapping):
            return True
        if mapped_lhs < larger.lhs:
            return True
    return False


def normalize_gfd(gfd: GFD) -> GFD:
    """The GFD rewritten over its pattern's canonical variable ordering.

    Two GFDs that differ only by a pivot-preserving renaming of variables
    normalize to equal objects — the duplicate test used across spawn paths.
    """
    ordering = canonical_ordering(gfd.pattern)
    position = {old: new for new, old in enumerate(ordering)}
    pattern = Pattern(
        [gfd.pattern.labels[old] for old in ordering],
        sorted(
            (position[e.src], position[e.dst], e.label) for e in gfd.pattern.edges
        ),
        pivot=position[gfd.pattern.pivot],
    )
    lhs = frozenset(rename_literal(l, position) for l in gfd.lhs)
    rhs = rename_literal(gfd.rhs, position)
    return GFD(pattern, lhs, rhs)


def gfd_identity(gfd: GFD) -> Tuple:
    """A hashable identity key: equal iff the normalized GFDs are equal."""
    normalized = normalize_gfd(gfd)
    return (
        canonical_key(normalized.pattern),
        normalized.lhs,
        normalized.rhs,
    )


def _literal_signature(literal: Literal) -> Tuple:
    """A renaming-invariant abstraction of a literal (for prefilters)."""
    if isinstance(literal, FalseLiteral):
        return ("false",)
    from ..gfd.literals import ConstantLiteral, VariableLiteral

    if isinstance(literal, ConstantLiteral):
        return ("const", literal.attr, literal.value)
    assert isinstance(literal, VariableLiteral)
    return ("var", tuple(sorted((literal.attr1, literal.attr2))))


def _reduction_signature(gfd: GFD) -> Tuple:
    """Cheap invariants for the necessary conditions of ``φ' ≪ φ``.

    ``smaller ≪ larger`` requires: no more nodes/edges, the LHS literal
    signatures a sub-multiset, the same RHS signature, and every concrete
    (non-wildcard) label of ``smaller`` present in ``larger``.
    """
    lhs_sigs = tuple(sorted(_literal_signature(l) for l in gfd.lhs))
    concrete_nodes = tuple(
        sorted(l for l in gfd.pattern.labels if l != WILDCARD)
    )
    concrete_edges = tuple(
        sorted(e.label for e in gfd.pattern.edges if e.label != WILDCARD)
    )
    return (
        gfd.pattern.num_nodes,
        gfd.pattern.num_edges,
        lhs_sigs,
        _literal_signature(gfd.rhs),
        concrete_nodes,
        concrete_edges,
    )


def _multiset_leq(smaller: Tuple, larger: Tuple) -> bool:
    """Whether the sorted tuple ``smaller`` is a sub-multiset of ``larger``."""
    position = 0
    for item in smaller:
        while position < len(larger) and larger[position] < item:
            position += 1
        if position >= len(larger) or larger[position] != item:
            return False
        position += 1
    return True


def _may_reduce(small_sig: Tuple, large_sig: Tuple) -> bool:
    """Necessary conditions for ``≪`` between two signatures."""
    if small_sig[0] > large_sig[0] or small_sig[1] > large_sig[1]:
        return False
    if small_sig[3] != large_sig[3]:
        return False
    if not _multiset_leq(small_sig[2], large_sig[2]):
        return False
    if not _multiset_leq(small_sig[4], large_sig[4]):
        return False
    return _multiset_leq(small_sig[5], large_sig[5])


def minimal_cover_by_reduction(gfds: Sequence[GFD]) -> List[GFD]:
    """Drop duplicates and every GFD with a ``≪``-smaller sibling in the set.

    This enforces *minimality in the set* (reduced GFDs, Section 4.1); note
    it is distinct from the implication-based cover of Section 5.2, which
    runs afterwards.  Signature prefilters skip the embedding test for the
    vast majority of incomparable pairs.
    """
    unique: Dict[Tuple, GFD] = {}
    for gfd in gfds:
        unique.setdefault(gfd_identity(gfd), gfd)
    items = list(unique.values())
    signatures = [_reduction_signature(gfd) for gfd in items]
    # only same-RHS-signature pairs can be ≪-comparable: bucket up front so
    # the quadratic scan runs per bucket instead of over the full set
    by_rhs: Dict[Tuple, List[int]] = {}
    for index, signature in enumerate(signatures):
        by_rhs.setdefault(signature[3], []).append(index)
    survivors: List[GFD] = []
    for index, gfd in enumerate(items):
        dominated = False
        for other_index in by_rhs[signatures[index][3]]:
            if other_index == index:
                continue
            if not _may_reduce(signatures[other_index], signatures[index]):
                continue
            if gfd_reduces(items[other_index], gfd):
                dominated = True
                break
        if not dominated:
            survivors.append(gfd)
    return survivors
