"""Support and correlation of GFDs (Section 4.2).

* ``supp(Q, G) = |Q(G, z)|`` — distinct pivot images over all matches;
* ``ρ(φ, G) = |Q(G, Xl, z)| / |Q(G, z)|`` — the fraction of pivots whose
  matches witness *both* ``X`` and ``l`` ("true implication");
* ``supp(φ, G) = supp(Q, G) · ρ(φ, G) = |Q(G, Xl, z)|``;
* a negative GFD's support is the maximum support of its *bases* — the
  frequent pattern (edge removed) or valid positive GFD (literal removed)
  it minimally extends.

These standalone functions recompute matches; the discovery engine gets the
same quantities incrementally from match tables.  Theorem 3
(anti-monotonicity: ``φ1 ≪ φ2 ⇒ supp(φ1) ≥ supp(φ2)``) is exercised by the
property-based tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..graph.graph import Graph
from ..gfd.gfd import GFD
from ..gfd.literals import FalseLiteral
from ..gfd.satisfaction import satisfies_all, satisfies_literal
from ..pattern.matcher import find_matches, pivot_image
from ..pattern.pattern import Pattern

__all__ = [
    "pattern_support",
    "support_set",
    "gfd_support",
    "correlation",
    "negative_base_support",
    "gfd_support_any",
]


def pattern_support(graph: Graph, pattern: Pattern) -> int:
    """``supp(Q, G) = |Q(G, z)|`` — the pivoted pattern support."""
    return len(pivot_image(graph, pattern))


def support_set(graph: Graph, gfd: GFD) -> Set[int]:
    """``Q(G, Xl, z)``: pivots having a match satisfying both ``X`` and ``l``."""
    if isinstance(gfd.rhs, FalseLiteral):
        return set()
    pivots: Set[int] = set()
    pivot_var = gfd.pattern.pivot
    for match in find_matches(graph, gfd.pattern):
        node = match[pivot_var]
        if node in pivots:
            continue
        if satisfies_all(graph, match, gfd.lhs) and satisfies_literal(
            graph, match, gfd.rhs
        ):
            pivots.add(node)
    return pivots


def gfd_support(graph: Graph, gfd: GFD) -> int:
    """``supp(φ, G)`` for a positive GFD (0 for negative — see the base form)."""
    return len(support_set(graph, gfd))


def correlation(graph: Graph, gfd: GFD) -> float:
    """``ρ(φ, G)``: the attribute-correlation factor of the support."""
    denominator = pattern_support(graph, gfd.pattern)
    if denominator == 0:
        return 0.0
    return len(support_set(graph, gfd)) / denominator


def negative_base_support(graph: Graph, gfd: GFD) -> int:
    """Support of a negative GFD via its bases (Section 4.2).

    * ``X = ∅``: bases are the patterns obtained by removing one edge
      (dropping isolated variables, keeping the pivot); the support is the
      maximum pattern support among connected bases.
    * ``X ≠ ∅``: bases are the dependencies with one literal removed; the
      exact base is a *valid positive* GFD, whose support is bounded by
      ``|Q(G, X', z)|`` — the discovery engine tracks the exact base, this
      standalone function returns the bound ``max_{l'} |Q(G, X\\{l'}, z)|``.
    """
    if not gfd.is_negative:
        raise ValueError("negative_base_support expects a negative GFD")
    pattern = gfd.pattern
    if not gfd.lhs:
        best = 0
        for index in range(pattern.num_edges):
            base = pattern.without_edge(index)
            if not base.is_connected():
                continue
            best = max(best, pattern_support(graph, base))
        return best
    best = 0
    for removed in gfd.lhs:
        remaining = [l for l in gfd.lhs if l != removed]
        pivots: Set[int] = set()
        for match in find_matches(graph, pattern):
            node = match[pattern.pivot]
            if node not in pivots and satisfies_all(graph, match, remaining):
                pivots.add(node)
        best = max(best, len(pivots))
    return best


def gfd_support_any(graph: Graph, gfd: GFD) -> int:
    """Uniform support: positive GFDs directly, negative via their bases."""
    if gfd.is_negative:
        return negative_base_support(graph, gfd)
    return gfd_support(graph, gfd)
