"""Support and correlation of GFDs (Section 4.2).

* ``supp(Q, G) = |Q(G, z)|`` — distinct pivot images over all matches;
* ``ρ(φ, G) = |Q(G, Xl, z)| / |Q(G, z)|`` — the fraction of pivots whose
  matches witness *both* ``X`` and ``l`` ("true implication");
* ``supp(φ, G) = supp(Q, G) · ρ(φ, G) = |Q(G, Xl, z)|``;
* a negative GFD's support is the maximum support of its *bases* — the
  frequent pattern (edge removed) or valid positive GFD (literal removed)
  it minimally extends.

These standalone functions recompute matches; the discovery engine gets the
same quantities incrementally from match tables.  Theorem 3
(anti-monotonicity: ``φ1 ≪ φ2 ⇒ supp(φ1) ≥ supp(φ2)``) is exercised by the
property-based tests.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Set

import numpy as np

from ..graph.graph import Graph
from ..gfd.gfd import GFD
from ..gfd.literals import FalseLiteral
from ..gfd.satisfaction import satisfies_all, satisfies_literal
from ..pattern.matcher import find_matches, pivot_image
from ..pattern.pattern import Pattern
from .sketch import make_sketch, register_sketch

__all__ = [
    "pattern_support",
    "support_set",
    "gfd_support",
    "correlation",
    "negative_base_support",
    "gfd_support_any",
    "DistinctPivotSketch",
    "sketch_distinct_upper_bound",
]


class DistinctPivotSketch:
    """HLL-style sketch of a distinct-pivot count ``|Q(G, ·, z)|``.

    A vectorized HyperLogLog over int64 pivot ids: ``2^p`` one-byte
    registers, a splitmix64-style avalanche hash, and the standard raw /
    linear-counting estimators.  :meth:`upper_bound` inflates the estimate
    by ``z`` standard errors (``σ ≈ 1.04/√m``), giving a cheap *probable*
    upper bound used to skip exact distinct counting when a support is far
    below the frequency threshold.  Exact counting stays the source of
    truth for everything the sketch does not prune.

    Sketches over disjoint (or overlapping) pivot populations merge by
    register-wise max — the same property ``ParDis`` shards need.
    """

    __slots__ = ("precision", "registers")

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in [4, 18]")
        self.precision = precision
        self.registers = np.zeros(1 << precision, dtype=np.uint8)

    @staticmethod
    def _hash(values: np.ndarray) -> np.ndarray:
        """Splitmix64 finalizer: avalanche int64 ids into uniform uint64."""
        h = values.astype(np.uint64, copy=True)
        h += np.uint64(0x9E3779B97F4A7C15)
        h ^= h >> np.uint64(30)
        h *= np.uint64(0xBF58476D1CE4E5B9)
        h ^= h >> np.uint64(27)
        h *= np.uint64(0x94D049BB133111EB)
        h ^= h >> np.uint64(31)
        return h

    def add_array(self, values: np.ndarray) -> "DistinctPivotSketch":
        """Absorb an array of pivot ids (duplicates are free)."""
        if values.size == 0:
            return self
        p = self.precision
        tail_bits = 64 - p
        h = self._hash(np.asarray(values, dtype=np.int64))
        buckets = (h >> np.uint64(tail_bits)).astype(np.int64)
        tail = h & np.uint64((1 << tail_bits) - 1)
        # rank = leading zeros of the tail within tail_bits, plus one;
        # tail < 2^52 for p >= 12 is exactly representable, and frexp's
        # exponent gives floor(log2)+1 directly (0 for a zero tail)
        exponent = np.frexp(tail.astype(np.float64))[1]
        rank = (tail_bits + 1 - exponent).astype(np.uint8)
        np.maximum.at(self.registers, buckets, rank)
        return self

    def merge(self, other: "DistinctPivotSketch") -> "DistinctPivotSketch":
        """Union with another sketch (register-wise max)."""
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches of different precision")
        np.maximum(self.registers, other.registers, out=self.registers)
        return self

    def estimate(self) -> float:
        """The HLL cardinality estimate with linear-counting correction."""
        m = self.registers.size
        alpha = 0.7213 / (1.0 + 1.079 / m)
        harmonic = float(np.sum(np.ldexp(1.0, -self.registers.astype(np.int64))))
        raw = alpha * m * m / harmonic
        zeros = int(np.count_nonzero(self.registers == 0))
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return raw

    def upper_bound(self, z: float = 3.0) -> int:
        """Estimate inflated by ``z`` standard errors (probable upper bound)."""
        m = self.registers.size
        return int(math.ceil(self.estimate() * (1.0 + z * 1.04 / math.sqrt(m))))


# The HLL sketch is the default implementation of the pluggable
# CardinalitySketch protocol (see repro.core.sketch).
register_sketch("hll", DistinctPivotSketch)


def sketch_distinct_upper_bound(
    values: np.ndarray,
    precision: int = 12,
    z: float = 3.0,
    kind: str = "hll",
) -> int:
    """One-shot probable upper bound on ``|set(values)|``.

    ``kind`` names a registered :class:`~repro.core.sketch.CardinalitySketch`
    backend (default: the HLL sketch above).
    """
    return make_sketch(kind, precision).add_array(values).upper_bound(z)


def pattern_support(graph: Graph, pattern: Pattern) -> int:
    """``supp(Q, G) = |Q(G, z)|`` — the pivoted pattern support."""
    return len(pivot_image(graph, pattern))


def support_set(graph: Graph, gfd: GFD) -> Set[int]:
    """``Q(G, Xl, z)``: pivots having a match satisfying both ``X`` and ``l``."""
    if isinstance(gfd.rhs, FalseLiteral):
        return set()
    pivots: Set[int] = set()
    pivot_var = gfd.pattern.pivot
    for match in find_matches(graph, gfd.pattern):
        node = match[pivot_var]
        if node in pivots:
            continue
        if satisfies_all(graph, match, gfd.lhs) and satisfies_literal(
            graph, match, gfd.rhs
        ):
            pivots.add(node)
    return pivots


def gfd_support(graph: Graph, gfd: GFD) -> int:
    """``supp(φ, G)`` for a positive GFD (0 for negative — see the base form)."""
    return len(support_set(graph, gfd))


def correlation(graph: Graph, gfd: GFD) -> float:
    """``ρ(φ, G)``: the attribute-correlation factor of the support."""
    denominator = pattern_support(graph, gfd.pattern)
    if denominator == 0:
        return 0.0
    return len(support_set(graph, gfd)) / denominator


def negative_base_support(graph: Graph, gfd: GFD) -> int:
    """Support of a negative GFD via its bases (Section 4.2).

    * ``X = ∅``: bases are the patterns obtained by removing one edge
      (dropping isolated variables, keeping the pivot); the support is the
      maximum pattern support among connected bases.
    * ``X ≠ ∅``: bases are the dependencies with one literal removed; the
      exact base is a *valid positive* GFD, whose support is bounded by
      ``|Q(G, X', z)|`` — the discovery engine tracks the exact base, this
      standalone function returns the bound ``max_{l'} |Q(G, X\\{l'}, z)|``.
    """
    if not gfd.is_negative:
        raise ValueError("negative_base_support expects a negative GFD")
    pattern = gfd.pattern
    if not gfd.lhs:
        best = 0
        for index in range(pattern.num_edges):
            base = pattern.without_edge(index)
            if not base.is_connected():
                continue
            best = max(best, pattern_support(graph, base))
        return best
    best = 0
    for removed in gfd.lhs:
        remaining = [l for l in gfd.lhs if l != removed]
        pivots: Set[int] = set()
        for match in find_matches(graph, pattern):
            node = match[pattern.pivot]
            if node not in pivots and satisfies_all(graph, match, remaining):
                pivots.add(node)
        best = max(best, len(pivots))
    return best


def gfd_support_any(graph: Graph, gfd: GFD) -> int:
    """Uniform support: positive GFDs directly, negative via their bases."""
    if gfd.is_negative:
        return negative_base_support(graph, gfd)
    return gfd_support(graph, gfd)
