"""Pluggable cardinality estimation — one protocol, a registry of sketches.

Every probabilistic distinct-count in the system (the ``HSpawn`` support
prefilter, enforcement's ``sketch_cardinality`` pivot bounds) goes through
the :class:`CardinalitySketch` protocol instead of hard-coding one
estimator.  The built-in implementations are

* ``"hll"`` — the vectorized HyperLogLog of
  :class:`~repro.core.support.DistinctPivotSketch` (the default; registered
  by :mod:`repro.core.support` on import);
* ``"exact"`` — :class:`ExactCardinalitySketch`, a reference estimator that
  keeps the distinct set (no error, O(distinct) memory; the oracle the
  sketch tests compare against).

Alternative estimators — e.g. an UltraLogLog (Ertl 2023) with its ~28 %
smaller memory footprint at equal error — slot in by calling
:func:`register_sketch` with a factory taking the precision parameter; the
``sketch_backend`` knobs on :class:`~repro.core.config.DiscoveryConfig` and
:class:`~repro.core.config.EnforcementConfig` then select them by name.

The protocol's contract (what the discovery shards rely on):

* ``add_array`` absorbs int64 id arrays, duplicates free;
* ``merge`` unions two sketches of equal precision — the result must bound
  the union of the inputs (register-wise max for HLL) so per-shard sketches
  combine into a global one;
* ``estimate``/``upper_bound`` — ``upper_bound`` must hold with high
  probability, because callers use it to *skip* exact counting only when
  the bound is already below a threshold (exact counting stays the source
  of truth for everything the sketch does not prune).
"""

from __future__ import annotations

import base64
from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = [
    "CardinalitySketch",
    "ExactCardinalitySketch",
    "register_sketch",
    "make_sketch",
    "sketch_names",
    "dump_sketch_state",
    "load_sketch_state",
]


@runtime_checkable
class CardinalitySketch(Protocol):
    """The estimator interface behind the ``sketch_backend`` knobs."""

    precision: int

    def add_array(self, values: np.ndarray) -> "CardinalitySketch":
        """Absorb an array of int64 ids (duplicates are free); returns self."""
        ...

    def merge(self, other: "CardinalitySketch") -> "CardinalitySketch":
        """Union with another sketch of the same precision; returns self."""
        ...

    def estimate(self) -> float:
        """The cardinality estimate."""
        ...

    def upper_bound(self, z: float = 3.0) -> int:
        """A probable upper bound (``z`` standard errors above the estimate)."""
        ...


class ExactCardinalitySketch:
    """The trivial exact "sketch": keeps the distinct set.

    Zero error and O(distinct) memory — the reference point the
    probabilistic estimators are tested against, and a sensible choice for
    small populations where sketch memory buys nothing.  ``precision`` is
    accepted for interface parity and ignored.
    """

    __slots__ = ("precision", "_values")

    def __init__(self, precision: int = 12) -> None:
        self.precision = precision
        self._values: set = set()

    def add_array(self, values: np.ndarray) -> "ExactCardinalitySketch":
        if np.asarray(values).size:
            self._values.update(np.unique(np.asarray(values)).tolist())
        return self

    def merge(self, other: "ExactCardinalitySketch") -> "ExactCardinalitySketch":
        self._values.update(other._values)
        return self

    def estimate(self) -> float:
        return float(len(self._values))

    def upper_bound(self, z: float = 3.0) -> int:
        return len(self._values)


_REGISTRY: Dict[str, Callable[[int], CardinalitySketch]] = {
    "exact": ExactCardinalitySketch,
}


def register_sketch(
    name: str, factory: Callable[[int], CardinalitySketch]
) -> None:
    """Register a cardinality estimator under ``name``.

    ``factory`` takes the precision parameter (``2^p`` registers for
    HLL-family sketches; estimators free to interpret or ignore it) and
    returns a fresh sketch.  Re-registering a name replaces the factory —
    deliberate, so tests can shadow an estimator.
    """
    if not name:
        raise ValueError("sketch name must be non-empty")
    _REGISTRY[name] = factory


def sketch_names() -> Tuple[str, ...]:
    """The registered estimator names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_sketch(name: str = "hll", precision: int = 12) -> CardinalitySketch:
    """Instantiate a registered estimator by name."""
    if name not in _REGISTRY and name == "hll":
        # the HLL default lives in repro.core.support (it predates the
        # registry); make sure its registration ran even when this module
        # was imported directly
        from . import support  # noqa: F401  (imported for its side effect)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sketch backend {name!r} "
            f"(registered: {', '.join(sketch_names())})"
        ) from None
    return factory(precision)


# ----------------------------------------------------------------------
# state (de)serialization — so sketches can persist beside Σ
# ----------------------------------------------------------------------
def dump_sketch_state(sketch: CardinalitySketch) -> Optional[dict]:
    """A JSON-safe state dict for a sketch, or ``None`` if not supported.

    Covers the two built-in shapes by duck typing: register-array sketches
    (``registers`` as a uint8 numpy array — the HLL family) serialize the
    registers base64-encoded; exact sketches (``_values`` set) serialize the
    sorted value list.  Third-party estimators that expose neither are
    skipped (``None``) — persistence is best-effort by design, a missing
    sketch merely cold-starts its rule's gauge.
    """
    registers = getattr(sketch, "registers", None)
    if isinstance(registers, np.ndarray):
        return {
            "kind": "registers",
            "precision": int(sketch.precision),
            "registers": base64.b64encode(
                np.ascontiguousarray(registers, dtype=np.uint8).tobytes()
            ).decode("ascii"),
        }
    values = getattr(sketch, "_values", None)
    if isinstance(values, set):
        return {
            "kind": "exact",
            "precision": int(sketch.precision),
            "values": sorted(int(v) for v in values),
        }
    return None


def load_sketch_state(state: dict, backend: str) -> Optional[CardinalitySketch]:
    """Rebuild a sketch from :func:`dump_sketch_state` output.

    ``backend`` names the registry factory to instantiate; the state must
    structurally match it (register blob for register sketches, value list
    for exact ones) or the load is refused (``None``) rather than producing
    an estimator with silently-wrong state.
    """
    kind = state.get("kind")
    precision = int(state.get("precision", 12))
    sketch = make_sketch(backend, precision)
    if kind == "registers":
        registers = getattr(sketch, "registers", None)
        if not isinstance(registers, np.ndarray):
            return None
        blob = np.frombuffer(
            base64.b64decode(state["registers"]), dtype=np.uint8
        )
        if blob.size != registers.size:
            return None
        sketch.registers = blob.copy()
        return sketch
    if kind == "exact":
        values = getattr(sketch, "_values", None)
        if not isinstance(values, set):
            return None
        values.update(int(v) for v in state.get("values", ()))
        return sketch
    return None
