"""``SeqDis`` — sequential GFD discovery (Section 5.1).

The algorithm interleaves two levelwise processes over a generation tree:

* **vertical spawning** (``VSpawn``): extend frequent patterns by one edge,
  verify the new patterns by incremental matching, and merge isomorphic
  spawns;
* **horizontal spawning** (``HSpawn``): over each verified pattern's match
  table, grow LHS literal sets levelwise per RHS literal, emitting GFDs that
  are valid, σ-frequent, nontrivial and reduced.

Negative GFDs are discovered *simultaneously* (``NVSpawn`` finds zero-match
extensions of frequent patterns; ``NHSpawn`` finds literal extensions of
valid positives that no match satisfies), per Section 5.1.

Pruning follows Lemma 4: (a) trivial GFDs are never emitted, (b) once
``G ⊨ Q(X → l)``, supersets of ``X`` are not generated for ``(Q, l)``, and
(c) patterns below the support threshold are not extended.  ``ParGFDn``
(the paper's no-pruning baseline) disables these via ``config.prune``.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..graph.graph import Graph
from ..graph.index import GraphIndex
from ..graph.statistics import GraphStatistics, compute_statistics
from ..gfd.closure import LiteralClosure
from ..gfd.gfd import GFD
from ..gfd.literals import FALSE, Literal
from ..pattern.incremental import Extension, apply_extension, extend_matches
from ..pattern.pattern import Pattern
from .config import CandidateBudgetExceeded, DiscoveryConfig
from .generation_tree import GenerationTree, TreeNode
from .match_table import MatchTable
from .reduction import gfd_identity, minimal_cover_by_reduction
from .results import DiscoveryResult, MiningStats
from .spawning import (
    extension_statistics,
    extensions_from_statistics,
    speculative_closing_extensions,
    wildcard_extensions_from_statistics,
)

__all__ = ["SequentialDiscovery", "discover"]


class SequentialDiscovery:
    """One discovery run of ``SeqDis`` over a graph.

    Usage::

        result = SequentialDiscovery(graph, DiscoveryConfig(k=3, sigma=50)).run()

    ``stats`` and ``index`` accept precomputed :class:`GraphStatistics` /
    :class:`GraphIndex` snapshots so repeated runs (parallel workers,
    baseline sweeps, benchmark series) don't rescan the graph per run; by
    default both come from the graph's cached frozen index (``config.
    use_index``), or a fresh statistics scan with the index disabled.
    """

    def __init__(
        self,
        graph: Graph,
        config: DiscoveryConfig,
        stats: Optional[GraphStatistics] = None,
        index: Optional[GraphIndex] = None,
    ) -> None:
        self.graph = graph
        self.config = config
        if index is not None:
            self.index: Optional[GraphIndex] = index
        elif config.use_index:
            self.index = graph.index()
        else:
            self.index = None
        if stats is not None:
            self.graph_stats = stats
        elif self.index is not None:
            self.graph_stats = self.index.statistics()
        else:
            self.graph_stats = compute_statistics(graph)
        if config.active_attributes is not None:
            self.gamma = list(config.active_attributes)
        else:
            self.gamma = self.graph_stats.top_attributes(config.max_active_attributes)
        self.stats = MiningStats()
        self._found: Dict[Tuple, Tuple[GFD, int]] = {}
        #: How many ``_found`` entries :meth:`_drain_found` has handed out.
        self._drained = 0

    # ------------------------------------------------------------------
    # engine lifecycle hooks (the parallel engine overrides these; the
    # sequential reference engine needs no external resources)
    # ------------------------------------------------------------------
    def _start_backend(self) -> None:
        """Acquire execution resources before the first level runs."""

    def _finish_backend(self) -> None:
        """Release (or hand back) execution resources after the last level."""

    def _master(self):
        """Context manager metering master-side post-processing."""
        return nullcontext()

    def _seed_level(self, tree: GenerationTree) -> None:
        """Spawn the level-0 single-node patterns."""
        self._seed_single_nodes(tree)

    def _extend_level(self, tree: GenerationTree, level: int) -> List[TreeNode]:
        """``VSpawn(level)``: one-edge extensions of the previous level."""
        return self._vspawn(tree, level)

    def _mine_node(self, node: TreeNode) -> None:
        """``HSpawn``: mine the dependencies of one verified pattern."""
        self._hspawn(node)

    def _mine_nodes(self, nodes: Sequence[TreeNode]) -> None:
        """``HSpawn`` over one level's verified patterns.

        The sequential engine mines them one by one; the parallel engine
        overrides this to validate all of a level's patterns in fused
        supersteps (``config.fuse_ops``) — emissions land in ``_found`` in
        the same per-node order either way.
        """
        for node in nodes:
            self._mine_node(node)

    # ------------------------------------------------------------------
    def _drain_found(self) -> List[Tuple[GFD, int]]:
        """The ``(gfd, support)`` pairs emitted since the previous drain.

        ``_found`` is insertion-ordered by GFD identity; a re-emission that
        only raises a support does not re-append, so drained batches are
        exactly the *newly discovered* rules.
        """
        items = list(self._found.values())
        fresh = items[self._drained:]
        self._drained = len(items)
        return fresh

    def _levels(
        self, tree: GenerationTree
    ) -> Iterator[Tuple[int, List[Tuple[GFD, int]]]]:
        """Drive the levelwise search, yielding per-level emission batches.

        The shared core of :meth:`run` and :meth:`run_iter`: seed, mine
        level 0, then alternate ``VSpawn``/``HSpawn`` up to the edge
        budget, yielding ``(level, [(gfd, support), ...])`` after each
        completed level.  Backend lifecycle is the caller's concern.
        """
        self._seed_level(tree)
        self._mine_nodes(list(tree.level(0)))
        yield 0, self._drain_found()
        for level in range(1, self.config.edge_budget + 1):
            new_nodes = self._extend_level(tree, level)
            if not new_nodes:
                return
            self._mine_nodes(new_nodes)
            yield level, self._drain_found()

    def run(self) -> DiscoveryResult:
        """Execute discovery and return the minimum frequent GFDs."""
        started = time.perf_counter()
        self._drained = 0
        self._start_backend()
        tree = GenerationTree()
        try:
            for _level, _fresh in self._levels(tree):
                pass
            gfds = [gfd for gfd, _ in self._found.values()]
            supports = {gfd: supp for gfd, supp in self._found.values()}
            with self._master():
                if self.config.minimality_filter:
                    gfds = minimal_cover_by_reduction(gfds)
                    supports = {gfd: supports[gfd] for gfd in gfds}
        finally:
            self._finish_backend()
        self.stats.positives_found = sum(1 for gfd in gfds if gfd.is_positive)
        self.stats.negatives_found = sum(1 for gfd in gfds if gfd.is_negative)
        self.stats.elapsed_seconds = time.perf_counter() - started
        return DiscoveryResult(
            gfds=gfds, supports=supports, stats=self.stats, tree=tree
        )

    def run_iter(self) -> Iterator[Tuple[int, List[Tuple[GFD, int]]]]:
        """Stream discovery: yield ``(level, [(gfd, support), ...])`` batches.

        Rules arrive as their generation-tree level completes, so a
        consumer can act on (or stop after) early rules without waiting for
        the full run — the engine behind ``Session.discover_iter`` and its
        early-stop budgets.  Closing the iterator early releases the
        engine's execution resources (the ``finally`` below runs on
        ``GeneratorExit``).

        Two deliberate differences from :meth:`run`: the final pairwise
        ``≪``-minimality filter is *not* applied (it is a global pass over
        the completed set — ``Session.discover`` still applies it), and a
        support that is later raised for an already-yielded rule is not
        re-reported.
        """
        self._drained = 0
        self._start_backend()
        tree = GenerationTree()
        try:
            yield from self._levels(tree)
        finally:
            self._finish_backend()

    # ------------------------------------------------------------------
    # vertical spawning
    # ------------------------------------------------------------------
    def _seed_single_nodes(self, tree: GenerationTree) -> None:
        """Cold start: one single-node pattern per frequent node label."""
        for label in sorted(self.graph_stats.node_label_counts):
            count = self.graph_stats.node_label_counts[label]
            if count < self.config.sigma:
                continue
            pattern = Pattern([label])
            node, created = tree.add(pattern, level=0)
            if not created:
                continue
            if self.index is not None:
                matches = self.index.nodes_with_label(label)[:, None]
            else:
                matches = [(v,) for v in self.graph.nodes_with_label(label)]
            node.table = MatchTable(
                self.graph, pattern, matches, self.gamma, index=self.index
            )
            node.support = count
            self.stats.patterns_spawned += 1
            self.stats.patterns_frequent += 1

    def _vspawn(self, tree: GenerationTree, level: int) -> List[TreeNode]:
        """``VSpawn(level)``: extend every frequent level-1 pattern by one edge."""
        matching_started = time.perf_counter()
        created_nodes: List[TreeNode] = []
        parents = list(tree.level(level - 1))
        for parent in parents:
            if parent.table is None:
                continue
            if parent.table.truncated:
                continue  # a capped sample certifies nothing downstream
            if self.config.prune and parent.support < self.config.sigma:
                continue  # Lemma 4(c): no frequent GFD below this pattern
            if parent.support == 0:
                continue  # zero-support (negative) patterns are leaves
            for extension in self._generate_extensions(parent):
                pattern = apply_extension(parent.pattern, extension)
                if pattern.num_nodes > self.config.k:
                    continue
                node, created = tree.add(pattern, level, parent)
                if not created:
                    continue
                self.stats.patterns_spawned += 1
                self._verify_pattern(parent, node, extension)
                created_nodes.append(node)
                if (
                    self.config.max_patterns_per_level is not None
                    and len(created_nodes) >= self.config.max_patterns_per_level
                ):
                    self.stats.matching_seconds += (
                        time.perf_counter() - matching_started
                    )
                    return created_nodes
        self.stats.matching_seconds += time.perf_counter() - matching_started
        return created_nodes

    def _generate_extensions(self, parent: TreeNode) -> List[Extension]:
        """All one-edge extensions to try from ``parent`` (overridable hook).

        Baselines restrict this (e.g. GCFD mining keeps only path-shaped
        growth); the parallel algorithm replaces it with distributed
        tallying.
        """
        tallies = extension_statistics(
            self.graph,
            parent.pattern,
            parent.table.match_array
            if self.index is not None
            else parent.table.matches,
            can_add_node=parent.pattern.num_nodes < self.config.k,
            index=self.index,
        )
        extensions = extensions_from_statistics(parent.pattern, tallies, self.config)
        extensions += wildcard_extensions_from_statistics(
            parent.pattern, tallies, self.config
        )
        if self.config.mine_negative and self.config.speculative_closing_edges:
            extensions += speculative_closing_extensions(
                self.graph_stats, parent, self.config
            )
        return extensions

    def _verify_pattern(
        self, parent: TreeNode, node: TreeNode, extension: Extension
    ) -> None:
        """Incremental matching ``Q'(G) = Q(G) ⋈ e`` plus ``NVSpawn``."""
        cap = self.config.max_matches_per_pattern
        matches = extend_matches(
            self.graph,
            parent.table.match_array
            if self.index is not None
            else parent.table.matches,
            extension,
            max_matches=cap,
            index=self.index,
            as_array=self.index is not None,
        )
        truncated = cap is not None and len(matches) >= cap
        node.table = MatchTable(
            self.graph,
            node.pattern,
            matches,
            self.gamma,
            truncated=truncated,
            index=self.index,
        )
        if truncated:
            self.stats.truncated_patterns += 1
        node.support = node.table.support(node.table.all_rows())
        if node.support >= self.config.sigma:
            self.stats.patterns_frequent += 1
        if node.support == 0:
            self.stats.patterns_zero_support += 1
            if self.config.mine_negative and parent.support >= self.config.sigma:
                # NVSpawn: a frequent base pattern with a zero-match
                # extension — the "illegal structure" negative GFD.
                negative = GFD(node.pattern, frozenset(), FALSE)
                self._emit(negative, parent.support)

    # ------------------------------------------------------------------
    # horizontal spawning
    # ------------------------------------------------------------------
    def _literal_alphabet(self, table: MatchTable) -> List[Literal]:
        """The candidate literals of a pattern's match table."""
        literals: List[Literal] = list(
            table.candidate_constant_literals(
                self.config.max_constants, self.config.min_literal_rows
            )
        )
        if self.config.variable_literals and table.pattern.num_nodes > 1:
            literals.extend(
                table.candidate_variable_literals(
                    self.config.variable_literals_same_attr_only,
                    self.config.min_literal_rows,
                )
            )
        return literals

    def _hspawn(self, node: TreeNode) -> None:
        """``HSpawn``: mine dependencies ``X → l`` over one pattern's table."""
        validation_started = time.perf_counter()
        table = node.table
        if table is None or table.truncated:
            return
        if node.support < self.config.sigma and self.config.prune:
            return
        literals = self._literal_alphabet(table)
        if not literals:
            return
        if self.config.prune:
            # alphabet prefilter: a literal below σ pivot-support can appear
            # in no frequent GFD at this pattern (anti-monotonicity), so the
            # lattice never needs to see it.  NHSpawn keeps the full
            # alphabet — a negative's support comes from its base.
            lattice_literals = [
                literal
                for literal in literals
                if self._literal_support_reaches_sigma(table, literal)
            ]
        else:
            lattice_literals = literals
        all_rows = table.full_mask()
        for rhs in lattice_literals:
            self._mine_rhs(node, table, lattice_literals, rhs, all_rows, literals)
        self.stats.validation_seconds += time.perf_counter() - validation_started

    def _literal_support_reaches_sigma(self, table: MatchTable, literal) -> bool:
        """Whether a literal's distinct-pivot support reaches ``σ``.

        With ``config.sketch_support_prefilter``, an HLL sketch first gives
        a probable *upper bound* on the distinct-pivot count; only literals
        whose bound reaches ``σ`` get the exact run count (the source of
        truth).  The sketch can only skip clearly-infrequent literals.
        """
        mask = table.literal_mask(literal)
        if self.config.sketch_support_prefilter:
            if table.mask_count(mask) < self.config.sigma:
                return False
            bound = table.sketch_support_bound(
                mask,
                self.config.sketch_precision,
                kind=self.config.sketch_backend,
            )
            if bound < self.config.sigma:
                self.stats.sketch_pruned_literals += 1
                return False
        return table.mask_support(mask) >= self.config.sigma

    def _mine_rhs(
        self,
        node: TreeNode,
        table: MatchTable,
        literals: List[Literal],
        rhs: Literal,
        all_rows,
        nh_literals: Optional[List[Literal]] = None,
    ) -> None:
        """Levelwise LHS lattice search for one RHS literal.

        Row subsets travel as numpy boolean masks; literal evaluation is a
        mask AND, validity a count comparison, support a distinct-pivot
        count over the masked pivot column.
        """
        empty: FrozenSet[Literal] = frozenset()
        nh_literals = nh_literals if nh_literals is not None else literals
        total_rows = table.num_rows
        rhs_mask = table.literal_mask(rhs)
        count_rhs = table.mask_count(rhs_mask)
        support_rhs = table.mask_support(rhs_mask)
        if self.config.prune and support_rhs < self.config.sigma:
            return  # supp(X ∧ l) ≤ supp(l): nothing below can be frequent
        self._charge_candidate()
        if (empty, rhs) in node.covered:
            return  # valid at an ancestor pattern: not pattern-reduced here
        if count_rhs == total_rows and total_rows:
            node.valid_pairs.add((empty, rhs))
            if support_rhs >= self.config.sigma:
                gfd = GFD(node.pattern, empty, rhs)
                self._emit(gfd, support_rhs)
                self._nhspawn(
                    node, table, nh_literals, empty, rhs, all_rows, support_rhs
                )
            return  # Lemma 4(b): supersets of a valid LHS are not reduced
        # indexable alphabet for rymon-tree (prefix-ordered) enumeration
        indexed = [
            (index, literal)
            for index, literal in enumerate(literals)
            if literal != rhs
        ]
        valid_sets: List[FrozenSet[Literal]] = []
        frontier = [(empty, -1, all_rows)]
        for _ in range(self.config.max_lhs_size):
            next_frontier = []
            for lhs, max_index, rows in frontier:
                for index, literal in indexed:
                    if index <= max_index:
                        continue
                    extended = lhs | {literal}
                    if any(valid <= extended for valid in valid_sets):
                        continue  # a subset already valid: not left-reduced
                    if self._is_trivial(extended, rhs):
                        continue
                    self._charge_candidate()
                    rows_lhs = rows & table.literal_mask(literal)
                    rows_both = rows_lhs & rhs_mask
                    count_lhs = table.mask_count(rows_lhs)
                    count_both = table.mask_count(rows_both)
                    if self.config.prune and count_both < self.config.sigma:
                        continue  # supp ≤ |rows|: cannot be frequent below
                    supp = table.mask_support(rows_both)
                    if self.config.prune and supp < self.config.sigma:
                        continue  # anti-monotone: no extension recovers support
                    if count_lhs and count_both == count_lhs:
                        valid_sets.append(extended)
                        node.valid_pairs.add((extended, rhs))
                        if (extended, rhs) in node.covered:
                            continue
                        if supp >= self.config.sigma:
                            gfd = GFD(node.pattern, extended, rhs)
                            self._emit(gfd, supp)
                            self._nhspawn(
                                node, table, nh_literals, extended, rhs,
                                rows_lhs, supp,
                            )
                        continue  # Lemma 4(b)
                    next_frontier.append((extended, index, rows_lhs))
            frontier = next_frontier
            if not frontier:
                break

    def _nhspawn(
        self,
        node: TreeNode,
        table: MatchTable,
        literals: List[Literal],
        lhs: FrozenSet[Literal],
        rhs: Literal,
        rows_lhs,
        base_support: int,
    ) -> None:
        """``NHSpawn``: negative GFDs by one-literal extension of a valid base.

        The base ``Q(X → l)`` is valid and frequent; for each extra literal
        ``l''`` with no match satisfying ``X ∪ {l''}``, emit
        ``Q(X ∪ {l''} → false)`` with the base's support (Section 4.2).
        """
        if not self.config.mine_negative:
            return
        threshold = self.config.negative_literal_min_rows
        if threshold is None:
            threshold = self.config.sigma
        emitted = 0
        for literal in literals:
            if literal == rhs or literal in lhs:
                continue
            extended = lhs | {literal}
            if self._lhs_unsatisfiable(extended):
                continue  # trivial negative
            if bool((rows_lhs & table.literal_mask(literal)).any()):
                continue  # some match satisfies X ∪ {l''}: not a negative
            if table.literal_count(literal) < threshold:
                continue  # l'' itself is rare: the negative is uninteresting
            negative = GFD(node.pattern, extended, FALSE)
            self._emit(negative, base_support)
            emitted += 1
            if emitted >= self.config.max_negatives_per_pattern:
                break

    # ------------------------------------------------------------------
    def _charge_candidate(self) -> None:
        """Count one candidate check; abort when over the configured budget."""
        self.stats.candidates_checked += 1
        budget = self.config.max_candidates
        if budget is not None and self.stats.candidates_checked > budget:
            raise CandidateBudgetExceeded(
                self.stats.candidates_checked, self.stats.patterns_spawned
            )

    @staticmethod
    def _lhs_unsatisfiable(lhs: FrozenSet[Literal]) -> bool:
        closure = LiteralClosure()
        for literal in lhs:
            closure.add(literal)
        return closure.conflicting

    @staticmethod
    def _is_trivial(lhs: FrozenSet[Literal], rhs: Literal) -> bool:
        """Trivial-GFD test (Section 4.1) with a closure-free fast path.

        Conflicts require two constant literals on one term; derivations of
        ``rhs`` beyond direct membership require a variable-literal chain —
        absent variable literals, direct checks suffice.
        """
        from ..gfd.literals import ConstantLiteral as _Const

        constants: Dict[Tuple[int, str], object] = {}
        has_variable_literal = False
        for literal in lhs:
            if isinstance(literal, _Const):
                term = (literal.var, literal.attr)
                previous = constants.get(term)
                if previous is not None and previous != literal.value:
                    return True  # X is unsatisfiable
                constants[term] = literal.value
            else:
                has_variable_literal = True
        from ..gfd.literals import VariableLiteral as _Var

        if isinstance(rhs, _Const):
            if constants.get((rhs.var, rhs.attr)) == rhs.value:
                return True  # l follows from X directly
        elif isinstance(rhs, _Var):
            left = constants.get((rhs.var1, rhs.attr1))
            right = constants.get((rhs.var2, rhs.attr2))
            if left is not None and left == right:
                return True  # x.A = c ∧ y.B = c entails x.A = y.B
        if not has_variable_literal:
            return rhs in lhs
        closure = LiteralClosure()
        for literal in lhs:
            closure.add(literal)
        if closure.conflicting:
            return True
        return closure.entails(rhs)

    def _emit(self, gfd: GFD, support: int) -> None:
        key = gfd_identity(gfd)
        existing = self._found.get(key)
        if existing is None or existing[1] < support:
            self._found[key] = (gfd, support)


def discover(
    graph: Graph,
    config: Optional[DiscoveryConfig] = None,
    stats: Optional[GraphStatistics] = None,
    index: Optional[GraphIndex] = None,
) -> DiscoveryResult:
    """Discover minimum σ-frequent GFDs in ``graph`` (the ``SeqDis`` entry point)."""
    return SequentialDiscovery(
        graph, config or DiscoveryConfig(), stats=stats, index=index
    ).run()
