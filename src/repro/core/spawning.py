"""Vertical spawning: extension-candidate generation (``VSpawn``/``NVSpawn``).

``VSpawn(i)`` grows level-``i-1`` patterns by one edge (Section 5.1).  Two
candidate sources are used:

* **data-driven** extensions: scan the stored matches of a pattern and
  collect the incident graph edges not yet covered by the pattern; an
  extension is worth spawning only if the number of *distinct pivots* whose
  matches witness it reaches ``σ`` (support is pivot-based, so by
  Theorem 3's anti-monotonicity this is a safe prune);
* **speculative** closing edges from the graph's frequent label-triples —
  these may have *zero* matches, which is exactly how ``NVSpawn`` finds
  negative GFDs of the form ``Q'[x̄](∅ → false)`` such as the paper's
  mutual-parent pattern ``φ3`` (Example 8).

The statistics collection is factored so that ``ParDis`` workers can run it
on their local match shards and the master can merge the partial results —
the distributed runs then spawn *exactly* the same patterns as ``SeqDis``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.graph import Graph
from ..graph.index import GraphIndex, sort_unique
from ..graph.statistics import GraphStatistics
from ..pattern.incremental import Extension, _as_match_array
from ..pattern.matcher import Match
from ..pattern.pattern import WILDCARD, Pattern
from .config import DiscoveryConfig
from .generation_tree import TreeNode

__all__ = [
    "ExtensionStatistics",
    "ExtensionCounts",
    "extension_statistics",
    "merge_extension_statistics",
    "counts_from_statistics",
    "merge_extension_counts",
    "extensions_from_statistics",
    "extensions_from_counts",
    "wildcard_extensions_from_statistics",
    "wildcard_extensions_from_counts",
    "data_driven_extensions",
    "wildcard_extensions",
    "speculative_closing_extensions",
]

#: key: (anchor variable, outward?, edge label, endpoint node label)
NewNodeKey = Tuple[int, bool, str, str]
#: key: (src variable, dst variable, edge label)
ClosingKey = Tuple[int, int, str]


class ExtensionStatistics:
    """Pivot-support tallies for candidate one-edge extensions.

    ``new_node[key]`` and ``closing[key]`` hold the sets of *pivots* whose
    matches witness the extension — mergeable across match shards.
    """

    def __init__(self) -> None:
        self.new_node: Dict[NewNodeKey, Set[int]] = defaultdict(set)
        self.closing: Dict[ClosingKey, Set[int]] = defaultdict(set)

    def merge(self, other: "ExtensionStatistics") -> None:
        """Union ``other``'s tallies into this one (master-side combine)."""
        for key, pivots in other.new_node.items():
            self.new_node[key] |= pivots
        for key, pivots in other.closing.items():
            self.closing[key] |= pivots


def extension_statistics(
    graph: Graph,
    pattern: Pattern,
    matches: Iterable[Match],
    can_add_node: bool,
    index: Optional[GraphIndex] = None,
) -> ExtensionStatistics:
    """Collect extension tallies from a batch of matches of ``pattern``.

    This is the per-worker scan of ``VSpawn``: for every match, every
    incident graph edge either closes a pair of matched variables (candidate
    closing edge, if not already a pattern edge) or reaches an unmatched
    endpoint (candidate new-node extension).

    With ``index`` the whole batch is tallied by one ragged CSR gather per
    (variable, direction) and an integer group-by, producing the *identical*
    :class:`ExtensionStatistics` (same keys, same pivot sets) at array speed.
    """
    if index is not None:
        return _extension_statistics_indexed(index, pattern, matches, can_add_node)
    stats = ExtensionStatistics()
    pattern_edges = pattern.edge_set()
    pivot_var = pattern.pivot
    for match in matches:
        pivot = match[pivot_var]
        matched = set(match)
        position = {graph_node: var for var, graph_node in enumerate(match)}
        for variable, graph_node in enumerate(match):
            for neighbor, labels in graph.out_neighbors(graph_node).items():
                if neighbor in matched:
                    other = position[neighbor]
                    for label in labels:
                        if (variable, other, label) not in pattern_edges:
                            stats.closing[(variable, other, label)].add(pivot)
                elif can_add_node:
                    endpoint = graph.node_label(neighbor)
                    for label in labels:
                        stats.new_node[(variable, True, label, endpoint)].add(pivot)
            if not can_add_node:
                continue
            for neighbor, labels in graph.in_neighbors(graph_node).items():
                if neighbor in matched:
                    continue  # already tallied from the out side
                endpoint = graph.node_label(neighbor)
                for label in labels:
                    stats.new_node[(variable, False, label, endpoint)].add(pivot)
    return stats


def _group_pivot_sets(
    keys: np.ndarray, pivots: np.ndarray, num_nodes: int
) -> Iterable[Tuple[int, Set[int]]]:
    """Group ``(key, pivot)`` pairs into per-key distinct-pivot sets.

    One sort-based ``np.unique`` over the combined integer replaces the
    per-row set insertion of the dict path.
    """
    if keys.size == 0:
        return
    combined = sort_unique(keys * num_nodes + pivots)
    unique_keys = combined // num_nodes
    unique_pivots = combined % num_nodes
    boundaries = np.flatnonzero(
        np.concatenate(([True], unique_keys[1:] != unique_keys[:-1]))
    )
    ends = np.concatenate((boundaries[1:], [combined.size]))
    for start, end in zip(boundaries.tolist(), ends.tolist()):
        yield int(unique_keys[start]), set(unique_pivots[start:end].tolist())


def _extension_statistics_indexed(
    index: GraphIndex,
    pattern: Pattern,
    matches: Iterable[Match],
    can_add_node: bool,
) -> ExtensionStatistics:
    """Array-speed twin of the per-match ``extension_statistics`` scan."""
    stats = ExtensionStatistics()
    num_vars = pattern.num_nodes
    array = _as_match_array(
        matches if isinstance(matches, (np.ndarray, list)) else list(matches),
        num_vars,
    )
    if array.shape[0] == 0:
        return stats
    num_nodes = index.num_nodes
    num_edge_labels = max(1, len(index.edge_label_values))
    num_node_labels = max(1, len(index.node_label_values))
    pivots = array[:, pattern.pivot]

    # pattern edges as excluded closing keys (labels absent from the graph
    # can never be tallied, so unmapped labels are simply dropped)
    excluded: List[int] = []
    for src, dst, label in pattern.edge_set():
        code = index.edge_label_code_of.get(label)
        if code is not None:
            excluded.append((src * num_vars + dst) * num_edge_labels + code)
    excluded_keys = np.asarray(sorted(excluded), dtype=np.int64)

    closing_key_parts: List[np.ndarray] = []
    closing_pivot_parts: List[np.ndarray] = []
    new_key_parts: List[np.ndarray] = []
    new_pivot_parts: List[np.ndarray] = []

    for variable in range(num_vars):
        column = array[:, variable]
        for outward in (True, False):
            if not outward and not can_add_node:
                break  # in-edges only ever produce new-node tallies
            row, neighbors, labels = index.gather_neighborhoods(column, outward)
            if row.size == 0:
                continue
            # which mapped variable (if any) each neighbor hits — matches
            # are injective, so at most one variable can match
            other_variable = np.full(row.size, -1, dtype=np.int64)
            for candidate in range(num_vars):
                hit = neighbors == array[row, candidate]
                if hit.any():
                    other_variable[hit] = candidate
            in_match = other_variable >= 0
            if outward:
                if in_match.any():
                    keys = (
                        variable * num_vars + other_variable[in_match]
                    ) * num_edge_labels + labels[in_match]
                    pivs = pivots[row[in_match]]
                    if excluded_keys.size:
                        keep = ~np.isin(keys, excluded_keys)
                        keys, pivs = keys[keep], pivs[keep]
                    closing_key_parts.append(keys)
                    closing_pivot_parts.append(pivs)
                if not can_add_node:
                    continue
            free = ~in_match
            if not free.any():
                continue
            endpoint = index.node_label_codes[neighbors[free]]
            keys = (
                (variable * 2 + (1 if outward else 0)) * num_edge_labels
                + labels[free]
            ) * num_node_labels + endpoint
            new_key_parts.append(keys)
            new_pivot_parts.append(pivots[row[free]])

    if closing_key_parts:
        keys = np.concatenate(closing_key_parts)
        pivs = np.concatenate(closing_pivot_parts)
        for key, pivot_set in _group_pivot_sets(keys, pivs, num_nodes):
            label = index.edge_label_values[key % num_edge_labels]
            pair = key // num_edge_labels
            stats.closing[(pair // num_vars, pair % num_vars, label)] = pivot_set
    if new_key_parts:
        keys = np.concatenate(new_key_parts)
        pivs = np.concatenate(new_pivot_parts)
        for key, pivot_set in _group_pivot_sets(keys, pivs, num_nodes):
            endpoint = index.node_label_values[key % num_node_labels]
            rest = key // num_node_labels
            label = index.edge_label_values[rest % num_edge_labels]
            prefix = rest // num_edge_labels
            stats.new_node[
                (prefix // 2, bool(prefix % 2), label, endpoint)
            ] = pivot_set
    return stats


def merge_extension_statistics(
    parts: Sequence[ExtensionStatistics],
) -> ExtensionStatistics:
    """Combine per-shard tallies (the master's aggregation step)."""
    merged = ExtensionStatistics()
    for part in parts:
        merged.merge(part)
    return merged


class ExtensionCounts:
    """Scalar extension tallies for *pivot-disjoint* match shards.

    When every pivot lives on exactly one worker (``ParDis``'s sharding
    invariant), per-key distinct-pivot counts add up across workers, so only
    integers need shipping.  ``prefix_*`` aggregates feed the wildcard
    upgrade decision.
    """

    __slots__ = ("new_node", "closing", "prefix_pivots", "prefix_labels")

    def __init__(self) -> None:
        self.new_node: Dict[NewNodeKey, int] = {}
        self.closing: Dict[ClosingKey, int] = {}
        self.prefix_pivots: Dict[Tuple[int, bool, str], int] = {}
        self.prefix_labels: Dict[Tuple[int, bool, str], Set[str]] = {}


def counts_from_statistics(stats: ExtensionStatistics) -> ExtensionCounts:
    """Collapse one shard's pivot sets into counts (worker-side)."""
    counts = ExtensionCounts()
    prefix_sets: Dict[Tuple[int, bool, str], Set[int]] = defaultdict(set)
    for key, pivots in stats.new_node.items():
        counts.new_node[key] = len(pivots)
        prefix = (key[0], key[1], key[2])
        prefix_sets[prefix] |= pivots
        counts.prefix_labels.setdefault(prefix, set()).add(key[3])
    for key, pivots in stats.closing.items():
        counts.closing[key] = len(pivots)
    counts.prefix_pivots = {
        prefix: len(pivots) for prefix, pivots in prefix_sets.items()
    }
    return counts


def merge_extension_counts(parts: Sequence[ExtensionCounts]) -> ExtensionCounts:
    """Sum per-shard counts (valid under pivot-disjoint sharding)."""
    merged = ExtensionCounts()
    for part in parts:
        for key, count in part.new_node.items():
            merged.new_node[key] = merged.new_node.get(key, 0) + count
        for key, count in part.closing.items():
            merged.closing[key] = merged.closing.get(key, 0) + count
        for prefix, count in part.prefix_pivots.items():
            merged.prefix_pivots[prefix] = (
                merged.prefix_pivots.get(prefix, 0) + count
            )
        for prefix, labels in part.prefix_labels.items():
            merged.prefix_labels.setdefault(prefix, set()).update(labels)
    return merged


def extensions_from_counts(
    pattern: Pattern, counts: ExtensionCounts, config: DiscoveryConfig
) -> List[Extension]:
    """Count-based twin of :func:`extensions_from_statistics` (same order)."""
    extensions: List[Extension] = []
    for (variable, outward, label, endpoint), count in sorted(
        counts.new_node.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        if count >= config.sigma:
            extensions.append(
                Extension(
                    src=variable,
                    dst=pattern.num_nodes,
                    edge_label=label,
                    new_node_label=endpoint,
                    outward=outward,
                )
            )
    for (src, dst, label), count in sorted(
        counts.closing.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        if count >= config.sigma:
            extensions.append(Extension(src=src, dst=dst, edge_label=label))
    return extensions


def wildcard_extensions_from_counts(
    pattern: Pattern, counts: ExtensionCounts, config: DiscoveryConfig
) -> List[Extension]:
    """Count-based twin of :func:`wildcard_extensions_from_statistics`."""
    if not config.enable_wildcards or pattern.num_nodes >= config.k:
        return []
    extensions: List[Extension] = []
    for prefix in sorted(counts.prefix_labels):
        variable, outward, label = prefix
        if (
            len(counts.prefix_labels[prefix]) >= config.wildcard_min_labels
            and counts.prefix_pivots.get(prefix, 0) >= config.sigma
        ):
            extensions.append(
                Extension(
                    src=variable,
                    dst=pattern.num_nodes,
                    edge_label=label,
                    new_node_label=WILDCARD,
                    outward=outward,
                )
            )
    return extensions


def extensions_from_statistics(
    pattern: Pattern, stats: ExtensionStatistics, config: DiscoveryConfig
) -> List[Extension]:
    """Extensions whose witnessing-pivot count reaches ``σ``, ordered by count."""
    extensions: List[Extension] = []
    for (variable, outward, label, endpoint), pivots in sorted(
        stats.new_node.items(), key=lambda kv: (-len(kv[1]), kv[0])
    ):
        if len(pivots) >= config.sigma:
            extensions.append(
                Extension(
                    src=variable,
                    dst=pattern.num_nodes,
                    edge_label=label,
                    new_node_label=endpoint,
                    outward=outward,
                )
            )
    for (src, dst, label), pivots in sorted(
        stats.closing.items(), key=lambda kv: (-len(kv[1]), kv[0])
    ):
        if len(pivots) >= config.sigma:
            extensions.append(Extension(src=src, dst=dst, edge_label=label))
    return extensions


def wildcard_extensions_from_statistics(
    pattern: Pattern, stats: ExtensionStatistics, config: DiscoveryConfig
) -> List[Extension]:
    """Wildcard-endpoint extensions (the paper's label upgrading).

    When the matches of a pattern reach, along one ``(anchor, direction,
    edge label)``, endpoints of at least ``wildcard_min_labels`` distinct
    labels, spawn one extension with a wildcard ``'_'`` endpoint — the
    generalized pattern subsumes the per-label ones (``Q2`` of Example 1).
    """
    if not config.enable_wildcards or pattern.num_nodes >= config.k:
        return []
    diversity: Dict[Tuple[int, bool, str], Set[str]] = defaultdict(set)
    pivots_by_prefix: Dict[Tuple[int, bool, str], Set[int]] = defaultdict(set)
    for (variable, outward, label, endpoint), pivots in stats.new_node.items():
        prefix = (variable, outward, label)
        diversity[prefix].add(endpoint)
        pivots_by_prefix[prefix] |= pivots
    extensions: List[Extension] = []
    for prefix in sorted(diversity):
        variable, outward, label = prefix
        if (
            len(diversity[prefix]) >= config.wildcard_min_labels
            and len(pivots_by_prefix[prefix]) >= config.sigma
        ):
            extensions.append(
                Extension(
                    src=variable,
                    dst=pattern.num_nodes,
                    edge_label=label,
                    new_node_label=WILDCARD,
                    outward=outward,
                )
            )
    return extensions


def data_driven_extensions(
    graph: Graph,
    node: TreeNode,
    config: DiscoveryConfig,
    index: Optional[GraphIndex] = None,
) -> List[Extension]:
    """Sequential convenience: tally the node's whole table and filter."""
    if node.table is None:
        return []
    stats = extension_statistics(
        graph,
        node.pattern,
        node.table.match_array if index is not None else node.table.matches,
        can_add_node=node.pattern.num_nodes < config.k,
        index=index,
    )
    return extensions_from_statistics(node.pattern, stats, config)


def wildcard_extensions(
    graph: Graph,
    node: TreeNode,
    config: DiscoveryConfig,
    index: Optional[GraphIndex] = None,
) -> List[Extension]:
    """Sequential convenience for wildcard upgrades over the node's table."""
    if not config.enable_wildcards or node.table is None:
        return []
    if node.pattern.num_nodes >= config.k:
        return []
    stats = extension_statistics(
        graph,
        node.pattern,
        node.table.match_array if index is not None else node.table.matches,
        can_add_node=True,
        index=index,
    )
    return wildcard_extensions_from_statistics(node.pattern, stats, config)


def speculative_closing_extensions(
    stats: GraphStatistics, node: TreeNode, config: DiscoveryConfig
) -> List[Extension]:
    """Closing edges suggested by frequent label-triples (``NVSpawn`` fodder).

    For each ordered pair of pattern variables without an edge between them,
    propose every *globally frequent* edge label compatible with the two node
    labels.  The data may contain no match with such an edge — producing a
    zero-support pattern whose base (the current pattern) is frequent: a
    negative GFD candidate (Section 4.2, case (a)).
    """
    pattern = node.pattern
    pattern_edges = pattern.edge_set()
    frequent = stats.frequent_triples(config.sigma)
    by_endpoint_labels: Dict[Tuple[str, str], List[str]] = defaultdict(list)
    for src_label, edge_label, dst_label in frequent:
        by_endpoint_labels[(src_label, dst_label)].append(edge_label)

    extensions: List[Extension] = []
    for src in pattern.variables():
        for dst in pattern.variables():
            if src == dst:
                continue
            src_label, dst_label = pattern.labels[src], pattern.labels[dst]
            if src_label == WILDCARD or dst_label == WILDCARD:
                continue
            for edge_label in by_endpoint_labels.get((src_label, dst_label), ()):
                if (src, dst, edge_label) in pattern_edges:
                    continue
                extensions.append(
                    Extension(src=src, dst=dst, edge_label=edge_label)
                )
    return extensions
