"""Result containers for discovery runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..gfd.gfd import GFD
from .generation_tree import GenerationTree

__all__ = ["MiningStats", "DiscoveryResult"]


@dataclass
class MiningStats:
    """Counters describing a discovery run (used by benches and ablations)."""

    patterns_spawned: int = 0
    patterns_frequent: int = 0
    patterns_zero_support: int = 0
    candidates_checked: int = 0
    positives_found: int = 0
    negatives_found: int = 0
    truncated_patterns: int = 0
    sketch_pruned_literals: int = 0
    elapsed_seconds: float = 0.0
    matching_seconds: float = 0.0
    validation_seconds: float = 0.0


@dataclass
class DiscoveryResult:
    """The output of (sequential or parallel) GFD discovery.

    Attributes:
        gfds: the minimum σ-frequent GFDs found (positive and negative).
        supports: ``supp(φ, G)`` per discovered GFD (negatives report their
            base support, Section 4.2).
        stats: run counters.
        tree: the generation tree (kept for ``ParCover`` grouping and for
            inspection; ``None`` when the caller dropped it).
    """

    gfds: List[GFD] = field(default_factory=list)
    supports: Dict[GFD, int] = field(default_factory=dict)
    stats: MiningStats = field(default_factory=MiningStats)
    tree: Optional[GenerationTree] = None

    @property
    def positives(self) -> List[GFD]:
        """The positive GFDs."""
        return [gfd for gfd in self.gfds if gfd.is_positive]

    @property
    def negatives(self) -> List[GFD]:
        """The negative GFDs."""
        return [gfd for gfd in self.gfds if gfd.is_negative]

    def average_support(self) -> float:
        """Mean support over all discovered GFDs (Figure 6's "avg. support")."""
        if not self.gfds:
            return 0.0
        return sum(self.supports.get(gfd, 0) for gfd in self.gfds) / len(self.gfds)

    def sorted_by_support(self) -> List[GFD]:
        """GFDs ordered by decreasing support (stable by textual form)."""
        return sorted(
            self.gfds,
            key=lambda gfd: (-self.supports.get(gfd, 0), str(gfd)),
        )
