"""The paper's primary contribution: GFD discovery and cover computation."""

from .config import DiscoveryConfig, EnforcementConfig, FaultConfig
from .cover import CoverResult, sequential_cover
from .discovery import SequentialDiscovery, discover
from .generation_tree import GenerationTree, TreeNode
from .match_table import MatchTable
from .reduction import (
    gfd_identity,
    gfd_reduces,
    minimal_cover_by_reduction,
    normalize_gfd,
)
from .results import DiscoveryResult, MiningStats
from .sketch import (
    CardinalitySketch,
    ExactCardinalitySketch,
    make_sketch,
    register_sketch,
    sketch_names,
)
from .support import (
    DistinctPivotSketch,
    correlation,
    gfd_support,
    gfd_support_any,
    negative_base_support,
    pattern_support,
    support_set,
)

__all__ = [
    "DiscoveryConfig",
    "EnforcementConfig",
    "FaultConfig",
    "DiscoveryResult",
    "MiningStats",
    "CoverResult",
    "SequentialDiscovery",
    "GenerationTree",
    "TreeNode",
    "MatchTable",
    "discover",
    "sequential_cover",
    "gfd_reduces",
    "gfd_identity",
    "normalize_gfd",
    "minimal_cover_by_reduction",
    "pattern_support",
    "support_set",
    "gfd_support",
    "gfd_support_any",
    "correlation",
    "negative_base_support",
    "CardinalitySketch",
    "DistinctPivotSketch",
    "ExactCardinalitySketch",
    "make_sketch",
    "register_sketch",
    "sketch_names",
]
