"""Unified telemetry: span tracing, metrics registry, and exporters.

See ``docs/ARCHITECTURE.md`` ("Observability") for the span model, the
event taxonomy, and the export formats.  This package is deliberately
dependency-free within ``repro`` so every other subpackage can import it.
"""

from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_SCHEMA_VERSION,
    Tracer,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_metrics,
)
from .export import (
    chrome_trace_document,
    write_chrome_trace,
    write_event_log,
    write_prometheus,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_from_metrics",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_event_log",
    "write_prometheus",
]
