"""Hierarchical span tracing for repro runs.

One :class:`Tracer` lives on the master for the duration of a session and
records two kinds of telemetry:

* **Spans** — timed intervals arranged in a tree::

      session > phase (discover/cover/enforce/refresh)
              > level / stage
              > superstep
              > op (one per work unit, placed on its worker's lane)

  Master-side spans are opened and closed around the instrumented code via
  :meth:`Tracer.span`.  Worker-side op spans are *synthesized* from the
  per-op compute seconds the workers already ship back on the fused
  response transport (see ``parallel/backend.py``), so tracing adds no
  extra round trips: inside a superstep each worker's ops are stacked
  end-to-end from the superstep's start on that worker's lane, mirroring
  how :class:`~repro.parallel.cluster.SimulatedCluster` models makespan.

* **Events** — instantaneous typed records (planner decisions, timeouts,
  retries, respawns, degradations, janitor sweeps, fault-plan arming)
  appended via :meth:`Tracer.event`.

All timestamps are seconds relative to the tracer's construction
(``time.perf_counter`` based, monotonic); ``origin_wall`` keeps the
corresponding wall-clock epoch for export headers.

The disabled path is :data:`NULL_TRACER` — a shared singleton whose
``span`` returns one preallocated no-op context manager and whose other
hooks are constant-time no-ops, so instrumentation left in place costs a
few attribute lookups per call site and nothing else.  Hot loops
additionally guard on ``tracer.enabled`` before composing arguments.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
]

#: Version of the span/event record layout (stamped into every export).
TRACE_SCHEMA_VERSION = 1


class Span:
    """One timed interval in the trace tree.

    ``worker`` is ``None`` for master-side spans and a worker index for
    synthesized worker-lane op spans.  ``t1`` stays ``None`` while the
    span is open.
    """

    __slots__ = ("id", "parent_id", "name", "kind", "t0", "t1", "worker", "args")

    def __init__(
        self,
        id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        t0: float,
        worker: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.id = id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.t0 = t0
        self.t1: Optional[float] = None
        self.worker = worker
        self.args = args

    @property
    def duration(self) -> float:
        """Seconds between open and close (0.0 while still open)."""
        if self.t1 is None:
            return 0.0
        return self.t1 - self.t0

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "id": self.id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
        }
        if self.worker is not None:
            record["worker"] = self.worker
        if self.args:
            record["args"] = dict(self.args)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, kind={self.kind!r}, id={self.id}, "
            f"parent={self.parent_id}, worker={self.worker})"
        )


class Tracer:
    """Master-side span/event recorder (single-threaded, append-only)."""

    #: Instrumented call sites test this before composing span arguments.
    enabled = True

    def __init__(self) -> None:
        #: Wall-clock epoch matching relative time 0.0 (export headers).
        self.origin_wall = time.time()
        self._origin = time.perf_counter()
        #: Closed spans, in close order.
        self.spans: List[Span] = []
        #: Typed instant events, in emit order.
        self.events: List[Dict[str, Any]] = []
        self.spans_opened = 0
        self.spans_closed = 0
        self._stack: List[Span] = []
        self._next_id = 1
        # Worker-lane layout state for the superstep currently open (if
        # any): ops stack end-to-end per worker from the superstep start.
        self._lane_origin: Optional[float] = None
        self._lane_cursors: Dict[int, float] = {}

    # -- clock -----------------------------------------------------------

    def now(self) -> float:
        """Seconds since tracer construction (monotonic)."""
        return time.perf_counter() - self._origin

    # -- master-side spans ----------------------------------------------

    def begin(self, name: str, kind: str = "span", **args: Any) -> Span:
        """Open a span as a child of the innermost open span."""
        parent_id = self._stack[-1].id if self._stack else None
        span = Span(
            self._next_id, parent_id, name, kind, self.now(), args=args or None
        )
        self._next_id += 1
        self.spans_opened += 1
        self._stack.append(span)
        if kind == "superstep":
            self._lane_origin = span.t0
            self._lane_cursors = {}
        return span

    def end(self, span: Optional[Span]) -> None:
        """Close ``span`` (and, defensively, anything opened under it).

        Closing out of order — e.g. when an exception unwinds past inner
        ``begin`` calls — closes the abandoned inner spans at the same
        instant, preserving the every-opened-span-closes invariant.
        """
        if span is None:
            return
        t1 = self.now()
        while self._stack:
            top = self._stack.pop()
            top.t1 = t1
            self.spans.append(top)
            self.spans_closed += 1
            if top is span:
                break
        if span.kind == "superstep":
            self._lane_origin = None
            self._lane_cursors = {}

    @contextmanager
    def span(self, name: str, kind: str = "span", **args: Any) -> Iterator[Span]:
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        span = self.begin(name, kind, **args)
        try:
            yield span
        finally:
            self.end(span)

    # -- worker-lane op spans -------------------------------------------

    def worker_op(
        self, worker: int, op: str, seconds: float, **args: Any
    ) -> None:
        """Record one worker-side op from its piggybacked compute seconds.

        Inside a superstep span the op is placed end-to-end on ``worker``'s
        lane starting at the superstep's start; outside one (unmetered
        paths) it is anchored so it *ends* now.  The span is born closed —
        worker ops never nest.
        """
        seconds = max(0.0, float(seconds))
        if self._lane_origin is not None:
            start = self._lane_cursors.get(worker, self._lane_origin)
            self._lane_cursors[worker] = start + seconds
        else:
            start = max(0.0, self.now() - seconds)
        parent_id = self._stack[-1].id if self._stack else None
        span = Span(
            self._next_id,
            parent_id,
            op,
            "op",
            start,
            worker=worker,
            args=args or None,
        )
        span.t1 = start + seconds
        self._next_id += 1
        self.spans_opened += 1
        self.spans_closed += 1
        self.spans.append(span)

    # -- typed events ----------------------------------------------------

    def event(self, etype: str, **fields: Any) -> None:
        """Append one typed instant event (fields must be JSON-friendly)."""
        record: Dict[str, Any] = {"type": etype, "ts": self.now()}
        record.update(fields)
        self.events.append(record)

    # -- summaries -------------------------------------------------------

    @property
    def open_spans(self) -> Tuple[Span, ...]:
        """Spans begun but not yet ended (root session span, mid-phase)."""
        return tuple(self._stack)

    def workers(self) -> List[int]:
        """Sorted worker indices that appear on any op span."""
        return sorted(
            {span.worker for span in self.spans if span.worker is not None}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(spans={len(self.spans)}, events={len(self.events)}, "
            f"open={len(self._stack)})"
        )


class _NullSpan:
    """Shared no-op context manager returned by :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every hook is a constant-time no-op.

    Records nothing and allocates nothing per call (the ``span`` context
    manager is one shared instance), so instrumentation can stay threaded
    through the hot paths unconditionally.
    """

    enabled = False
    spans: Tuple[Span, ...] = ()
    events: Tuple[Dict[str, Any], ...] = ()
    spans_opened = 0
    spans_closed = 0
    origin_wall = 0.0
    open_spans: Tuple[Span, ...] = ()

    def now(self) -> float:
        return 0.0

    def begin(self, name: str, kind: str = "span", **args: Any) -> None:
        return None

    def end(self, span: Any) -> None:
        return None

    def span(self, name: str, kind: str = "span", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def worker_op(
        self, worker: int, op: str, seconds: float, **args: Any
    ) -> None:
        return None

    def event(self, etype: str, **fields: Any) -> None:
        return None

    def workers(self) -> List[int]:
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTracer()"


#: The process-wide disabled tracer (default everywhere a tracer is optional).
NULL_TRACER = NullTracer()
