"""Trace and metrics exporters.

Three formats, all stamped with ``repro.__version__`` and
:data:`~repro.obs.tracer.TRACE_SCHEMA_VERSION`:

* :func:`write_chrome_trace` — Chrome trace-event JSON (the ``"X"``
  complete-event flavour), viewable in Perfetto / ``chrome://tracing``.
  The master gets thread lane 0 and each worker ``w`` gets lane ``w + 1``;
  typed events appear as instants on the master lane.
* :func:`write_event_log` — one JSON object per line: a header record
  followed by the typed events in emit order.
* :func:`write_prometheus` — the registry's text exposition
  (:meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .metrics import MetricsRegistry
from .tracer import TRACE_SCHEMA_VERSION, Tracer

__all__ = [
    "chrome_trace_document",
    "write_chrome_trace",
    "write_event_log",
    "write_prometheus",
]


def _repro_version() -> str:
    # Imported lazily: ``repro/__init__`` imports this package, and the
    # version is only needed at export time.
    from repro import __version__

    return __version__


def _microseconds(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace_document(tracer: Tracer) -> Dict[str, Any]:
    """Build the Chrome trace-event document for ``tracer`` (in memory)."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "master"},
        },
    ]
    for worker in tracer.workers():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": worker + 1,
                "args": {"name": f"worker {worker}"},
            }
        )
    spans = list(tracer.spans)
    # Spans abandoned open (e.g. an export mid-session) are clamped to the
    # latest known timestamp so the timeline stays well-formed.
    horizon = max(
        [span.t1 for span in spans if span.t1 is not None]
        + [event["ts"] for event in tracer.events]
        + [span.t0 for span in tracer.open_spans],
        default=0.0,
    )
    for span in tracer.open_spans:
        clamped = type(span)(
            span.id, span.parent_id, span.name, span.kind, span.t0,
            worker=span.worker, args=span.args,
        )
        clamped.t1 = max(horizon, span.t0)
        spans.append(clamped)
    for span in sorted(spans, key=lambda s: (s.t0, s.id)):
        end = span.t1 if span.t1 is not None else span.t0
        record: Dict[str, Any] = {
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "pid": 0,
            "tid": 0 if span.worker is None else span.worker + 1,
            "ts": _microseconds(span.t0),
            "dur": _microseconds(max(0.0, end - span.t0)),
        }
        if span.args:
            record["args"] = dict(span.args)
        events.append(record)
    for event in tracer.events:
        events.append(
            {
                "name": event["type"],
                "cat": "event",
                "ph": "i",
                "pid": 0,
                "tid": 0,
                "ts": _microseconds(event["ts"]),
                "s": "t",
                "args": {
                    key: value
                    for key, value in event.items()
                    if key not in ("type", "ts")
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": TRACE_SCHEMA_VERSION,
            "repro_version": _repro_version(),
            "origin_wall_unix": tracer.origin_wall,
            "spans": len(tracer.spans),
            "events": len(tracer.events),
        },
    }


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write the Chrome trace-event JSON for ``tracer`` to ``path``."""
    path = Path(path)
    document = chrome_trace_document(tracer)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def write_event_log(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write the typed-event JSONL log: one header line, one line per event."""
    path = Path(path)
    header = {
        "record": "header",
        "schema_version": TRACE_SCHEMA_VERSION,
        "repro_version": _repro_version(),
        "origin_wall_unix": tracer.origin_wall,
        "events": len(tracer.events),
    }
    lines = [json.dumps(header, sort_keys=True)]
    for event in tracer.events:
        lines.append(json.dumps(event, sort_keys=True))
    path.write_text("\n".join(lines) + "\n")
    return path


def write_prometheus(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write the registry's Prometheus text exposition to ``path``."""
    path = Path(path)
    body = registry.to_prometheus()
    stamp = (
        f'# HELP repro_build_info build metadata\n'
        f'# TYPE repro_build_info gauge\n'
        f'repro_build_info{{version="{_repro_version()}"}} 1\n'
    )
    path.write_text(stamp + body)
    return path
