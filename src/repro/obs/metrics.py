"""A small metrics registry: named counters, gauges, and histograms.

The registry unifies the accounting that previously lived in four
unrelated structures — ``TransferLedger``, ``LifecycleCounters``,
``ClusterMetrics``, and the planner/fault counters — behind one name +
label model with a Prometheus-style text exposition
(:meth:`MetricsRegistry.to_prometheus`) for the future serving layer.

:func:`registry_from_metrics` bridges a
:meth:`repro.session.SessionMetrics.as_dict` payload into a registry, so
``Session.metrics().registry()`` needs no bespoke export code per source
structure.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_from_metrics",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    # Prometheus text format: backslash, double quote, and newline must be
    # escaped inside label values (rule-text labels contain quotes)
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + body + "}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)
    TYPE = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def samples(self) -> Iterator[Tuple[str, float]]:
        yield "", self.value


class Gauge:
    """A value that can go up or down (set to the latest reading)."""

    __slots__ = ("value",)
    TYPE = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self) -> Iterator[Tuple[str, float]]:
        yield "", self.value


class Histogram:
    """Fixed-bucket histogram (cumulative ``le`` buckets, Prometheus style)."""

    __slots__ = ("buckets", "counts", "count", "sum")
    TYPE = "histogram"

    #: Default bucket upper bounds, in seconds — spans op/phase durations
    #: from sub-millisecond chase steps to multi-minute discovery runs.
    DEFAULT_BUCKETS: Tuple[float, ...] = (
        0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0,
    )

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(buckets) if buckets is not None else self.DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Prometheus-style linear interpolation within the bucket that
        crosses rank ``q·count``; observations above the last finite bound
        clamp to that bound (the +Inf bucket has no width to interpolate
        over).  Returns 0.0 with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        previous_bound = 0.0
        previous_count = 0
        for bound, cumulative in zip(self.buckets, self.counts):
            if cumulative >= rank:
                in_bucket = cumulative - previous_count
                if in_bucket <= 0:
                    return bound
                fraction = (rank - previous_count) / in_bucket
                return previous_bound + (bound - previous_bound) * fraction
            previous_bound = bound
            previous_count = cumulative
        return self.buckets[-1] if self.buckets else 0.0

    def samples(self) -> Iterator[Tuple[str, float]]:
        for bound, count in zip(self.buckets, self.counts):
            yield f'_bucket{{le="{bound}"}}', float(count)
        yield '_bucket{le="+Inf"}', float(self.count)
        yield "_sum", self.sum
        yield "_count", float(self.count)


class MetricsRegistry:
    """Get-or-create registry of metrics keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}
        self._types: Dict[str, type] = {}

    def _get(self, cls: type, name: str, labels: Mapping[str, Any], **kwargs: Any):
        existing_type = self._types.get(name)
        if existing_type is not None and existing_type is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{existing_type.__name__}, not {cls.__name__}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(**kwargs)
            self._metrics[key] = metric
            self._types[name] = cls
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Tuple[str, LabelKey, Any]]:
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda item: item[0]
        ):
            yield name, labels, metric

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Flat ``{name: {suffix+labels: value}}`` view (sorted, JSON-safe).

        Histograms surface their ``_sum``/``_count``/bucket samples as
        suffixed inner keys, mirroring the text exposition.
        """
        report: Dict[str, Dict[str, float]] = {}
        for name, labels, metric in self:
            label_string = _format_labels(labels)
            for suffix, value in metric.samples():
                report.setdefault(name, {})[suffix + label_string] = value
        return report

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4), sorted.

        Deterministic: metrics sort by name then label set, so two runs
        with identical counts produce identical text.
        """
        lines: List[str] = []
        last_name: Optional[str] = None
        for name, labels, metric in self:
            if name != last_name:
                lines.append(f"# TYPE {name} {metric.TYPE}")
                last_name = name
            for suffix, value in metric.samples():
                if suffix.startswith("_bucket"):
                    # merge histogram le label with the metric labels
                    le = suffix[len("_bucket") :]
                    base = _format_labels(labels)
                    if base:
                        merged = base[:-1] + "," + le[1:]
                    else:
                        merged = le
                    lines.append(f"{name}_bucket{merged} {_render(value)}")
                elif suffix:
                    lines.append(
                        f"{name}{suffix}{_format_labels(labels)} {_render(value)}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(labels)} {_render(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def registry_from_metrics(payload: Mapping[str, Any]) -> MetricsRegistry:
    """Bridge a ``SessionMetrics.as_dict()`` payload into a registry.

    Counts become ``repro_*_total`` counters, wall-clock figures become
    gauges under their ``timings`` names, and planner EWMA rates become
    per-``(phase, backend)`` labelled gauges.
    """
    registry = MetricsRegistry()
    registry.gauge("repro_num_workers").set(payload.get("num_workers", 0))
    for phase, count in (payload.get("phases") or {}).items():
        registry.counter("repro_phase_runs_total", phase=phase).inc(count)
    registry.counter("repro_backend_starts_total").inc(
        payload.get("backend_starts", 0)
    )
    for name, count in (payload.get("lifecycle") or {}).items():
        registry.counter(f"repro_lifecycle_{name}_total").inc(count)
    for name, count in (payload.get("faults") or {}).items():
        registry.counter(f"repro_fault_{name}_total").inc(count)
    for name, count in (payload.get("transfers") or {}).items():
        registry.counter(f"repro_transfer_{name}_total").inc(count)
    for name, count in (payload.get("cluster") or {}).items():
        registry.counter(f"repro_cluster_{name}_total").inc(count)
    registry.gauge("repro_sigma_size").set(payload.get("sigma_size", 0))
    timings = payload.get("timings") or {}
    for name, value in timings.items():
        if name == "planner":
            for phase, rates in value.items():
                for backend, rate in rates.items():
                    registry.gauge(
                        "repro_planner_seconds_per_item",
                        phase=phase,
                        backend=backend,
                    ).set(rate)
        elif isinstance(value, (int, float)):
            registry.gauge(f"repro_{name}").set(value)
    return registry
