"""Random GFD sets for implication/cover benchmarks (Section 7).

"To test the scalability of GFD implication, we developed a generator to
produce sets Σ of GFDs, controlled by |Σ| (up to 10000) and k (up to 6).
It generates GFDs with frequent edges and values from real-life graphs,
using the same attribute set Γ."

The generator takes the frequent label-triples and frequent attribute
values of a graph (any of the dataset generators) and produces ``|Σ|``
GFDs over patterns of up to ``k`` variables.  A controlled fraction of the
output is *derived* — literal-weakened or pattern-extended variants of base
GFDs that the base implies — so cover computation has real redundancy to
remove (Figures 5(i)-(l)).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..gfd.gfd import GFD
from ..gfd.literals import ConstantLiteral, Literal
from ..graph.graph import Graph
from ..graph.statistics import GraphStatistics, compute_statistics
from ..pattern.pattern import Pattern

__all__ = ["generate_gfds"]


def _random_pattern(
    rng: random.Random,
    triples: Sequence[Tuple[str, str, str]],
    k: int,
) -> Pattern:
    """A connected pattern grown from frequent label-triples, ≤ k nodes."""
    src_label, edge_label, dst_label = rng.choice(triples)
    labels: List[str] = [src_label, dst_label]
    edges: List[Tuple[int, int, str]] = [(0, 1, edge_label)]
    target_nodes = rng.randint(2, max(2, k))
    while len(labels) < target_nodes:
        anchor = rng.randrange(len(labels))
        anchor_label = labels[anchor]
        outgoing = [t for t in triples if t[0] == anchor_label]
        incoming = [t for t in triples if t[2] == anchor_label]
        if outgoing and (not incoming or rng.random() < 0.5):
            _, edge_label, dst_label = rng.choice(outgoing)
            labels.append(dst_label)
            edges.append((anchor, len(labels) - 1, edge_label))
        elif incoming:
            src_label, edge_label, _ = rng.choice(incoming)
            labels.append(src_label)
            edges.append((len(labels) - 1, anchor, edge_label))
        else:
            break
    return Pattern(labels, edges, pivot=0)


def _random_literal(
    rng: random.Random,
    stats: GraphStatistics,
    pattern: Pattern,
    attributes: Sequence[str],
) -> Optional[ConstantLiteral]:
    """A constant literal over a frequent value of some pattern variable."""
    variables = list(pattern.variables())
    rng.shuffle(variables)
    for variable in variables:
        label = pattern.labels[variable]
        attrs = list(attributes)
        rng.shuffle(attrs)
        for attr in attrs:
            values = stats.top_values(label, attr, limit=5)
            if values:
                return ConstantLiteral(variable, attr, rng.choice(values))
    return None


def generate_gfds(
    graph: Graph,
    count: int,
    k: int = 3,
    attributes: Optional[Sequence[str]] = None,
    redundancy: float = 0.5,
    seed: int = 0,
    stats: Optional[GraphStatistics] = None,
) -> List[GFD]:
    """Generate ``count`` GFDs over ``graph``'s frequent structure.

    Args:
        graph: source of frequent triples and values.
        count: ``|Σ|``.
        k: pattern-variable bound.
        attributes: the attribute set Γ (default: the graph's top 5).
        redundancy: fraction of *derived* GFDs (implied by a base GFD
            already in the output) — what cover computation removes.
        seed: RNG seed.
        stats: pre-computed graph statistics (recomputed when omitted).

    The generated set is syntactic — it need not be satisfied by ``graph``;
    implication and cover computation are graph-independent analyses.
    """
    rng = random.Random(seed)
    stats = stats or compute_statistics(graph)
    gamma = list(attributes) if attributes is not None else stats.top_attributes(5)
    triples = stats.frequent_triples(threshold=1)
    if not triples:
        raise ValueError("graph has no edges to derive patterns from")

    base: List[GFD] = []
    derived: List[GFD] = []
    attempts = 0
    while len(base) + len(derived) < count and attempts < count * 50:
        attempts += 1
        make_derived = base and rng.random() < redundancy
        if make_derived:
            origin = rng.choice(base)
            gfd = _derive(rng, origin, stats, gamma, triples, k)
            if gfd is not None:
                derived.append(gfd)
            continue
        pattern = _random_pattern(rng, triples, k)
        lhs_literal = _random_literal(rng, stats, pattern, gamma)
        rhs = _random_literal(rng, stats, pattern, gamma)
        if rhs is None:
            continue
        lhs: frozenset = frozenset()
        if lhs_literal is not None and lhs_literal != rhs and rng.random() < 0.7:
            lhs = frozenset({lhs_literal})
        if rhs in lhs:
            continue
        base.append(GFD(pattern, lhs, rhs))
    sigma = base + derived
    rng.shuffle(sigma)
    return sigma[:count]


def _derive(
    rng: random.Random,
    origin: GFD,
    stats: GraphStatistics,
    gamma: Sequence[str],
    triples: Sequence[Tuple[str, str, str]],
    k: int,
) -> Optional[GFD]:
    """A GFD implied by ``origin``: literal-strengthened or pattern-extended.

    * adding a literal to the LHS keeps the implication (``origin`` embeds
    with ``f(X) ⊆ X'``);
    * appending an edge/node to the pattern likewise keeps ``origin``
    embedded.
    """
    if rng.random() < 0.5:
        extra = _random_literal(rng, stats, origin.pattern, gamma)
        if extra is None or extra == origin.rhs or extra in origin.lhs:
            return None
        return GFD(origin.pattern, origin.lhs | {extra}, origin.rhs)
    pattern = origin.pattern
    if pattern.num_nodes >= k:
        return None
    anchor = rng.randrange(pattern.num_nodes)
    anchor_label = pattern.labels[anchor]
    outgoing = [t for t in triples if t[0] == anchor_label]
    if not outgoing:
        return None
    _, edge_label, dst_label = rng.choice(outgoing)
    extended = pattern.with_new_node(dst_label, anchor, True, edge_label)
    return GFD(extended, origin.lhs, origin.rhs)
