"""The paper's synthetic graph generator (Section 7, "Experimental setting").

"We also developed a generator for synthetic graphs G = (V, E, L, F_A),
controlled by the numbers |V| of nodes (up to 30 million) and edges |E| (up
to 60 million), with L drawn from a set of 30 labels, and F_A assigning a
set Γ of 5 active attributes, where each A ∈ Γ draws a value from 1000
values."

This reproduction keeps the paper's parameterization and adds a
``regularity`` knob so mining has rules to find: a configurable fraction of
nodes obeys label-determined attribute values and label-directed edges
(frequent triples), the rest is uniform noise.  Everything is seeded.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..graph.graph import Graph

__all__ = ["synthetic_graph", "SYNTHETIC_ATTRIBUTES"]

#: The active attributes Γ of the synthetic generator (|Γ| = 5, per paper).
SYNTHETIC_ATTRIBUTES = ["a0", "a1", "a2", "a3", "a4"]


def synthetic_graph(
    num_nodes: int,
    num_edges: int,
    num_labels: int = 30,
    num_values: int = 1000,
    regularity: float = 0.8,
    seed: int = 0,
    attributes: Optional[Sequence[str]] = None,
) -> Graph:
    """Generate a synthetic property graph.

    Args:
        num_nodes: ``|V|``.
        num_edges: ``|E|`` (self-loops excluded; duplicate edges retried).
        num_labels: size of the label alphabet (paper: 30).
        num_values: values per attribute (paper: 1000).
        regularity: fraction of nodes/edges following the planted structure
            — regular nodes of label ``L_i`` set ``a0 = v_i`` and ``a1 =
            v_{i mod 7}``; regular edges run ``L_i → L_{(i+1) mod labels}``
            with edge label ``e_{i mod 10}``.  The remainder is uniform.
        seed: RNG seed (all output is deterministic in it).
        attributes: attribute names (default :data:`SYNTHETIC_ATTRIBUTES`).

    Returns the generated :class:`~repro.graph.graph.Graph`.
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    rng = random.Random(seed)
    attrs = list(attributes) if attributes is not None else list(SYNTHETIC_ATTRIBUTES)
    labels = [f"L{i}" for i in range(num_labels)]
    edge_labels = [f"e{i}" for i in range(10)]
    values = [f"v{i}" for i in range(num_values)]

    graph = Graph()
    node_label_index: List[int] = []
    for node in range(num_nodes):
        label_index = rng.randrange(num_labels)
        node_attrs = {}
        regular = rng.random() < regularity
        if regular:
            node_attrs[attrs[0]] = values[label_index % num_values]
            node_attrs[attrs[1]] = values[label_index % 7]
        else:
            node_attrs[attrs[0]] = rng.choice(values)
            node_attrs[attrs[1]] = rng.choice(values)
        # the remaining attributes are sparse and uniform
        for attr in attrs[2:]:
            if rng.random() < 0.4:
                node_attrs[attr] = rng.choice(values)
        graph.add_node(labels[label_index], node_attrs)
        node_label_index.append(label_index)

    # bucket nodes by label for structured edge endpoints
    by_label: List[List[int]] = [[] for _ in range(num_labels)]
    for node, label_index in enumerate(node_label_index):
        by_label[label_index].append(node)

    added = 0
    attempts = 0
    max_attempts = num_edges * 20
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        src = rng.randrange(num_nodes)
        src_label = node_label_index[src]
        if rng.random() < regularity:
            target_label = (src_label + 1) % num_labels
            bucket = by_label[target_label]
            if not bucket:
                continue
            dst = bucket[rng.randrange(len(bucket))]
            label = edge_labels[src_label % 10]
        else:
            dst = rng.randrange(num_nodes)
            label = rng.choice(edge_labels)
        if dst == src:
            continue
        if graph.add_edge(src, dst, label):
            added += 1
    return graph
