"""The paper's Figure 1 / Example 1, as runnable objects.

Three small graphs with real-world errors, the patterns ``Q1``–``Q3`` and
the GFDs ``φ1``–``φ3`` that catch them:

* ``G1`` (YAGO3): high-jumper John Winter credited with producing the film
  *Selling Out* — caught by ``φ1 = Q1[x,y](y.type = "film" → x.type =
  "producer")``;
* ``G2`` (YAGO3): Saint Petersburg located in both Russia and Florida —
  caught by ``φ2 = Q2[x,y,z](∅ → y.name = z.name)`` with wildcard ``y, z``;
* ``G3`` (DBpedia): John Brown and Owen Brown each other's parent — caught
  by the negative ``φ3 = Q3[x,y](∅ → false)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..gfd.gfd import GFD
from ..gfd.literals import FALSE, ConstantLiteral, make_variable_literal
from ..graph.builder import GraphBuilder
from ..graph.graph import Graph
from ..pattern.pattern import WILDCARD, Pattern

__all__ = ["Figure1", "load_figure1"]


@dataclass
class Figure1:
    """All artifacts of the paper's Example 1."""

    g1: Graph
    g2: Graph
    g3: Graph
    q1: Pattern
    q2: Pattern
    q3: Pattern
    phi1: GFD
    phi2: GFD
    phi3: GFD

    def graphs(self) -> Dict[str, Graph]:
        """The three graphs keyed by name."""
        return {"G1": self.g1, "G2": self.g2, "G3": self.g3}

    def gfds(self) -> Dict[str, GFD]:
        """The three GFDs keyed by name."""
        return {"phi1": self.phi1, "phi2": self.phi2, "phi3": self.phi3}


def load_figure1() -> Figure1:
    """Build the Figure 1 graphs, patterns and GFDs."""
    # G1: John Winter (a high jumper) wrongly credited with Selling Out.
    b1 = GraphBuilder()
    b1.node("john_winter", "person", name="John Winter", type="high jumper")
    b1.node("selling_out", "product", name="Selling Out", type="film")
    b1.edge("john_winter", "selling_out", "create")
    g1, _ = b1.build()

    # G2: Saint Petersburg located in two places.
    b2 = GraphBuilder()
    b2.node("saint_petersburg", "city", name="Saint Petersburg")
    b2.node("russia", "country", name="Russia")
    b2.node("florida", "city", name="Florida")
    b2.edge("saint_petersburg", "russia", "located")
    b2.edge("saint_petersburg", "florida", "located")
    g2, _ = b2.build()

    # G3: John Brown and Owen Brown are each other's parent.
    b3 = GraphBuilder()
    b3.node("owen", "person", name="Owen Brown")
    b3.node("john", "person", name="John Brown")
    b3.edge("owen", "john", "parent")
    b3.edge("john", "owen", "parent")
    g3, _ = b3.build()

    # Q1: person -create-> product, pivoted at the person.
    q1 = Pattern(["person", "product"], [(0, 1, "create")], pivot=0)
    # Q2: city located in two wildcard places, pivoted at the city.
    q2 = Pattern(
        ["city", WILDCARD, WILDCARD],
        [(0, 1, "located"), (0, 2, "located")],
        pivot=0,
    )
    # Q3: two persons that are each other's parent.
    q3 = Pattern(
        ["person", "person"], [(0, 1, "parent"), (1, 0, "parent")], pivot=0
    )

    phi1 = GFD(
        q1,
        frozenset({ConstantLiteral(1, "type", "film")}),
        ConstantLiteral(0, "type", "producer"),
    )
    phi2 = GFD(q2, frozenset(), make_variable_literal(1, "name", 2, "name"))
    phi3 = GFD(q3, frozenset(), FALSE)
    return Figure1(g1, g2, g3, q1, q2, q3, phi1, phi2, phi3)
