"""Error injection for the detection experiments (Exp-5).

The paper's protocol: "we randomly drew α% of nodes and for each such node
v, changed β% of either the active attribute values or the labels of edges
of v ..., with values that did not appear in YAGO2."  The ground truth
``V^E`` is the set of perturbed nodes; detection accuracy is
``|V^X ∩ V^E| / |V^E|``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..graph.graph import Graph

__all__ = ["NoiseReport", "inject_noise"]


@dataclass
class NoiseReport:
    """What :func:`inject_noise` changed."""

    dirty_nodes: Set[int] = field(default_factory=set)
    attribute_changes: int = 0
    edge_label_changes: int = 0

    @property
    def total_changes(self) -> int:
        """Number of individual perturbations applied."""
        return self.attribute_changes + self.edge_label_changes


def inject_noise(
    graph: Graph,
    alpha: float = 0.1,
    beta: float = 0.5,
    attributes: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> Tuple[Graph, NoiseReport]:
    """Perturb a copy of ``graph`` per the Exp-5 protocol.

    Args:
        graph: the clean graph (left untouched).
        alpha: fraction of nodes to dirty (the paper's α%).
        beta: per dirty node, fraction of its attribute values / incident
            edge labels to change (the paper's β%).
        attributes: restrict attribute perturbation to these names (the
            active attributes Γ); ``None`` = all attributes of the node.
        seed: RNG seed.

    Returns ``(dirty_graph, report)``; changed values are fresh strings that
    do not occur anywhere in the input (per the protocol, "values that did
    not appear").
    """
    if not 0 <= alpha <= 1 or not 0 <= beta <= 1:
        raise ValueError("alpha and beta must be fractions in [0, 1]")
    rng = random.Random(seed)
    dirty = graph.copy()
    report = NoiseReport()
    fresh_counter = 0

    node_count = dirty.num_nodes
    sample_size = round(alpha * node_count)
    if sample_size == 0:
        return dirty, report
    chosen = rng.sample(range(node_count), sample_size)
    for node in sorted(chosen):
        report.dirty_nodes.add(node)
        # collect perturbation slots: attribute values and incident edges
        attr_slots = [
            attr
            for attr in sorted(dirty.node_attrs(node))
            if attributes is None or attr in attributes
        ]
        edge_slots = [
            (node, dst, label)
            for dst, labels in sorted(dirty.out_neighbors(node).items())
            for label in sorted(labels)
        ]
        slots: List[Tuple[str, object]] = [("attr", a) for a in attr_slots]
        slots += [("edge", e) for e in edge_slots]
        if not slots:
            continue
        change_count = max(1, round(beta * len(slots)))
        for kind, slot in rng.sample(slots, min(change_count, len(slots))):
            fresh_counter += 1
            fresh = f"__noise_{fresh_counter}"
            if kind == "attr":
                dirty.set_attr(node, slot, fresh)
                report.attribute_changes += 1
            else:
                src, dst, label = slot
                dirty.relabel_edge(src, dst, label, fresh)
                report.edge_label_changes += 1
    return dirty, report
