"""Scale-model knowledge graphs standing in for DBpedia, YAGO2 and IMDB.

The paper evaluates on three real-life knowledge graphs (Section 7):
DBpedia (1.72M entities / 31M links, 200 node types, 160 edge types — the
densest), YAGO2 (1.99M / 5.65M, 13 / 36) and IMDB (3.4M / 5.1M, 15 / 5).
The dumps are not redistributable here, so these generators produce graphs
with the same *relative shape* — type/relation-count ratios, density
ordering (DBpedia ≫ YAGO2 > IMDB edges-per-node), 5 active attributes with
few frequent values — at a size controlled by ``scale``.

Each generator *plants* the regularities the paper's qualitative results
exhibit, so discovery has ground truth to find:

* constant-binding positive GFDs (φ1-style: film creators are producers);
* a variable-literal GFD (GFD1 of Figure 8: children inherit familyname);
* a structural negative (φ3: mutual ``parent`` edges never occur);
* literal negatives (GFD2/GFD3 of Figure 8: no film holds both the Gold
  Bear and the Gold Lion; nobody is a citizen of both the US and Norway).

Generated graphs are *clean*; :mod:`repro.datasets.noise` injects the
errors for the detection experiments (Exp-5).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..graph.graph import Graph

__all__ = ["dbpedia_like", "yago2_like", "imdb_like", "KB_ATTRIBUTES"]

#: The five active attributes Γ shared by the KB generators.
KB_ATTRIBUTES = ["type", "name", "familyname", "country", "gender"]

_FAMILY_NAMES = [
    "Winter", "Brown", "Smith", "Chen", "Garcia", "Muller", "Rossi",
    "Tanaka", "Novak", "Larsen", "Okafor", "Silva", "Kumar", "Dubois",
]
_COUNTRY_NAMES = [
    "US", "Norway", "Russia", "Germany", "France", "Italy", "Japan",
    "Brazil", "India", "China", "Spain", "Mexico",
]
_AWARD_NAMES = ["Gold Bear", "Gold Lion", "Palme", "Oscar", "Cesar"]
_GENRES = ["drama", "comedy", "thriller", "documentary", "animation"]


def _family(rng: random.Random) -> str:
    return rng.choice(_FAMILY_NAMES)


def _gender(rng: random.Random) -> str:
    return rng.choice(["female", "male"])


class _KBBuilder:
    """Shared machinery of the three generators."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.graph = Graph()

    # -- entity pools ---------------------------------------------------
    def countries(self) -> List[int]:
        nodes = []
        for name in _COUNTRY_NAMES:
            nodes.append(
                self.graph.add_node("country", {"type": "country", "name": name})
            )
        return nodes

    def awards(self) -> List[int]:
        nodes = []
        for name in _AWARD_NAMES:
            nodes.append(
                self.graph.add_node("award", {"type": "award", "name": name})
            )
        return nodes

    def cities(self, count: int, countries: Sequence[int]) -> List[int]:
        nodes = []
        for index in range(count):
            country = self.rng.choice(list(countries))
            city = self.graph.add_node(
                "city",
                {
                    "type": "city",
                    "name": f"city{index}",
                    "country": self.graph.get_attr(country, "name"),
                },
            )
            # located is functional: exactly one country per city (φ2's rule)
            self.graph.add_edge(city, country, "located")
            nodes.append(city)
        return nodes

    def persons(
        self, count: int, kind: str, countries: Sequence[int]
    ) -> List[int]:
        nodes = []
        for index in range(count):
            family = _family(self.rng)
            person = self.graph.add_node(
                "person",
                {
                    "type": kind,
                    "name": f"{kind}{index} {family}",
                    "familyname": family,
                    "gender": _gender(self.rng),
                },
            )
            nodes.append(person)
        return nodes

    def citizenships(self, persons: Sequence[int], countries: Sequence[int]) -> None:
        """Each person is citizen of one country; US and Norway disjoint.

        A minority gets dual citizenship, but never the US+Norway pair —
        GFD3 of Figure 8 ("Norway does not admit dual citizenship").
        """
        us = next(
            c for c in countries if self.graph.get_attr(c, "name") == "US"
        )
        norway = next(
            c for c in countries if self.graph.get_attr(c, "name") == "Norway"
        )
        for person in persons:
            first = self.rng.choice(list(countries))
            self.graph.add_edge(person, first, "citizen")
            self.graph.set_attr(
                person, "country", self.graph.get_attr(first, "name")
            )
            if self.rng.random() < 0.15:
                second = self.rng.choice(list(countries))
                forbidden = (
                    (first == us and second == norway)
                    or (first == norway and second == us)
                    or second == first
                )
                if not forbidden:
                    self.graph.add_edge(person, second, "citizen")

    def parents(self, persons: Sequence[int], fraction: float = 0.5) -> None:
        """Acyclic parent/hasChild edges; children inherit the familyname.

        Mutual ``parent`` pairs never occur (φ3), and ``hasChild`` mirrors
        ``parent`` so GFD1's wildcard pattern has support.  Each child gets
        exactly one parent, and familynames are propagated top-down after
        all edges are chosen, so inheritance is globally consistent (GFD1:
        ``hasChild(x, y) → x.familyname = y.familyname``).
        """
        persons = list(persons)
        count = int(len(persons) * fraction)
        parent_of: Dict[int, int] = {}
        for _ in range(count):
            child_pos = self.rng.randrange(1, len(persons))
            parent_pos = self.rng.randrange(0, child_pos)
            if child_pos in parent_of:
                continue
            parent_of[child_pos] = parent_pos
            child, parent = persons[child_pos], persons[parent_pos]
            self.graph.add_edge(child, parent, "parent")
            self.graph.add_edge(parent, child, "hasChild")
        # parents precede children in ``persons``; one increasing pass
        # finalizes every parent's familyname before its children's.
        for child_pos in sorted(parent_of):
            child = persons[child_pos]
            parent = persons[parent_of[child_pos]]
            self.graph.set_attr(
                child, "familyname", self.graph.get_attr(parent, "familyname")
            )

    def products(self, count: int, kind: str) -> List[int]:
        nodes = []
        for index in range(count):
            nodes.append(
                self.graph.add_node(
                    "product",
                    {"type": kind, "name": f"{kind}{index}"},
                )
            )
        return nodes

    def creations(
        self, creators: Sequence[int], products: Sequence[int], per_creator: int = 1
    ) -> None:
        """Each product created by one creator (φ1's scope)."""
        creators = list(creators)
        for index, product in enumerate(products):
            creator = creators[index % len(creators)]
            self.graph.add_edge(creator, product, "create")
            for _ in range(per_creator - 1):
                extra = self.rng.choice(creators)
                self.graph.add_edge(extra, product, "create")

    def award_wins(self, films: Sequence[int], awards: Sequence[int]) -> None:
        """Films win awards; Gold Bear and Gold Lion are mutually exclusive.

        GFD2 of Figure 8: festival rules make the pair impossible.
        """
        bear = next(
            a for a in awards if self.graph.get_attr(a, "name") == "Gold Bear"
        )
        lion = next(
            a for a in awards if self.graph.get_attr(a, "name") == "Gold Lion"
        )
        for film in films:
            if self.rng.random() >= 0.6:
                continue
            won = self.rng.sample(list(awards), k=self.rng.randint(1, 2))
            if bear in won and lion in won:
                won.remove(lion)
            for award in won:
                self.graph.add_edge(film, award, "receive")

    def random_links(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        label: str,
        count: int,
    ) -> None:
        """Unstructured filler edges (keeps mining honest)."""
        sources, targets = list(sources), list(targets)
        if not sources or not targets:
            return
        for _ in range(count):
            src = self.rng.choice(sources)
            dst = self.rng.choice(targets)
            if src != dst:
                self.graph.add_edge(src, dst, label)


def yago2_like(scale: float = 1.0, seed: int = 0) -> Graph:
    """A YAGO2-shaped knowledge graph (few types, moderate density).

    At ``scale=1.0``: roughly 1.5k nodes and 3.5k edges with the planted
    rules described in the module docstring.
    """
    kb = _KBBuilder(seed)
    size = max(1, round(120 * scale))
    countries = kb.countries()
    awards = kb.awards()
    cities = kb.cities(size, countries)
    producers = kb.persons(2 * size, "producer", countries)
    actors = kb.persons(3 * size, "actor", countries)
    scientists = kb.persons(2 * size, "scientist", countries)
    films = kb.products(2 * size, "film")
    books = kb.products(size, "book")
    kb.creations(producers, films)
    kb.creations(scientists, books)
    kb.citizenships(producers + actors + scientists, countries)
    kb.parents(producers + actors + scientists, fraction=0.45)
    kb.award_wins(films, awards)
    kb.random_links(actors, films, "actedIn", 5 * size)
    kb.random_links(scientists, cities, "livesIn", 2 * size)
    return kb.graph


def dbpedia_like(scale: float = 1.0, seed: int = 0) -> Graph:
    """A DBpedia-shaped knowledge graph (more types, clearly denser)."""
    kb = _KBBuilder(seed)
    size = max(1, round(100 * scale))
    countries = kb.countries()
    awards = kb.awards()
    cities = kb.cities(2 * size, countries)
    producers = kb.persons(2 * size, "producer", countries)
    actors = kb.persons(2 * size, "actor", countries)
    musicians = kb.persons(2 * size, "musician", countries)
    politicians = kb.persons(size, "politician", countries)
    films = kb.products(2 * size, "film")
    albums = kb.products(2 * size, "album")
    books = kb.products(size, "book")
    organisations = []
    for index in range(size):
        organisations.append(
            kb.graph.add_node(
                "organisation",
                {"type": "organisation", "name": f"org{index}"},
            )
        )
    kb.creations(producers, films)
    kb.creations(musicians, albums)
    kb.creations(politicians, books)
    kb.citizenships(
        producers + actors + musicians + politicians, countries
    )
    kb.parents(producers + actors + musicians + politicians, fraction=0.5)
    kb.award_wins(films, awards)
    kb.award_wins(albums, awards)
    # density filler: DBpedia has an order of magnitude more links per node
    people = producers + actors + musicians + politicians
    kb.random_links(actors, films, "actedIn", 12 * size)
    kb.random_links(people, organisations, "memberOf", 12 * size)
    kb.random_links(people, cities, "bornIn", 10 * size)
    kb.random_links(organisations, cities, "basedIn", 6 * size)
    kb.random_links(musicians, albums, "performedOn", 8 * size)
    kb.random_links(people, people, "knows", 8 * size)
    return kb.graph


def imdb_like(scale: float = 1.0, seed: int = 0) -> Graph:
    """An IMDB-shaped knowledge graph (few relation types, sparsest)."""
    kb = _KBBuilder(seed)
    size = max(1, round(150 * scale))
    countries = kb.countries()
    genres = []
    for name in _GENRES:
        genres.append(
            kb.graph.add_node("genre", {"type": "genre", "name": name})
        )
    directors = kb.persons(size, "director", countries)
    actors = kb.persons(4 * size, "actor", countries)
    movies = kb.products(3 * size, "film")
    kb.creations(directors, movies)
    kb.citizenships(directors + actors, countries)
    kb.parents(directors + actors, fraction=0.3)
    # every movie has exactly one genre; the node attribute mirrors it
    for index, movie in enumerate(movies):
        genre = genres[index % len(genres)]
        kb.graph.add_edge(movie, genre, "hasGenre")
        kb.graph.set_attr(movie, "country", kb.graph.get_attr(genre, "name"))
    kb.random_links(actors, movies, "actedIn", 2 * size)
    return kb.graph
