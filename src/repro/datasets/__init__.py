"""Dataset generators: Figure 1, synthetic graphs, KB scale models, noise."""

from .figure1 import Figure1, load_figure1
from .gfd_generator import generate_gfds
from .knowledge_base import KB_ATTRIBUTES, dbpedia_like, imdb_like, yago2_like
from .noise import NoiseReport, inject_noise
from .scale import SCALE_TIERS, scale_graph, scale_tier_graph
from .synthetic import SYNTHETIC_ATTRIBUTES, synthetic_graph

__all__ = [
    "Figure1",
    "load_figure1",
    "generate_gfds",
    "KB_ATTRIBUTES",
    "dbpedia_like",
    "yago2_like",
    "imdb_like",
    "NoiseReport",
    "inject_noise",
    "SCALE_TIERS",
    "scale_graph",
    "scale_tier_graph",
    "SYNTHETIC_ATTRIBUTES",
    "synthetic_graph",
]
