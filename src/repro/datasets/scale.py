"""Scalable synthetic tier: seeded million-node graphs for the store bench.

The paper's Section 7 experiments run on graphs of 10⁶–10⁷ nodes; the
per-figure benches use ~10³-node scale models because the *generator* in
:mod:`repro.datasets.synthetic` walks pure-Python RNG loops.  This module
is the big-tier counterpart: the random draws are vectorized through one
seeded :class:`numpy.random.Generator`, so the 10⁶ tier generates in
seconds and the persistence/scale suite (``benchmarks/bench_scale.py``,
``tests/test_store.py``) has graphs big enough for attach-vs-rebuild
ratios to mean something.

Shape knobs:

* ``label_skew`` / ``attr_skew`` — node labels and attribute values are
  drawn from Zipf-style distributions (weight ∝ rank⁻ˢᵏᵉʷ; ``0`` =
  uniform), so the per-label node arrays and value interning tables get
  the skewed populations real KBs show instead of flat synthetic ones;
* ``regularity`` — as in the paper generator, a seeded fraction of nodes
  obeys label-determined ``a0`` values and label-directed edges, so
  discovery finds rules at every tier.

Everything is deterministic in ``seed``: the same call produces the same
``Graph`` — and therefore the same ``Graph.version`` and the same
persisted index bytes — in any process.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..graph.graph import Graph

__all__ = ["SCALE_TIERS", "scale_graph", "scale_tier_graph"]

#: The benchmark sweep tiers: 10⁴ → 10⁶ nodes.
SCALE_TIERS: Dict[str, int] = {
    "10k": 10_000,
    "100k": 100_000,
    "1m": 1_000_000,
}


def _rank_weights(count: int, skew: float) -> np.ndarray:
    """Zipf-style rank weights ``(i+1)^-skew``, normalized (0 = uniform)."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** -float(skew)
    return weights / weights.sum()


def scale_graph(
    num_nodes: int,
    num_edges: Optional[int] = None,
    num_labels: int = 32,
    num_edge_labels: int = 12,
    num_values: int = 500,
    label_skew: float = 1.1,
    attr_skew: float = 1.3,
    attrs_per_node: int = 2,
    regularity: float = 0.7,
    seed: int = 0,
) -> Graph:
    """Generate a seeded synthetic graph with skewed labels/attributes.

    Args:
        num_nodes: ``|V|`` (the :data:`SCALE_TIERS` sweep spans 10⁴–10⁶).
        num_edges: target ``|E|`` (default ``2 · num_nodes``); self-loops
            and duplicate ``(src, dst, label)`` draws are dropped, so the
            realized count is deterministically slightly lower.
        num_labels: node-label alphabet size.
        num_edge_labels: edge-label alphabet size.
        num_values: values per attribute.
        label_skew: Zipf exponent of the node-label distribution
            (``0`` = uniform; higher = heavier head).
        attr_skew: Zipf exponent of the attribute-value distribution.
        attrs_per_node: dense attribute columns ``a0..a{k-1}`` per node
            (``a0`` carries the planted label→value regularity).
        regularity: fraction of nodes/edges following the planted
            structure, as in :func:`~repro.datasets.synthetic.
            synthetic_graph`.
        seed: RNG seed; output is fully deterministic in it.
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    if attrs_per_node < 1:
        raise ValueError("attrs_per_node must be >= 1")
    target_edges = 2 * num_nodes if num_edges is None else num_edges
    rng = np.random.default_rng(seed)

    labels = [f"L{i}" for i in range(num_labels)]
    edge_labels = [f"e{i}" for i in range(num_edge_labels)]
    values = [f"v{i}" for i in range(num_values)]
    attr_names = [f"a{i}" for i in range(attrs_per_node)]

    # -- nodes: skewed labels, planted + skewed attribute columns --------
    label_idx = rng.choice(
        num_labels, size=num_nodes, p=_rank_weights(num_labels, label_skew)
    )
    regular = rng.random(num_nodes) < regularity
    attr_w = _rank_weights(num_values, attr_skew)
    columns = [
        rng.choice(num_values, size=num_nodes, p=attr_w)
        for _ in range(attrs_per_node)
    ]
    # the planted rule: regular nodes of label L_i carry a0 = v_{i mod V}
    columns[0] = np.where(regular, label_idx % num_values, columns[0])

    # -- edges: label-directed regular mass + uniform noise --------------
    order = np.argsort(label_idx, kind="stable")
    counts = np.bincount(label_idx, minlength=num_labels)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    src = rng.integers(0, num_nodes, size=target_edges)
    src_label = label_idx[src]
    edge_regular = rng.random(target_edges) < regularity
    target_label = (src_label + 1) % num_labels
    # regular edges pick a uniform node *within* the target label bucket;
    # empty buckets (possible under heavy skew) degrade to noise edges
    bucket_size = counts[target_label]
    edge_regular &= bucket_size > 0
    pick = np.floor(
        rng.random(target_edges) * np.maximum(bucket_size, 1)
    ).astype(np.int64)
    dst_regular = order[bounds[target_label] + pick]
    dst_noise = rng.integers(0, num_nodes, size=target_edges)
    dst = np.where(edge_regular, dst_regular, dst_noise)
    lab_noise = rng.integers(0, num_edge_labels, size=target_edges)
    lab = np.where(edge_regular, src_label % num_edge_labels, lab_noise)

    keep = src != dst
    src, dst, lab = src[keep], dst[keep], lab[keep]
    # dedupe (src, dst, label) draws deterministically: one sorted unique
    # over packed keys (sorted insertion order also keeps Graph.version a
    # pure function of the seed)
    keys = (src * num_nodes + dst) * num_edge_labels + lab
    keys = np.unique(keys)
    lab = keys % num_edge_labels
    pair = keys // num_edge_labels
    dst = pair % num_nodes
    src = pair // num_nodes

    # -- materialize the Graph (the only per-element Python loop) --------
    graph = Graph()
    add_node = graph.add_node
    label_list = label_idx.tolist()
    column_lists = [column.tolist() for column in columns]
    for node in range(num_nodes):
        attrs = {
            attr_names[i]: values[column_lists[i][node]]
            for i in range(attrs_per_node)
        }
        add_node(labels[label_list[node]], attrs)
    add_edge = graph.add_edge
    for s, d, l in zip(src.tolist(), dst.tolist(), lab.tolist()):
        add_edge(s, d, edge_labels[l])
    return graph


def scale_tier_graph(tier: str, seed: int = 0, **overrides) -> Graph:
    """The named benchmark tier (``"10k"`` | ``"100k"`` | ``"1m"``)."""
    if tier not in SCALE_TIERS:
        raise ValueError(
            f"unknown scale tier {tier!r} (expected one of "
            f"{sorted(SCALE_TIERS)})"
        )
    return scale_graph(SCALE_TIERS[tier], seed=seed, **overrides)
