"""The :class:`Session` — one resource-owning facade for the whole pipeline.

The paper's workflow is a single pipeline: ``ParDis`` discovers Σ,
``ParCover`` minimizes it, and the rules are then *served* against the live
graph.  Historically each phase was a separate entry point that built its
own graph index, spun up its own worker pools and tore everything down on
return — four pool lifecycles for one pipeline.  A ``Session`` owns those
resources once:

* the **frozen graph index** snapshot (re-snapshotted automatically when
  the graph mutates — live backends are re-pointed via ``refresh_index``,
  never rebuilt);
* one lazily-started **execution backend** (serial or multiprocess) shared
  by discover, cover and enforce;
* one **delta log** attached to the graph for incremental enforcement;
* the current **Σ** with its supports, flowing from phase to phase;
* a **chase-cost model** so repeated covers balance by measured unit costs
  instead of the static proxy weights;
* a metered **cluster ledger** and the backend's transfer/lifecycle
  counters, unified under :meth:`Session.metrics` — "pools started once,
  index attached once" is asserted there, not assumed.

Typical use::

    from repro import DiscoveryConfig, Session

    with Session(graph, DiscoveryConfig(k=3, sigma=50)) as session:
        session.discover()           # ParDis on the session backend
        session.cover()              # ParCover over the same pools
        report = session.enforce()   # compiled validation, resident tables
        graph.add_edge(u, v, "knows")
        report = session.refresh()   # incremental — ships only the delta
        session.save_sigma("sigma.json")
        print(session.metrics().as_dict())

Streaming discovery with early-stop budgets::

    with Session(graph, config) as session:
        for gfd in session.discover_iter(max_rules=25):
            print(gfd)               # rules arrive as lattice levels finish

The legacy entry points (``discover``, ``discover_parallel``,
``parallel_cover``, a directly-constructed ``EnforcementEngine``) remain as
thin shims over the same engines and are differential-tested against the
Session path (``tests/test_api.py``); new code should hold a session.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .core.config import DiscoveryConfig, EnforcementConfig
from .core.cover import CoverResult
from .core.results import DiscoveryResult
from .enforce.delta import DeltaLog
from .enforce.engine import EnforcementEngine, EnforcementReport
from .enforce.monitor import RuleSketchMonitor
from .gfd.gfd import GFD
from .gfd.parser import dumps_sigma, loads_sigma
from .graph.graph import Graph
from .graph.index import GraphIndex
from .graph.statistics import compute_statistics
from .graph.store import IndexStoreStale
from .obs.metrics import MetricsRegistry, registry_from_metrics
from .obs.tracer import NULL_TRACER
from .parallel.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    LifecycleCounters,
    TransferLedger,
    make_backend,
)
from .parallel.cluster import ClusterMetrics, SimulatedCluster
from .parallel.costs import ChaseCostModel, PhaseCostPlanner
from .parallel.parcover import parallel_cover
from .parallel.pardis import ParallelDiscovery

__all__ = ["Session", "SessionMetrics"]


@dataclass
class SessionMetrics:
    """One unified view of a session's resource usage and work.

    Combines the backend's :class:`~repro.parallel.backend.LifecycleCounters`
    (pool starts, index attaches/refreshes) and
    :class:`~repro.parallel.backend.TransferLedger` (match rows crossing the
    master boundary) with the :class:`~repro.parallel.cluster.
    ClusterMetrics` superstep ledger and the session's own phase counters.
    The acceptance property of the facade reads directly off this object:
    after a full discover → cover → enforce → refresh pipeline,
    ``backend_starts == 1`` and ``lifecycle.index_attaches == 1``.

    :meth:`as_dict` renders the documented **schema v2** (see there) and
    :meth:`registry` lifts the same snapshot into a
    :class:`~repro.obs.metrics.MetricsRegistry` for Prometheus-style
    exposition.
    """

    #: Version of the :meth:`as_dict` layout.  Bump on any key change.
    SCHEMA_VERSION = 2

    backend_name: str
    num_workers: int
    #: Backends the session constructed — 1 for any number of phases.
    backend_starts: int
    lifecycle: LifecycleCounters
    transfers: TransferLedger
    cluster: ClusterMetrics
    #: Executed phase counts: discover / discover_iter / cover / enforce /
    #: refresh.
    phases: Dict[str, int] = field(default_factory=dict)
    #: Current ``|Σ|`` held by the session.
    sigma_size: int = 0
    #: Cover-unit chase timings absorbed by the session's cost model.
    cover_cost_observations: int = 0
    #: Wall-clock seconds the backend spent recovering failed workers
    #: (respawn + install-log replay); 0.0 on fault-free runs.
    recovery_seconds: float = 0.0
    #: Observed seconds-per-item rates of the ``"auto"`` planner, per
    #: phase and backend (empty until phases have run).
    planner: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: The concrete backend the planner resolved per phase on its most
    #: recent run (equals ``backend_name`` on non-``"auto"`` sessions).
    phase_backends: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serializable rendering (CI artifacts, ``--metrics``).

        **Schema v2.**  Every top-level key except ``timings`` holds only
        deterministic values — names, worker counts, event counts — so two
        runs over the same input diff cleanly.  All wall-clock derived
        floats (phase seconds, recovery seconds, planner rates) are
        isolated under the single ``timings`` key; a consumer comparing
        artifacts drops that one key and compares the rest byte-for-byte
        (``benchmarks/bench_session.py --check`` does exactly this).

        Keys: ``schema_version``, ``repro_version``, ``backend``,
        ``num_workers``, ``backend_starts``, ``lifecycle`` (6 lifecycle
        counts), ``faults`` (4 fault counts), ``transfers`` (4 row/rule
        counts), ``cluster`` (``supersteps``), ``phases``,
        ``phase_backends``, ``sigma_size``, ``cover_cost_observations``,
        ``timings`` (``parallel_seconds``, ``master_seconds``,
        ``total_work_seconds``, ``recovery_seconds``,
        ``cluster_recovery_seconds``, ``planner`` rate map).
        """
        from repro import __version__

        return {
            "schema_version": self.SCHEMA_VERSION,
            "repro_version": __version__,
            "backend": self.backend_name,
            "num_workers": self.num_workers,
            "backend_starts": self.backend_starts,
            "lifecycle": {
                "pools_started": self.lifecycle.pools_started,
                "index_attaches": self.lifecycle.index_attaches,
                "index_refreshes": self.lifecycle.index_refreshes,
                "delta_refreshes": self.lifecycle.delta_refreshes,
                "resets": self.lifecycle.resets,
                "shutdowns": self.lifecycle.shutdowns,
            },
            "faults": {
                "timeouts": self.lifecycle.timeouts,
                "retries": self.lifecycle.retries,
                "respawns": self.lifecycle.respawns,
                "degraded_workers": self.lifecycle.degraded_workers,
            },
            "transfers": {
                "rows_to_workers": self.transfers.rows_to_workers,
                "rows_to_master": self.transfers.rows_to_master,
                "rows_staged": self.transfers.rows_staged,
                "sigma_rules": self.transfers.sigma_rules,
            },
            "cluster": {
                "supersteps": self.cluster.supersteps,
            },
            "phases": dict(self.phases),
            "phase_backends": dict(self.phase_backends),
            "sigma_size": self.sigma_size,
            "cover_cost_observations": self.cover_cost_observations,
            "timings": {
                "parallel_seconds": self.cluster.parallel_seconds,
                "master_seconds": self.cluster.master_seconds,
                "total_work_seconds": self.cluster.total_work_seconds,
                "recovery_seconds": self.recovery_seconds,
                "cluster_recovery_seconds": self.cluster.recovery_seconds,
                "planner": {
                    phase: dict(rates)
                    for phase, rates in self.planner.items()
                },
            },
        }

    def registry(self) -> MetricsRegistry:
        """This snapshot as a :class:`~repro.obs.metrics.MetricsRegistry`.

        Counts become ``repro_*`` counters, timings become gauges; render
        with :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus` or
        :func:`~repro.obs.export.write_prometheus`.
        """
        return registry_from_metrics(self.as_dict())


class Session:
    """Context-managed pipeline state: discover → cover → enforce → refresh.

    Args:
        graph: the live data graph.  The session snapshots its frozen
            index, attaches a delta log, and tracks mutations — a phase
            run after a mutation re-snapshots and re-points the live
            backend instead of rebuilding it.
        config: the :class:`~repro.core.config.DiscoveryConfig` driving
            discovery *and* the session's execution substrate
            (``parallel_backend``, ``num_workers``, ``shared_memory``,
            ``use_index``); ``None`` uses the defaults.
        enforcement: enforcement policies (delta thresholds, sample caps,
            the per-rule violation cap, persistent tables).  The execution
            knobs (``backend``, ``num_workers``, ``shared_memory``,
            ``use_index``) are overridden by the session's — one backend
            serves every phase.  ``None`` uses the defaults.
        num_workers: worker count ``n`` (overrides ``config.num_workers``;
            default: ``config.num_workers``, else 1 for the serial backend
            and 4 for multiprocess).
        backend: backend name overriding ``config.parallel_backend``
            (``"serial"``, ``"multiprocess"`` or ``"auto"``).  With
            ``"auto"`` each phase picks serial or multiprocess through a
            :class:`~repro.parallel.costs.PhaseCostPlanner`: serial until
            a phase's input is large enough (``config.
            planner_mp_min_size``) or multiprocess has measured faster on
            that phase — multiprocess must *never lose to serial* by more
            than the planner's margin.
        index_path: optional path of a persisted index snapshot (the
            ``repro.graph.store`` format).  A valid store file whose
            fingerprint matches the graph attaches via ``mmap`` with
            *zero* index rebuild — and the multiprocess backend ships the
            same file to every worker instead of allocating a
            shared-memory copy.  A missing or stale file is rebuilt from
            the graph and re-persisted (atomic replace); a *corrupt* file
            raises :class:`~repro.graph.store.IndexStoreError` rather
            than being silently overwritten.  Ignored when
            ``config.use_index`` is off.
        index_mmap: attach mode for ``index_path`` — ``True`` (default)
            maps the file read-only; ``False`` loads it eagerly into
            process memory (checksums verified).
        index_autosave: with ``index_path`` set, whether a stale-or-missing
            store file is re-persisted after the in-memory rebuild
            (default ``True`` — the path always holds the current
            snapshot).  A serving process that commits many small write
            batches turns this off: re-serializing the store on every
            published version would dominate the commit path, and the
            serving layer decides when a durable snapshot is worth
            writing.
        monitor: an optional :class:`~repro.enforce.monitor.
            RuleSketchMonitor`; when given (or restored by
            :meth:`load_sigma`), every enforcement pass streams its
            violating pivot ids into the monitor's per-rule sketches.
        tracer: an optional :class:`~repro.obs.tracer.Tracer`.  When
            given, the session opens a root ``session`` span, wraps every
            phase in a ``phase`` span, and threads the tracer through the
            cluster, the planner, every backend it starts and the
            enforcement engine — one trace covers the whole pipeline.
            Default: the shared no-op ``NULL_TRACER`` (tracing off; every
            hook is a constant-time no-op and results are byte-identical
            either way).

    Single-threaded, like the engines.  Use as a context manager, or call
    :meth:`close` — worker processes and shared-memory segments outlive no
    session.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[DiscoveryConfig] = None,
        enforcement: Optional[EnforcementConfig] = None,
        num_workers: Optional[int] = None,
        backend: Optional[str] = None,
        index_path: Optional[Any] = None,
        index_mmap: bool = True,
        index_autosave: bool = True,
        tracer: Optional[Any] = None,
        monitor: Optional[RuleSketchMonitor] = None,
    ) -> None:
        self.graph = graph
        #: The session tracer — a live ``Tracer`` or the no-op singleton.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.config = config if config is not None else DiscoveryConfig()
        self._backend_name = backend or self.config.parallel_backend
        if self._backend_name not in BACKEND_NAMES + ("auto",):
            raise ValueError(
                f"unknown parallel backend {self._backend_name!r} "
                f"(expected one of {BACKEND_NAMES + ('auto',)})"
            )
        if self._backend_name == "multiprocess" and not self.config.use_index:
            raise ValueError(
                "the multiprocess backend requires config.use_index=True"
            )
        if num_workers is None:
            num_workers = self.config.num_workers
        if num_workers is None:
            num_workers = 1 if self._backend_name == "serial" else 4
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._num_workers = num_workers
        #: Per-phase serial-vs-multiprocess planner; only consulted when
        #: the session backend is ``"auto"``, but always fed observations
        #: so :meth:`metrics` can report measured phase rates.
        self.planner = PhaseCostPlanner(
            mp_min_size=self.config.planner_mp_min_size
        )
        self.planner.tracer = self.tracer
        #: The concrete backend each phase last resolved to.
        self._phase_backends: Dict[str, str] = {}
        base = enforcement if enforcement is not None else EnforcementConfig()
        #: The enforcement config actually used: session-owned execution
        #: knobs, caller-owned policies.  An ``"auto"`` session pins the
        #: name per engine build (:meth:`_ensure_engine`).
        self.enforcement = replace(
            base,
            backend=(
                "serial" if self._backend_name == "auto"
                else self._backend_name
            ),
            num_workers=num_workers,
            shared_memory=self.config.shared_memory,
            use_index=self.config.use_index,
            fault=self.config.fault,
        )
        self._snapshot_version = graph.version
        self._index_path = Path(index_path) if index_path is not None else None
        self._index_mmap = bool(index_mmap)
        self._index_autosave = bool(index_autosave)
        self._monitor = monitor
        self._index: Optional[GraphIndex] = (
            self._snapshot_index() if self.config.use_index else None
        )
        self._stats = (
            self._index.statistics()
            if self._index is not None
            else compute_statistics(graph)
        )
        if self.config.active_attributes is not None:
            self._gamma = list(self.config.active_attributes)
        else:
            self._gamma = self._stats.top_attributes(
                self.config.max_active_attributes
            )
        self.cluster = SimulatedCluster(num_workers, tracer=self.tracer)
        self.cover_costs = ChaseCostModel()
        self._delta = DeltaLog()
        graph.attach_delta_log(self._delta)
        self._backend: Optional[ExecutionBackend] = None
        #: Every backend the session has started, keyed by name.  Concrete
        #: sessions hold at most one; an ``"auto"`` session may hold both
        #: when the planner's per-phase choices differ.
        self._backends: Dict[str, ExecutionBackend] = {}
        self._backend_starts = 0
        self._engine: Optional[EnforcementEngine] = None
        self._engine_backend: Optional[str] = None
        self._sigma: List[GFD] = []
        self._supports: Dict[GFD, int] = {}
        self._phases: Dict[str, int] = {}
        self._closed = False
        self._root_span = (
            self.tracer.begin(
                "session",
                "session",
                backend=self._backend_name,
                num_workers=num_workers,
            )
            if self.tracer.enabled
            else None
        )

    # ------------------------------------------------------------------
    # resource ownership
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        """The execution backend this session runs on."""
        return self._backend_name

    @property
    def num_workers(self) -> int:
        """The worker count ``n`` shared by every phase."""
        return self._num_workers

    @property
    def index(self) -> Optional[GraphIndex]:
        """The session's current frozen index snapshot (``None`` when
        ``config.use_index`` is off)."""
        return self._index

    @property
    def delta(self) -> DeltaLog:
        """The session-owned delta log fed by the graph's mutators."""
        return self._delta

    @property
    def sigma(self) -> List[GFD]:
        """The current rule set Σ (a copy)."""
        return list(self._sigma)

    @property
    def supports(self) -> Dict[GFD, int]:
        """Per-rule supports of the current Σ (a copy)."""
        return dict(self._supports)

    @property
    def monitor(self) -> Optional[RuleSketchMonitor]:
        """The streaming violation monitor, if one is attached."""
        return self._monitor

    def set_sigma(
        self,
        rules: List[GFD],
        supports: Optional[Dict[GFD, int]] = None,
    ) -> None:
        """Replace the session's Σ (and supports) programmatically.

        The equivalent of :meth:`load_sigma` for rules already in hand —
        a serving layer uses it to pin the service Σ after exploratory
        discovery requests.  If the new Σ differs from the enforcement
        engine's, the engine is dropped and the next enforce/refresh
        compiles a fresh plan over the same backend.
        """
        self._check_open()
        self._set_sigma(list(rules), supports)

    def _resolve(self, phase: str, size: int) -> str:
        """The concrete backend name *phase* runs on for *size* items.

        Concrete sessions always answer their configured name.  An
        ``"auto"`` session asks the :class:`~repro.parallel.costs.
        PhaseCostPlanner` — serial until the phase is large enough or
        multiprocess has measured faster — except that without the frozen
        index (``use_index=False``) multiprocess cannot run at all, so
        serial is forced.
        """
        if self._backend_name != "auto":
            if self.tracer.enabled:
                self.tracer.event(
                    "planner_decision",
                    phase=phase,
                    size=size,
                    chosen=self._backend_name,
                    mode="pinned",
                )
            return self._backend_name
        if not self.config.use_index:
            if self.tracer.enabled:
                self.tracer.event(
                    "planner_decision",
                    phase=phase,
                    size=size,
                    chosen="serial",
                    mode="forced_serial",
                )
            return "serial"
        return self.planner.choose(phase, size)

    def _backend_for(self, name: str) -> ExecutionBackend:
        """The session's backend *name*, started on first use and cached.

        Also records it as the session's current backend (what
        :meth:`backend` answers between phases).
        """
        self._check_open()
        backend = self._backends.get(name)
        if backend is None:
            backend = make_backend(
                name,
                self._num_workers,
                self.graph,
                self._index,
                self._gamma,
                use_shared_memory=self.config.shared_memory,
                fault=self.config.fault,
                fuse_ops=self.config.fuse_ops,
                tracer=self.tracer,
            )
            self._backends[name] = backend
            self._backend_starts += 1
        self._backend = backend
        return backend

    def backend(self) -> ExecutionBackend:
        """The session's execution backend, started on first use.

        Every phase runs on this one instance (concrete sessions) and
        :meth:`metrics` proves the single lifecycle (``backend_starts``,
        ``lifecycle.pools_started``).  On an ``"auto"`` session this is
        the most recently used backend (resolved for discovery when no
        phase has run yet); individual phases may resolve differently.
        """
        self._check_open()
        if self._backend_name != "auto":
            return self._backend_for(self._backend_name)
        if self._backend is not None:
            return self._backend
        return self._backend_for(
            self._resolve("discover", self.graph.num_nodes)
        )

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the session is closed")

    def _snapshot_index(self) -> GraphIndex:
        """The frozen snapshot, via the on-disk store when ``index_path`` set.

        A valid persisted snapshot mmap-attaches (or eager-loads) with
        zero rebuild; a missing or *stale* file — the graph mutated since
        the save — is rebuilt from the graph and re-persisted, so the
        path always holds the current snapshot afterwards.  Corruption is
        never papered over: a damaged file raises ``IndexStoreError``.
        """
        if self._index_path is None:
            return self.graph.index()
        if self._index_path.exists():
            try:
                index = GraphIndex.load(
                    self._index_path,
                    graph=self.graph,
                    mmap=self._index_mmap,
                )
                if self.tracer.enabled:
                    self.tracer.event(
                        "index_loaded",
                        path=str(self._index_path),
                        mmap=self._index_mmap,
                    )
                return index
            except IndexStoreStale:
                if self.tracer.enabled:
                    self.tracer.event(
                        "index_stale_rebuild", path=str(self._index_path)
                    )
        index = self.graph.index()
        if self._index_autosave:
            index.save(self._index_path)
            if self.tracer.enabled:
                self.tracer.event("index_saved", path=str(self._index_path))
        return index

    def _refresh_snapshot(self) -> None:
        """Re-snapshot the index, statistics and Γ after graph mutations.

        ``graph.index()`` is version-cached, so this is free while the
        graph is unchanged; after a mutation the new snapshot is exported
        to the live backend exactly once (``refresh_index`` — worker pools
        survive).  On the dict reference path (``use_index=False``) the
        statistics are rescanned on version change, so a post-mutation
        discovery sees the same label counts a fresh session would.
        """
        if self.graph.version == self._snapshot_version:
            return
        self._snapshot_version = self.graph.version
        if self.config.use_index:
            index = self._snapshot_index()
            if index is self._index:
                return
            self._index = index
            self._stats = index.statistics()
        else:
            self._stats = compute_statistics(self.graph)
        if self.config.active_attributes is None:
            self._gamma = self._stats.top_attributes(
                self.config.max_active_attributes
            )
        if self.config.use_index:
            for backend in self._backends.values():
                backend.refresh_index(self._index)

    def _count(self, phase: str) -> None:
        self._phases[phase] = self._phases.get(phase, 0) + 1

    def _set_sigma(
        self, rules: List[GFD], supports: Optional[Dict[GFD, int]] = None
    ) -> None:
        self._sigma = list(rules)
        if supports is None:
            supports = {}
        self._supports = {
            gfd: supports[gfd] for gfd in self._sigma if gfd in supports
        }
        if self._engine is not None and self._engine.sigma != self._sigma:
            # Σ changed: the compiled plan (and any resident shards) no
            # longer match — the next enforce builds a fresh engine over
            # the same backend
            self._engine.close()
            self._engine = None

    # ------------------------------------------------------------------
    # pipeline phases
    # ------------------------------------------------------------------
    def _discovery_engine(self, backend_name: str) -> ParallelDiscovery:
        return ParallelDiscovery(
            self.graph,
            self.config,
            cluster=self.cluster,
            stats=self._stats,
            index=self._index,
            backend=self._backend_for(backend_name),
        )

    def _after_discovery(self) -> None:
        """The shared backend was reset by the returning discovery engine."""
        if self._engine is not None:
            self._engine.invalidate_residency()

    def discover(self) -> DiscoveryResult:
        """Run ``ParDis`` on the session backend; Σ becomes the result.

        Results are identical to the legacy entry points (differential
        tests pin this); only the resource lifecycle differs — the
        session's pools and index snapshot are reused, not rebuilt.
        """
        self._check_open()
        self._refresh_snapshot()
        self._count("discover")
        size = self.graph.num_nodes
        name = self._resolve("discover", size)
        self._phase_backends["discover"] = name
        with self.tracer.span("discover", "phase", backend=name, size=size):
            engine = self._discovery_engine(name)
            start = time.perf_counter()
            try:
                result = engine.run()
            finally:
                self._after_discovery()
        self.planner.observe(
            "discover", name, size, time.perf_counter() - start
        )
        self._set_sigma(result.gfds, result.supports)
        return result

    def discover_iter(
        self,
        max_rules: Optional[int] = None,
        max_levels: Optional[int] = None,
        update_sigma: bool = True,
    ) -> Iterator[GFD]:
        """Stream discovery: yield rules as their lattice levels complete.

        Early-stop budgets: ``max_rules`` stops after that many rules,
        ``max_levels`` after the given generation-tree level (level 0 =
        single-node patterns).  Σ (with supports) is set to everything
        yielded so far whenever the iteration ends — exhausted, budgeted,
        or abandoned (the update runs from the generator's ``finally``) —
        unless ``update_sigma`` is off, which leaves the session's Σ (and
        its compiled enforcement plan) untouched: the mode a serving layer
        uses for exploratory, budgeted discovery requests that must not
        clobber the served rule set.

        Streaming skips the final pairwise ``≪``-minimality filter — that
        is a global pass over the completed set; run :meth:`cover` (or a
        full :meth:`discover`) for the minimized Σ.
        """
        self._check_open()
        self._refresh_snapshot()
        self._count("discover_iter")
        size = self.graph.num_nodes
        name = self._resolve("discover", size)
        self._phase_backends["discover"] = name
        # a generator cannot hold a ``with`` open across yields safely
        # when abandoned, so the phase span is closed from the finally
        span = (
            self.tracer.begin(
                "discover_iter", "phase", backend=name, size=size
            )
            if self.tracer.enabled
            else None
        )
        engine = self._discovery_engine(name)
        emitted: List[Tuple[GFD, int]] = []
        budget_hit = False
        start = time.perf_counter()
        levels = engine.run_iter()
        try:
            for level, batch in levels:
                for gfd, support in batch:
                    emitted.append((gfd, support))
                    yield gfd
                    if max_rules is not None and len(emitted) >= max_rules:
                        budget_hit = True
                        break
                if budget_hit:
                    break
                if max_levels is not None and level >= max_levels:
                    break
        finally:
            levels.close()  # releases the engine's hold on the backend
            self._after_discovery()
            if span is not None:
                self.tracer.end(span)
            self.planner.observe(
                "discover", name, size, time.perf_counter() - start
            )
            if update_sigma:
                self._set_sigma(
                    [gfd for gfd, _ in emitted],
                    {gfd: support for gfd, support in emitted},
                )

    def cover(self, sigma: Optional[List[GFD]] = None) -> CoverResult:
        """Reduce Σ to a minimal cover (``ParCover`` on the session pools).

        Uses the session's :class:`~repro.parallel.costs.ChaseCostModel`:
        the first cover balances by the static proxy weights, later covers
        by the measured per-unit chase costs fed back from the workers.
        ``sigma`` overrides the input set (default: the session's Σ);
        either way the session's Σ becomes the computed cover.
        """
        self._check_open()
        self._count("cover")
        rules = list(sigma) if sigma is not None else list(self._sigma)
        name = self._resolve("cover", len(rules))
        self._phase_backends["cover"] = name
        start = time.perf_counter()
        with self.tracer.span(
            "cover", "phase", backend=name, size=len(rules)
        ):
            result, _ = parallel_cover(
                rules,
                cluster=self.cluster,
                backend=self._backend_for(name),
                cost_model=self.cover_costs,
            )
        self.planner.observe(
            "cover", name, len(rules), time.perf_counter() - start
        )
        self._set_sigma(result.cover, self._supports)
        return result

    def _ensure_engine(self, rules: List[GFD]) -> EnforcementEngine:
        if self._engine is not None and self._engine.sigma == rules:
            return self._engine
        if self._engine is not None:
            self._engine.close()
            self._engine = None
        # The engine pins its backend: resident shard tables live in that
        # backend's workers, so refresh() must keep hitting the same one.
        name = self._resolve("enforce", self.graph.num_nodes)
        self._engine_backend = name
        self._engine = EnforcementEngine(
            self.graph,
            rules,
            replace(self.enforcement, backend=name),
            backend=self._backend_for(name),
            delta=self._delta,
            tracer=self.tracer,
            monitor=self._monitor,
        )
        return self._engine

    def enforce(self, sigma: Optional[List[GFD]] = None) -> EnforcementReport:
        """Full validation of Σ against the current graph state.

        Compiles Σ once per rule set (the engine is kept while Σ is
        unchanged, so repeated calls reuse the compiled plan) and
        evaluates on the session backend.  A *full* pass always re-matches
        and re-installs the group shards; it is :meth:`refresh` that
        exploits the worker-resident tables to ship deltas only — use it
        for the serve loop.  ``sigma`` overrides the rule set without
        changing the session's Σ.
        """
        self._check_open()
        self._refresh_snapshot()
        self._count("enforce")
        rules = list(sigma) if sigma is not None else list(self._sigma)
        size = self.graph.num_nodes
        start = time.perf_counter()
        with self.tracer.span("enforce", "phase", size=size):
            report = self._ensure_engine(rules).validate()
        name = self._engine_backend or self._backend_name
        self._phase_backends["enforce"] = name
        self.planner.observe(
            "enforce", name, size, time.perf_counter() - start
        )
        return report

    def refresh(self) -> EnforcementReport:
        """Incremental revalidation after graph mutations.

        Consumes the session's delta log: only the radius-``d_Q`` ball
        around touched nodes is re-matched, resident shards receive just
        the delta, and a clean refresh ships zero match rows (the transfer
        ledger in :meth:`metrics` proves it).  Falls back to a full
        :meth:`enforce` pass on the first call or on a too-wide delta.
        """
        self._check_open()
        self._refresh_snapshot()
        self._count("refresh")
        size = self.graph.num_nodes
        start = time.perf_counter()
        with self.tracer.span("refresh", "phase", size=size):
            if self._engine is not None:
                # continue whatever Σ the engine is serving (an
                # enforce(sigma) override included) — its resident tables
                # are the state the delta splices into
                report = self._engine.refresh()
            else:
                report = self._ensure_engine(list(self._sigma)).refresh()
        name = self._engine_backend or self._backend_name
        self._phase_backends["refresh"] = name
        self.planner.observe(
            "refresh", name, size, time.perf_counter() - start
        )
        return report

    # ------------------------------------------------------------------
    # Σ persistence
    # ------------------------------------------------------------------
    def save_sigma(self, path, include_state: bool = True) -> None:
        """Write the session's Σ (with supports) as the JSON envelope.

        With ``include_state`` (the default), warm-start state rides along
        under a ``"state"`` key beside the rules: the
        :class:`~repro.parallel.costs.ChaseCostModel` observations (so a
        fresh process's first :meth:`cover` balances by measured unit
        costs, not the static proxy) and the
        :class:`~repro.enforce.monitor.RuleSketchMonitor` sketches (so the
        distinct-pivots-ever gauges survive a restart).  ``loads_sigma``
        ignores unknown top-level keys, so the envelope stays readable by
        every consumer that only wants the rules.
        """
        self._check_open()
        payload = json.loads(dumps_sigma(self._sigma, supports=self._supports))
        state: Dict[str, Any] = {}
        if include_state:
            if self.cover_costs.observations or len(self.cover_costs):
                state["chase_costs"] = self.cover_costs.as_state()
            if self._monitor is not None and len(self._monitor):
                state["sketches"] = self._monitor.as_state()
        if state:
            payload["state"] = state
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def load_sigma(self, path) -> List[GFD]:
        """Load Σ (and supports) from a ``dumps_sigma`` JSON envelope.

        The loaded set becomes the session's Σ — ready for :meth:`cover`,
        :meth:`enforce` or :meth:`refresh` — and is also returned.  A
        ``"state"`` section written by :meth:`save_sigma` warm-starts the
        session: the chase-cost model is restored, and persisted sketches
        (re)attach a :class:`~repro.enforce.monitor.RuleSketchMonitor`.
        """
        self._check_open()
        text = Path(path).read_text(encoding="utf-8")
        rules, supports = loads_sigma(text)
        self._set_sigma(rules, supports)
        state = json.loads(text).get("state")
        if isinstance(state, dict):
            costs = state.get("chase_costs")
            if isinstance(costs, dict):
                self.cover_costs = ChaseCostModel.from_state(costs)
            sketches = state.get("sketches")
            if isinstance(sketches, dict):
                self._monitor = RuleSketchMonitor.from_state(sketches)
                if self._engine is not None:
                    self._engine.monitor = self._monitor
        return list(rules)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def trace(self) -> Any:
        """The session's tracer (the no-op ``NULL_TRACER`` when off).

        With a live tracer, hand it to :func:`~repro.obs.export.
        write_chrome_trace` / :func:`~repro.obs.export.write_event_log`
        after :meth:`close` for the full per-worker timeline.
        """
        return self.tracer

    def metrics(self) -> SessionMetrics:
        """The unified resource/work view (see :class:`SessionMetrics`).

        Every field is a snapshot — two calls can be diffed for
        before/after deltas without aliasing the live counters.
        """
        lifecycle = LifecycleCounters()
        transfers = TransferLedger()
        recovery = 0.0
        # Sum over every backend the session started — 1 for concrete
        # sessions, possibly 2 for "auto" (each field is an event count).
        for backend in self._backends.values():
            for spec in fields(LifecycleCounters):
                setattr(
                    lifecycle,
                    spec.name,
                    getattr(lifecycle, spec.name)
                    + getattr(backend.lifecycle, spec.name),
                )
            snap = backend.transfers.snapshot()
            for spec in fields(TransferLedger):
                setattr(
                    transfers,
                    spec.name,
                    getattr(transfers, spec.name) + getattr(snap, spec.name),
                )
            recovery += backend.recovery_seconds
        return SessionMetrics(
            backend_name=self._backend_name,
            num_workers=self._num_workers,
            backend_starts=self._backend_starts,
            lifecycle=lifecycle,
            transfers=transfers,
            cluster=replace(self.cluster.metrics),
            phases=dict(self._phases),
            sigma_size=len(self._sigma),
            cover_cost_observations=self.cover_costs.observations,
            recovery_seconds=recovery,
            planner=self.planner.as_dict(),
            phase_backends=dict(self._phase_backends),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every session resource (idempotent).

        Closes the enforcement engine (dropping its resident shards),
        shuts the backend down (worker processes joined, shared-memory
        segments unlinked) and detaches the delta log.
        """
        if self._closed:
            return
        self._closed = True
        if self._engine is not None:
            self._engine.close()
            self._engine = None
        for backend in self._backends.values():
            # shut down but keep the references: metrics() stays readable
            # (shutdowns == 1 per backend is part of the lifecycle story)
            # and _check_open prevents any reuse
            backend.shutdown()
        self.graph.detach_delta_log(self._delta)
        if self._root_span is not None:
            self.tracer.end(self._root_span)
            self._root_span = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(backend={self._backend_name!r}, "
            f"workers={self._num_workers}, sigma={len(self._sigma)}, "
            f"{'closed' if self._closed else 'open'})"
        )
