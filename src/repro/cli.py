"""Command-line interface: ``repro-gfd`` / ``python -m repro``.

Subcommands:

* ``stats <graph>`` — dataset statistics (labels, triples, attributes);
* ``discover <graph>`` — run ``SeqDis`` (or ``ParDis`` with ``--workers``;
  ``--backend multiprocess`` runs real worker processes over shared-memory
  graph buffers) and print the discovered GFDs with their supports;
* ``validate <graph> <rules>`` — check a rule file against a graph and
  report violations;
* ``enforce <graph> <rules>`` — validate a rule set with the compiled
  enforcement plan (grouped patterns, columnar masks, serial or
  multiprocess backend);
* ``cover <rules>`` — compute a cover of a rule file (``--workers``/
  ``--backend`` selects the parallel ``ParCover``, sharded over the same
  worker op layer as discovery);
* ``index build <graph> -o <file>`` / ``index inspect <file>`` — persist
  a graph's frozen index in the checksummed on-disk format of
  :mod:`repro.graph.store`, and print a persisted file's header facts;
  the graph-ful verbs take ``--index <file>`` to attach the persisted
  snapshot via ``mmap`` instead of re-freezing the graph;
* ``pipeline <graph>`` — discover → cover → enforce on one
  :class:`~repro.session.Session`: worker pools start once, the graph
  index is attached once, and ``--metrics`` dumps the unified session
  ledger as JSON;
* ``serve <graph>`` — enforcement-as-a-service: the asyncio HTTP layer
  of :mod:`repro.serve` over MVCC index snapshots with group-commit
  writes (``POST /validate|/discover|/cover|/mutate``,
  ``GET /metrics|/stats|/healthz``).

The graph-ful verbs (``discover``, ``enforce``, ``pipeline``) all run on a
:class:`~repro.session.Session`, so a single backend lifecycle serves
every phase of a command.

Graphs are the JSON/TSV formats of :mod:`repro.graph.io`.  Rule files are
either plain text — one GFD per line in the syntax of
:mod:`repro.gfd.parser`, ``#`` comments allowed — or, with a ``.json``
extension, the ``dumps_sigma`` envelope that ``discover --output`` writes
(supports round-trip with the rules).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .core import DiscoveryConfig, EnforcementConfig, FaultConfig, sequential_cover
from .gfd import (
    GFD,
    dumps_sigma,
    find_violations,
    format_gfd,
    loads_sigma,
    parse_gfd,
)
from .graph import Graph, compute_statistics, load_json, load_tsv
from .session import Session

__all__ = ["main", "load_graph", "load_rules", "save_rules"]


def load_graph(path: str) -> Graph:
    """Load a graph by extension (.json or .tsv)."""
    if path.endswith(".json"):
        return load_json(path)
    if path.endswith(".tsv"):
        return load_tsv(path)
    raise SystemExit(f"unsupported graph format: {path!r} (use .json or .tsv)")


def load_rules(path: str) -> List[GFD]:
    """Load a rule file (``.json`` = Σ envelope, else one GFD per line)."""
    if path.endswith(".json"):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                rules, _ = loads_sigma(handle.read())
            return rules
        except ValueError as error:
            raise SystemExit(f"{path}: {error}") from error
    rules: List[GFD] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                rules.append(parse_gfd(line))
            except ValueError as error:
                raise SystemExit(f"{path}:{line_number}: {error}") from error
    return rules


def save_rules(
    rules: List[GFD], path: str, supports: Optional[Dict[GFD, int]] = None
) -> None:
    """Write a rule file readable by :func:`load_rules`.

    A ``.json`` path writes the Σ envelope (with per-rule supports when
    given); any other path writes the line-per-GFD text format.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if path.endswith(".json"):
            handle.write(dumps_sigma(rules, supports=supports) + "\n")
        else:
            for gfd in rules:
                handle.write(format_gfd(gfd) + "\n")


def _cmd_index_build(args: argparse.Namespace) -> int:
    """Freeze a graph and persist its index (``repro index build``)."""
    import time

    graph = load_graph(args.graph)
    output = args.output or str(Path(args.graph).with_suffix(".rgix"))
    started = time.perf_counter()
    index = graph.index()
    build_seconds = time.perf_counter() - started
    started = time.perf_counter()
    index.save(output)
    save_seconds = time.perf_counter() - started
    size = Path(output).stat().st_size
    print(f"wrote {output}")
    print(
        f"nodes: {index.num_nodes}  edges: {index.num_edges}  "
        f"version: {index.version}"
    )
    print(
        f"build {build_seconds:.3f}s  save {save_seconds:.3f}s  "
        f"{size} bytes"
    )
    return 0


def _cmd_index_inspect(args: argparse.Namespace) -> int:
    """Print a persisted index's header facts (``repro index inspect``)."""
    from .graph.store import IndexStoreError, inspect_index

    try:
        info = inspect_index(args.index)
    except (OSError, IndexStoreError) as error:
        raise SystemExit(f"{args.index}: {error}") from error
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    fp = info["fingerprint"]
    print(f"schema: {info['schema']}")
    print(
        f"nodes: {fp['num_nodes']}  edges: {fp['num_edges']}  "
        f"graph version: {fp['graph_version']}"
    )
    print(
        f"node labels: {info['node_labels']}  "
        f"edge labels: {info['edge_labels']}  "
        f"attributes: {len(info['attr_names'])} "
        f"({', '.join(info['attr_names']) or 'none'})  "
        f"values: {info['values']}"
    )
    print(f"file: {info['file_size']} bytes "
          f"({info['data_size']} data @ offset {info['data_start']})")
    print("regions:")
    for name, entry in info["arrays"].items():
        shape = "x".join(str(n) for n in entry["shape"])
        print(f"  {name}\t{entry['dtype']}\t[{shape}]\t"
              f"{entry['bytes']} bytes\tcrc32={entry['crc32']:08x}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    stats = compute_statistics(graph)
    print(f"nodes: {graph.num_nodes}")
    print(f"edges: {graph.num_edges}")
    print(f"node labels: {len(stats.node_label_counts)}")
    print(f"edge labels: {len(stats.edge_label_counts)}")
    print(f"attributes: {len(stats.attr_counts)}")
    print("top node labels:")
    ranked = sorted(stats.node_label_counts.items(), key=lambda kv: -kv[1])
    for label, count in ranked[:10]:
        print(f"  {label}: {count}")
    print("top triples:")
    for triple in stats.frequent_triples(1)[:10]:
        print(f"  {triple[0]} -[{triple[1]}]-> {triple[2]}: "
              f"{stats.triple_counts[triple]}")
    return 0


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """The supervision flags shared by the parallel verbs."""
    parser.add_argument(
        "--supervise", action="store_true",
        help="supervise multiprocess workers: per-op timeouts, retry with "
             "backoff, respawn-and-replay on worker death "
             "(on by default when $REPRO_FAULT_PLAN is set)")
    parser.add_argument(
        "--op-timeout", type=float, default=None, metavar="SECONDS",
        help="per-op deadline before a worker counts as hung "
             "(implies --supervise; default 30)")
    parser.add_argument(
        "--max-respawns", type=int, default=None, metavar="N",
        help="worker respawn budget before degrading the slot to serial "
             "execution (implies --supervise; default 2)")


def _fault_from_args(args: argparse.Namespace):
    """Resolve the fault flags to a ``make_backend``-style ``fault`` value.

    Returns ``"auto"`` (follow ``$REPRO_FAULT_PLAN``) when no flag was
    given, so configs keep their environment-driven default.
    """
    if not (args.supervise or args.op_timeout is not None
            or args.max_respawns is not None):
        return "auto"
    kwargs = {}
    if args.op_timeout is not None:
        kwargs["op_timeout_s"] = args.op_timeout
    if args.max_respawns is not None:
        kwargs["max_respawns"] = args.max_respawns
    return FaultConfig(**kwargs)


def _write_metrics(session: Session, path: Optional[str]) -> None:
    """Write ``session.metrics()`` as JSON (the CI artifact format)."""
    if path:
        Path(path).write_text(
            json.dumps(session.metrics().as_dict(), indent=2) + "\n"
        )


def _add_index_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--index", metavar="PATH", default=None,
        help="persisted index file (see 'index build'): a matching "
             "snapshot mmap-attaches with zero rebuild and multiprocess "
             "workers map the same file; a missing or stale file is "
             "rebuilt and re-persisted there")


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH",
        help="record a run timeline: .json writes Chrome trace-event "
             "format (open in Perfetto / chrome://tracing, one lane per "
             "worker), .jsonl writes the structured event log; results "
             "are identical with tracing on or off")


def _make_tracer(args: argparse.Namespace):
    """A live tracer when ``--trace`` was given, else ``None``."""
    if getattr(args, "trace", None):
        from .obs import Tracer

        return Tracer()
    return None


def _write_trace(tracer, path: Optional[str]) -> None:
    """Export the finished trace by extension (.jsonl = event log)."""
    if tracer is None or not path:
        return
    from .obs import write_chrome_trace, write_event_log

    if path.endswith(".jsonl"):
        write_event_log(tracer, path)
    else:
        write_chrome_trace(tracer, path)


def _cmd_discover(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    config = DiscoveryConfig(
        k=args.k,
        sigma=args.sigma,
        max_lhs_size=args.max_lhs,
        mine_negative=not args.no_negative,
        shared_memory=not args.no_shared_memory,
    )
    fault = _fault_from_args(args)
    if fault != "auto":
        config.fault = fault
    if args.backend is not None:
        config.parallel_backend = args.backend
    parallel = (args.workers or 0) > 1 or config.parallel_backend == "multiprocess"
    tracer = _make_tracer(args)
    with Session(
        graph, config, num_workers=args.workers,
        index_path=args.index, tracer=tracer,
    ) as session:
        result = session.discover()
        if parallel:
            print(
                f"# backend={session.backend_name} "
                f"workers={session.num_workers} "
                f"modeled parallel time "
                f"{session.cluster.metrics.elapsed_parallel:.3f}s, "
                f"real {result.stats.elapsed_seconds:.3f}s",
                file=sys.stderr,
            )
        if args.cover:
            result_gfds = session.cover().cover
        else:
            result_gfds = result.sorted_by_support()
        for gfd in result_gfds:
            support = result.supports.get(gfd, 0)
            print(f"{support}\t{format_gfd(gfd)}")
        print(
            f"# {len(result_gfds)} GFDs "
            f"({sum(1 for g in result_gfds if g.is_negative)} negative), "
            f"{result.stats.candidates_checked} candidates checked, "
            f"{result.stats.elapsed_seconds:.2f}s",
            file=sys.stderr,
        )
        if args.output:
            save_rules(result_gfds, args.output, supports=result.supports)
        _write_metrics(session, args.metrics)
    _write_trace(tracer, args.trace)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    rules = load_rules(args.rules)
    clean = True
    for gfd in rules:
        violations = find_violations(graph, gfd, max_violations=args.limit)
        for violation in violations:
            clean = False
            nodes = ",".join(str(node) for node in violation.match)
            print(f"violation\t[{nodes}]\t{format_gfd(gfd)}")
    return 0 if clean else 1


def _cmd_enforce(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    rules = load_rules(args.rules)
    config = EnforcementConfig(
        max_violation_samples=args.samples,
        sample_seed=args.seed,
        max_violations_per_rule=args.max_violations_per_rule,
    )
    base = DiscoveryConfig(shared_memory=not args.no_shared_memory)
    fault = _fault_from_args(args)
    if fault != "auto":
        base.fault = fault
    tracer = _make_tracer(args)
    with Session(
        graph,
        base,
        enforcement=config,
        num_workers=args.workers,
        backend=args.backend,
        index_path=args.index,
        tracer=tracer,
    ) as session:
        report = session.enforce(rules)
        _write_metrics(session, args.metrics)
    _write_trace(tracer, args.trace)
    for rule in report.rules:
        print(
            f"{rule.violation_count}\t{rule.distinct_pivots}\t"
            f"{format_gfd(rule.gfd)}"
        )
        for match in rule.sample:
            nodes = ",".join(str(node) for node in match)
            print(f"  violation\t[{nodes}]")
    print(
        f"# {len(report.rules)} rules over {report.patterns_matched} distinct "
        f"patterns, {report.total_violations} violations "
        f"({len(report.flagged_nodes())} nodes flagged), "
        f"backend={report.backend} workers={report.num_workers}, "
        f"{report.elapsed_seconds:.3f}s",
        file=sys.stderr,
    )
    if args.json:
        payload = {
            "mode": report.mode,
            "backend": report.backend,
            "num_workers": report.num_workers,
            "patterns_matched": report.patterns_matched,
            "elapsed_seconds": report.elapsed_seconds,
            "total_violations": report.total_violations,
            "flagged_nodes": sorted(report.flagged_nodes()),
            "rules": [
                {
                    "gfd": format_gfd(rule.gfd),
                    "violations": rule.violation_count,
                    "distinct_pivots": rule.distinct_pivots,
                    "sample_truncated": rule.sample_truncated,
                    "witnesses_truncated": rule.witnesses_truncated,
                    "sample": [list(match) for match in rule.sample],
                }
                for rule in report.rules
            ],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
    return 0 if report.is_clean else 1


def _cmd_pipeline(args: argparse.Namespace) -> int:
    """discover → cover → enforce in one session (one backend lifecycle)."""
    graph = load_graph(args.graph)
    config = DiscoveryConfig(
        k=args.k,
        sigma=args.sigma,
        max_lhs_size=args.max_lhs,
        mine_negative=not args.no_negative,
        shared_memory=not args.no_shared_memory,
    )
    fault = _fault_from_args(args)
    if fault != "auto":
        config.fault = fault
    if args.backend is not None:
        config.parallel_backend = args.backend
    tracer = _make_tracer(args)
    with Session(
        graph, config, num_workers=args.workers,
        index_path=args.index, tracer=tracer,
    ) as session:
        result = session.discover()
        cover = session.cover()
        report = session.enforce()
        metrics = session.metrics()
        for gfd in cover.cover:
            support = result.supports.get(gfd, 0)
            print(f"{support}\t{format_gfd(gfd)}")
        print(
            f"# discovered {len(result.gfds)} GFDs, cover keeps "
            f"{len(cover.cover)} ({len(cover.removed)} redundant), "
            f"{report.total_violations} violations on the source graph",
            file=sys.stderr,
        )
        print(
            f"# backend={metrics.backend_name} workers={metrics.num_workers} "
            f"started {metrics.backend_starts}x, index attached "
            f"{metrics.lifecycle.index_attaches}x, "
            f"{metrics.cluster.supersteps} supersteps",
            file=sys.stderr,
        )
        if args.output:
            save_rules(cover.cover, args.output, supports=result.supports)
        _write_metrics(session, args.metrics)
    _write_trace(tracer, args.trace)
    return 0 if report.is_clean else 1


def _cmd_cover(args: argparse.Namespace) -> int:
    rules = load_rules(args.rules)
    tracer = _make_tracer(args)
    if (args.workers or 0) > 1 or args.backend is not None:
        import warnings

        from .parallel import SimulatedCluster, parallel_cover

        # the cover verb has no graph, so there is no session to open: a
        # tracer rides in on a pre-built cluster instead
        metered = (
            SimulatedCluster(args.workers or 4, tracer=tracer)
            if tracer is not None
            else None
        )
        with warnings.catch_warnings():
            # the standalone parallel_cover call IS the supported path here
            warnings.simplefilter("ignore", DeprecationWarning)
            result, cluster = parallel_cover(
                rules,
                num_workers=args.workers or 4,
                cluster=metered,
                backend=args.backend,
                fault=_fault_from_args(args),
            )
        print(
            f"# backend={args.backend or 'serial'} "
            f"workers={cluster.num_workers} "
            f"modeled parallel time {cluster.metrics.elapsed_parallel:.3f}s",
            file=sys.stderr,
        )
    elif tracer is not None:
        with tracer.span("cover", "phase", size=len(rules)):
            result = sequential_cover(rules)
    else:
        result = sequential_cover(rules)
    for gfd in result.cover:
        print(format_gfd(gfd))
    print(
        f"# cover {len(result.cover)} of {len(rules)} "
        f"({len(result.removed)} redundant)",
        file=sys.stderr,
    )
    if args.output:
        save_rules(result.cover, args.output)
    _write_trace(tracer, args.trace)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the enforcement service over HTTP until stopped."""
    import asyncio

    from .serve import EnforcementService, ServeConfig, serve_http

    graph = load_graph(args.graph)
    sigma = load_rules(args.rules) if args.rules else None
    config = DiscoveryConfig(
        k=args.k, sigma=args.sigma, max_lhs_size=args.max_lhs,
        shared_memory=not args.no_shared_memory,
    )
    fault = _fault_from_args(args)
    if fault != "auto":
        config.fault = fault
    if args.backend is not None:
        config.parallel_backend = args.backend
    serve_config = ServeConfig(
        max_queue_depth=args.max_queue_depth,
        default_deadline_s=args.deadline,
        commit_max_batch=args.commit_batch,
        commit_linger_s=args.commit_linger,
        monitor_backend=None if args.no_monitor else "hll",
    )
    tracer = _make_tracer(args)

    async def run() -> int:
        service = EnforcementService(
            graph,
            sigma=sigma,
            config=config,
            serve=serve_config,
            num_workers=args.workers,
            backend=args.backend,
            index_path=args.index,
            tracer=tracer,
        )
        await service.start()
        server = await serve_http(service, host=args.host, port=args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(
            f"# serving http://{host}:{port} — version "
            f"{service.chain.current_version}, "
            f"{len(service.session.sigma)} rules, "
            f"backend={service.session.metrics().backend_name}",
            file=sys.stderr, flush=True,
        )
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        finally:
            server.close()
            await server.wait_closed()
            stats = service.stats()  # before close drains the chain
            await service.close()
            print(
                f"# served {stats['chain']['pins']} pinned reads, "
                f"{stats.get('commits', 0)} commits "
                f"({stats.get('mutations', 0)} mutations), final version "
                f"{stats.get('version', 0)}, "
                f"leaked leases {service.leaked_leases}",
                file=sys.stderr,
            )
        return 0 if service.leaked_leases == 0 else 1

    try:
        code = asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0
    _write_trace(tracer, args.trace)
    return code


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-gfd",
        description="GFD discovery (SIGMOD'18 reproduction)",
        epilog="Parallel verbs (discover, enforce, cover) take --backend "
               "serial|multiprocess — multiprocess runs real worker "
               "processes attaching the frozen graph index via shared "
               "memory; --no-shared-memory falls back to pickling the "
               "buffers into each worker.  $REPRO_PARALLEL_BACKEND sets "
               "the default backend.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="print graph statistics")
    stats.add_argument("graph", help="graph file (.json or .tsv)")
    stats.set_defaults(func=_cmd_stats)

    index = commands.add_parser(
        "index",
        help="persist / inspect on-disk graph indexes",
        epilog="The store format is versioned and checksummed (see "
               "docs/ARCHITECTURE.md): build once, then any process — "
               "including every multiprocess worker — attaches the "
               "snapshot via mmap in milliseconds.",
    )
    index_commands = index.add_subparsers(dest="index_command", required=True)
    ibuild = index_commands.add_parser(
        "build", help="freeze a graph and persist its index")
    ibuild.add_argument("graph", help="graph file (.json or .tsv)")
    ibuild.add_argument("-o", "--output", default=None,
                        help="output file (default: graph path with a "
                             ".rgix suffix)")
    ibuild.set_defaults(func=_cmd_index_build)
    iinspect = index_commands.add_parser(
        "inspect", help="print a persisted index's header facts")
    iinspect.add_argument("index", help="persisted index file")
    iinspect.add_argument("--json", action="store_true",
                          help="print the facts as JSON")
    iinspect.set_defaults(func=_cmd_index_inspect)

    disc = commands.add_parser(
        "discover",
        help="mine GFDs from a graph",
        epilog="--backend multiprocess shards the mining over real worker "
               "processes (shared-memory graph buffers; --no-shared-memory "
               "selects the pickle transport).",
    )
    disc.add_argument("graph", help="graph file (.json or .tsv)")
    disc.add_argument("--k", type=int, default=3, help="pattern-variable bound")
    disc.add_argument("--sigma", type=int, default=10, help="support threshold")
    disc.add_argument("--max-lhs", type=int, default=2, help="LHS literal cap")
    disc.add_argument("--workers", type=int, default=None,
                      help="ParDis workers (>1 selects the parallel engine; "
                           "unset with --backend multiprocess uses the "
                           "config default of 4)")
    disc.add_argument("--backend",
                      choices=["serial", "multiprocess", "auto"],
                      default=None,
                      help="ParDis execution backend (auto: cost-based "
                           "per-phase choice; default: serial, or "
                           "$REPRO_PARALLEL_BACKEND)")
    disc.add_argument("--no-shared-memory", action="store_true",
                      help="ship graph buffers to multiprocess workers by "
                           "pickle instead of shared memory")
    disc.add_argument("--no-negative", action="store_true",
                      help="skip negative GFDs")
    disc.add_argument("--cover", action="store_true",
                      help="reduce the output to a cover")
    disc.add_argument("--output", help="also write rules to this file")
    _add_index_argument(disc)
    _add_fault_arguments(disc)
    disc.add_argument("--metrics", help="write session metrics (backend "
                                        "lifecycle, transfers, supersteps) "
                                        "as JSON to this file")
    _add_trace_argument(disc)
    disc.set_defaults(func=_cmd_discover)

    pipe = commands.add_parser(
        "pipeline",
        help="discover → cover → enforce in one resource-owning session",
        epilog="Runs the paper's whole workflow on a single Session: the "
               "worker pools start once and the graph index is attached "
               "once, shared by all three phases (--metrics proves it).  "
               "Prints the cover with supports; exit code 1 if the source "
               "graph violates its own rules (it should not).",
    )
    pipe.add_argument("graph", help="graph file (.json or .tsv)")
    pipe.add_argument("--k", type=int, default=3, help="pattern-variable bound")
    pipe.add_argument("--sigma", type=int, default=10, help="support threshold")
    pipe.add_argument("--max-lhs", type=int, default=2, help="LHS literal cap")
    pipe.add_argument("--workers", type=int, default=None,
                      help="session workers (default: 1 serial / "
                           "4 multiprocess)")
    pipe.add_argument("--backend",
                      choices=["serial", "multiprocess", "auto"],
                      default=None,
                      help="session execution backend (auto: cost-based "
                           "per-phase choice; default: serial, or "
                           "$REPRO_PARALLEL_BACKEND)")
    pipe.add_argument("--no-shared-memory", action="store_true",
                      help="ship graph buffers to multiprocess workers by "
                           "pickle instead of shared memory")
    pipe.add_argument("--no-negative", action="store_true",
                      help="skip negative GFDs")
    pipe.add_argument("--output", help="write the cover to this file "
                                       "(.json keeps supports)")
    _add_index_argument(pipe)
    _add_fault_arguments(pipe)
    pipe.add_argument("--metrics", help="write session metrics as JSON to "
                                        "this file")
    _add_trace_argument(pipe)
    pipe.set_defaults(func=_cmd_pipeline)

    enf = commands.add_parser(
        "enforce",
        help="validate a rule set with the compiled enforcement engine",
        epilog="--backend multiprocess evaluates the compiled plan on real "
               "worker processes over the shared-memory graph index "
               "(--no-shared-memory selects the pickle transport); match "
               "shards stay resident in the workers across passes.",
    )
    enf.add_argument("graph", help="graph file (.json or .tsv)")
    enf.add_argument("rules", help="rule file (text lines or Σ .json)")
    enf.add_argument("--backend", choices=["serial", "multiprocess"],
                     default=None,
                     help="evaluation backend (default: serial, or "
                          "$REPRO_PARALLEL_BACKEND)")
    enf.add_argument("--workers", type=int, default=None,
                     help="evaluation shards (default: 1 serial / "
                          "4 multiprocess)")
    enf.add_argument("--no-shared-memory", action="store_true",
                     help="ship graph buffers to multiprocess workers by "
                          "pickle instead of shared memory")
    enf.add_argument("--samples", type=int, default=5,
                     help="violating matches printed per rule (seeded "
                          "sample when the cap binds)")
    enf.add_argument("--seed", type=int, default=0,
                     help="seed of the capped violation sample")
    enf.add_argument("--max-violations-per-rule", type=int, default=None,
                     help="per-rule cap on materialized violating rows — "
                          "counts stay exact, witness sets degrade "
                          "gracefully on adversarial rules (default: "
                          "unbounded)")
    enf.add_argument("--json", help="also write a machine-readable report "
                                    "to this file")
    _add_index_argument(enf)
    _add_fault_arguments(enf)
    enf.add_argument("--metrics", help="write session metrics as JSON to "
                                       "this file")
    _add_trace_argument(enf)
    enf.set_defaults(func=_cmd_enforce)

    val = commands.add_parser("validate", help="check rules against a graph")
    val.add_argument("graph", help="graph file (.json or .tsv)")
    val.add_argument("rules", help="rule file (one GFD per line)")
    val.add_argument("--limit", type=int, default=100,
                     help="max violations reported per GFD")
    val.set_defaults(func=_cmd_validate)

    cov = commands.add_parser(
        "cover",
        help="compute a cover of a rule file",
        epilog="--workers > 1 or --backend runs ParCover (grouped units, "
               "LPT-balanced) instead of SeqCover; the cover is identical.",
    )
    cov.add_argument("rules", help="rule file (one GFD per line)")
    cov.add_argument("--workers", type=int, default=None,
                     help="ParCover workers (>1 selects the parallel cover)")
    cov.add_argument("--backend", choices=["serial", "multiprocess"],
                     default=None,
                     help="cover execution backend (default: serial)")
    _add_fault_arguments(cov)
    cov.add_argument("--output", help="also write the cover to this file")
    _add_trace_argument(cov)
    cov.set_defaults(func=_cmd_cover)

    srv = commands.add_parser(
        "serve",
        help="run enforcement-as-a-service over HTTP (MVCC snapshots, "
             "group-commit writes)",
        epilog="Readers pin a consistent snapshot version per request "
               "(POST /validate), writes group-commit through the delta "
               "log (POST /mutate), and GET /metrics exposes the "
               "Prometheus gauges including the live per-rule "
               "distinct-pivot sketches.  Without --rules the service "
               "mines its own Σ at startup with the discovery knobs.",
    )
    srv.add_argument("graph", help="graph file (.json or .tsv)")
    srv.add_argument("--rules", default=None,
                     help="rule file to serve (default: discover Σ at "
                          "startup)")
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument("--port", type=int, default=8080,
                     help="bind port (0 picks an ephemeral port)")
    srv.add_argument("--duration", type=float, default=None,
                     metavar="SECONDS",
                     help="serve for a fixed time then exit cleanly "
                          "(default: run until interrupted)")
    srv.add_argument("--workers", type=int, default=None,
                     help="backend workers (default: 1 serial / "
                          "4 multiprocess)")
    srv.add_argument("--backend",
                     choices=["serial", "multiprocess", "auto"],
                     default=None,
                     help="execution backend of the single lane "
                          "(default: serial, or $REPRO_PARALLEL_BACKEND)")
    srv.add_argument("--no-shared-memory", action="store_true",
                     help="ship graph buffers to multiprocess workers by "
                          "pickle instead of shared memory")
    srv.add_argument("--k", type=int, default=2,
                     help="startup-discovery pattern-variable bound")
    srv.add_argument("--sigma", type=int, default=10,
                     help="startup-discovery support threshold")
    srv.add_argument("--max-lhs", type=int, default=1,
                     help="startup-discovery LHS literal cap")
    srv.add_argument("--max-queue-depth", type=int, default=32,
                     help="execution-lane admission bound (503 beyond it)")
    srv.add_argument("--deadline", type=float, default=30.0,
                     help="default per-request deadline in seconds")
    srv.add_argument("--commit-batch", type=int, default=128,
                     help="mutations per group commit before an early "
                          "flush")
    srv.add_argument("--commit-linger", type=float, default=0.005,
                     metavar="SECONDS",
                     help="how long a lone mutation waits for company")
    srv.add_argument("--no-monitor", action="store_true",
                     help="disable the streaming per-rule distinct-pivot "
                          "sketches")
    _add_index_argument(srv)
    _add_fault_arguments(srv)
    _add_trace_argument(srv)
    srv.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-gfd`` and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
