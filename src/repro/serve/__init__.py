"""The serving layer (PR 10): enforcement-as-a-service over MVCC snapshots.

The package turns the single-caller :class:`~repro.session.Session` into
a concurrent service without giving up its one-backend resource model:

* :mod:`~repro.serve.snapshots` — the refcounted MVCC version chain of
  frozen index snapshots + enforcement reports (readers pin, writers
  publish, retirement releases through the PR 9 store/janitor seams);
* :mod:`~repro.serve.writer` — the group-commit protocol: batched
  mutations through the :class:`~repro.enforce.delta.DeltaLog`, one
  delta-aware refresh, one published version;
* :mod:`~repro.serve.service` — the asyncio request layer (admission
  control, deadlines, per-request budgets, metrics);
* :mod:`~repro.serve.http` — a stdlib-only HTTP front with a
  ``/metrics`` Prometheus endpoint;
* :mod:`~repro.serve.loadgen` — the mixed-traffic load generator behind
  ``benchmarks/bench_serve.py``.

Quickstart::

    import asyncio
    from repro.serve import EnforcementService, ServeConfig

    async def main():
        async with EnforcementService(graph, sigma=rules) as service:
            report = await service.validate()
            await service.mutate([{"op": "set_attr", "node": 0,
                                   "attr": "name", "value": "x"}])
            report = await service.validate()   # next version

    asyncio.run(main())

Or from the CLI: ``repro-gfd serve graph.json --rules sigma.json``.
"""

from .http import serve_http
from .loadgen import LoadResult, TrafficMix, run_load
from .service import (
    DeadlineExceeded,
    EnforcementService,
    ServeConfig,
    ServiceClosed,
    ServiceOverloaded,
    report_payload,
)
from .snapshots import Snapshot, SnapshotChain, SnapshotLease
from .writer import GroupCommitWriter, MutationOp, apply_ops

__all__ = [
    "EnforcementService",
    "ServeConfig",
    "ServiceOverloaded",
    "ServiceClosed",
    "DeadlineExceeded",
    "report_payload",
    "Snapshot",
    "SnapshotChain",
    "SnapshotLease",
    "GroupCommitWriter",
    "MutationOp",
    "apply_ops",
    "serve_http",
    "run_load",
    "LoadResult",
    "TrafficMix",
]
