"""A mixed-traffic load generator for :class:`EnforcementService`.

Closed-loop clients (each waits for its response before issuing the next
request — the classic serving-benchmark model, so offered load adapts to
service capacity instead of open-loop overload) issue a seeded random mix
of validate / discover / cover / mutate requests directly against the
in-process service.  Latencies are recorded per request kind; the summary
reports p50/p99/mean and throughput, and the full run (every response's
pinned version, every admission rejection) is kept for the bench gate's
replay-identity verification.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .service import (
    DeadlineExceeded,
    EnforcementService,
    ServiceOverloaded,
)
from .writer import MutationOp

__all__ = ["TrafficMix", "LoadResult", "run_load"]


@dataclass(frozen=True)
class TrafficMix:
    """Relative request-kind weights (need not sum to 1)."""

    validate: float = 0.80
    discover: float = 0.05
    cover: float = 0.05
    mutate: float = 0.10

    def choose(self, rng: random.Random) -> str:
        kinds = ("validate", "discover", "cover", "mutate")
        weights = (self.validate, self.discover, self.cover, self.mutate)
        return rng.choices(kinds, weights=weights, k=1)[0]


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


@dataclass
class LoadResult:
    """Everything a gate needs from one load run."""

    requests: int = 0
    errors: int = 0
    rejected_overload: int = 0
    rejected_deadline: int = 0
    elapsed_seconds: float = 0.0
    #: Per-kind latency samples, seconds.
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-kind completed-request counts.
    completed: Dict[str, int] = field(default_factory=dict)
    #: Every validate response (for replay-identity verification).
    validate_responses: List[Dict[str, Any]] = field(default_factory=list)
    #: Every mutate response's published version.
    mutate_versions: List[int] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        """``{kind: {p50, p99, mean, max, count}}`` in seconds."""
        summary: Dict[str, Dict[str, float]] = {}
        for kind, values in sorted(self.latencies.items()):
            ordered = sorted(values)
            summary[kind] = {
                "count": float(len(ordered)),
                "mean": sum(ordered) / len(ordered) if ordered else 0.0,
                "p50": _quantile(ordered, 0.50),
                "p99": _quantile(ordered, 0.99),
                "max": ordered[-1] if ordered else 0.0,
            }
        return summary

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "rejected_overload": self.rejected_overload,
            "rejected_deadline": self.rejected_deadline,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput,
            "completed": dict(sorted(self.completed.items())),
            "latency": self.latency_summary(),
        }


def _random_mutation(
    rng: random.Random, num_nodes: int, attrs: List[str]
) -> MutationOp:
    """A benign random mutation (attribute churn on existing nodes)."""
    node = rng.randrange(num_nodes)
    attr = rng.choice(attrs) if attrs else "name"
    return MutationOp(
        op="set_attr",
        args={"node": node, "attr": attr, "value": f"load-{rng.randrange(1_000_000)}"},
    )


async def run_load(
    service: EnforcementService,
    clients: int = 8,
    requests_per_client: int = 25,
    mix: Optional[TrafficMix] = None,
    seed: int = 7,
    mutation_attrs: Optional[List[str]] = None,
    discover_budget: int = 10,
    deadline_s: Optional[float] = None,
) -> LoadResult:
    """Drive ``clients`` concurrent closed-loop clients; gather stats.

    Deterministic per seed in *what* is issued (each client derives its
    own ``random.Random(seed + client)``) though not in interleaving —
    which is the point: the replay-identity check must hold for every
    interleaving the scheduler produces.
    """
    mix = mix if mix is not None else TrafficMix()
    attrs = mutation_attrs if mutation_attrs is not None else ["name"]
    num_nodes = service.graph.num_nodes
    result = LoadResult()
    lock = asyncio.Lock()

    async def record(kind: str, seconds: float, payload: Any) -> None:
        async with lock:
            result.requests += 1
            result.completed[kind] = result.completed.get(kind, 0) + 1
            result.latencies.setdefault(kind, []).append(seconds)
            if kind == "validate":
                result.validate_responses.append(payload)
            elif kind == "mutate":
                result.mutate_versions.append(payload["version"])

    async def client(client_id: int) -> None:
        rng = random.Random(seed + client_id)
        for _ in range(requests_per_client):
            kind = mix.choose(rng)
            started = time.perf_counter()
            try:
                if kind == "validate":
                    payload = await service.validate(
                        include_nodes=True, include_samples=True
                    )
                elif kind == "discover":
                    payload = await service.discover(
                        max_rules=discover_budget, deadline_s=deadline_s
                    )
                elif kind == "cover":
                    payload = await service.cover(deadline_s=deadline_s)
                else:
                    payload = await service.mutate(
                        [_random_mutation(rng, num_nodes, attrs)],
                        deadline_s=deadline_s,
                    )
            except ServiceOverloaded:
                async with lock:
                    result.rejected_overload += 1
                continue
            except DeadlineExceeded:
                async with lock:
                    result.rejected_deadline += 1
                continue
            except Exception:
                async with lock:
                    result.errors += 1
                continue
            await record(kind, time.perf_counter() - started, payload)

    started = time.perf_counter()
    await asyncio.gather(*(client(i) for i in range(clients)))
    result.elapsed_seconds = time.perf_counter() - started
    return result
