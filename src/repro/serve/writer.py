"""Group-commit writes: batch mutations, refresh once, publish once.

Applying each client mutation as its own enforcement pass would pay the
radius-``d_Q`` ball re-match per edit.  The :class:`GroupCommitWriter`
instead accumulates a batch of :class:`MutationOp`\\ s and commits them
together:

1. apply every op through the graph's mutators — each one feeds the
   session's :class:`~repro.enforce.delta.DeltaLog` and bumps
   ``graph.version`` exactly as an interactive edit would;
2. run one delta-aware :meth:`Session.refresh` — the session re-snapshots
   the index and re-points the live backend via the existing
   ``refresh_index`` (worker pools survive), and the engine re-matches
   only the union ball of the whole batch;
3. publish the resulting report + index as the next
   :class:`~repro.serve.snapshots.Snapshot` on the chain.

The whole batch lands in ONE published version: every batched mutation's
future resolves with that version, which is the version whose report
first reflects the write (read-your-writes by pinning it).  Batch
boundaries are policy of the service layer (size trigger + linger timer);
the writer is the synchronous commit protocol, run on the service's
single execution lane — the same lane enforcement passes run on, which is
what serializes commits against engine-touching reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..graph.graph import Graph
from ..session import Session
from .snapshots import Snapshot, SnapshotChain

__all__ = ["MutationOp", "GroupCommitWriter", "apply_ops"]

#: Op name -> required JSON argument names, the wire/replay format.
OP_SIGNATURES: Dict[str, Tuple[str, ...]] = {
    "add_node": ("label",),  # + optional "attrs" dict
    "add_edge": ("src", "dst", "label"),
    "remove_edge": ("src", "dst", "label"),
    "set_attr": ("node", "attr", "value"),
    "remove_attr": ("node", "attr"),
    "relabel_node": ("node", "label"),
}


@dataclass(frozen=True)
class MutationOp:
    """One graph mutation in wire form (JSON-safe, replayable)."""

    op: str
    args: Dict[str, Any]

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MutationOp":
        """Validate and build from a request payload."""
        op = payload.get("op")
        if op not in OP_SIGNATURES:
            raise ValueError(
                f"unknown mutation op {op!r} "
                f"(expected one of {sorted(OP_SIGNATURES)})"
            )
        args = {k: v for k, v in payload.items() if k != "op"}
        missing = [name for name in OP_SIGNATURES[op] if name not in args]
        if missing:
            raise ValueError(f"mutation {op!r} missing {missing}")
        return cls(op=op, args=args)

    def as_dict(self) -> Dict[str, Any]:
        return {"op": self.op, **self.args}

    def apply(self, graph: Graph) -> Any:
        """Execute against ``graph`` (returns the mutator's result)."""
        args = self.args
        if self.op == "add_node":
            return graph.add_node(args["label"], args.get("attrs"))
        if self.op == "add_edge":
            return graph.add_edge(args["src"], args["dst"], args["label"])
        if self.op == "remove_edge":
            return graph.remove_edge(args["src"], args["dst"], args["label"])
        if self.op == "set_attr":
            return graph.set_attr(args["node"], args["attr"], args["value"])
        if self.op == "remove_attr":
            return graph.remove_attr(args["node"], args["attr"])
        if self.op == "relabel_node":
            return graph.relabel_node(args["node"], args["label"])
        raise ValueError(f"unknown mutation op {self.op!r}")  # unreachable


def apply_ops(graph: Graph, ops: List[MutationOp]) -> List[Any]:
    """Apply a recorded batch to ``graph`` (the replay-side helper)."""
    return [op.apply(graph) for op in ops]


class GroupCommitWriter:
    """The single-writer commit protocol over one session + chain."""

    def __init__(self, session: Session, chain: SnapshotChain) -> None:
        self.session = session
        self.chain = chain
        #: Group commits executed.
        self.commits = 0
        #: Mutations applied across all commits.
        self.mutations = 0
        #: Every committed batch in version order (``commit_log[v-1]`` is
        #: the batch that published version ``v``) — the replay record the
        #: identity harness and bench gate verify against.
        self.commit_log: List[List[MutationOp]] = []

    def bootstrap(self) -> Snapshot:
        """Publish version 0: one full validation of the startup state."""
        report = self.session.enforce()
        snapshot = Snapshot(
            version=0,
            graph_version=self.session.graph.version,
            index=self.session.index,
            report=report,
            ops=[],
        )
        self.chain.publish(snapshot)
        return snapshot

    def commit(self, ops: List[MutationOp]) -> Snapshot:
        """Apply one batch, refresh once, publish the next version.

        Must run on the service's execution lane.  A mutator raising
        (e.g. ``set_attr`` on an unknown node) aborts the commit with the
        already-applied prefix still in the graph *and in the delta log* —
        the next successful commit's refresh absorbs it, so the chain
        never publishes a version whose report is out of sync with the
        graph.  The failed batch is not recorded in the commit log; the
        service layer maps the error to every waiter in the batch.
        """
        applied = 0
        try:
            for op in ops:
                op.apply(self.session.graph)
                applied += 1
        finally:
            self.mutations += applied
        report = self.session.refresh()
        version = self.chain.current_version + 1
        snapshot = Snapshot(
            version=version,
            graph_version=self.session.graph.version,
            index=self.session.index,
            report=report,
            ops=list(ops),
        )
        self.commit_log.append(list(ops))
        self.commits += 1
        self.chain.publish(snapshot)
        return snapshot
