"""Enforcement-as-a-service: one session, many logical clients.

:class:`EnforcementService` multiplexes concurrent ``validate`` /
``discover`` / ``cover`` / ``mutate`` requests over ONE
:class:`~repro.session.Session` (one execution backend, one delta log,
one compiled Σ) and the MVCC :class:`~repro.serve.snapshots.SnapshotChain`.
The concurrency architecture has exactly two lanes:

* the **event loop** admits requests, serves ``validate`` reads straight
  off pinned snapshots (O(1), no engine work — reads at version ``N``
  proceed while version ``N+1`` is being committed), schedules group
  commits, and renders ``/metrics``;
* one **execution lane** (a single worker thread) runs everything that
  touches the engines — group commits, discovery, cover.  The engines
  are single-caller by contract; the lane *is* the serialization that
  makes them safe under concurrent clients, while real parallelism stays
  where it belongs, inside the multiprocess backend the lane drives.

Admission control is two checks at the door (and one at execution):

* **queue-depth backpressure** — a request that would make the execution
  lane's queue deeper than ``ServeConfig.max_queue_depth`` is rejected
  immediately with :class:`ServiceOverloaded` (shed at admission, not
  after queueing — the client can back off with an accurate picture);
* **deadline rejection** — every request carries a deadline (its own or
  ``ServeConfig.default_deadline_s``); lane work re-checks it when
  dequeued and sheds with :class:`DeadlineExceeded` instead of burning
  the lane on an answer nobody is waiting for.

Per-request budgets reuse the engines' native early-stop seams:
``discover`` budgets clamp to ``ServeConfig.discover_max_rules`` /
``discover_max_levels`` (the :meth:`~repro.session.Session.discover_iter`
budgets), and validation reports inherit the session's
``max_violations_per_rule`` / ``max_violation_samples`` caps.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.config import DiscoveryConfig, EnforcementConfig
from ..enforce.engine import EnforcementReport
from ..enforce.monitor import RuleSketchMonitor
from ..gfd.gfd import GFD
from ..gfd.parser import format_gfd
from ..graph.graph import Graph
from ..obs.metrics import MetricsRegistry
from ..session import Session
from .snapshots import SnapshotChain, SnapshotLease
from .writer import GroupCommitWriter, MutationOp

__all__ = [
    "ServeConfig",
    "EnforcementService",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "ServiceClosed",
    "report_payload",
]


class ServiceOverloaded(RuntimeError):
    """Rejected at admission: the execution lane's queue is full."""


class DeadlineExceeded(RuntimeError):
    """Shed: the request's deadline passed before (or while) queued."""


class ServiceClosed(RuntimeError):
    """The service is shutting down and admits no new requests."""


@dataclass(frozen=True)
class ServeConfig:
    """Service-level policy knobs (admission, batching, budgets)."""

    #: Max requests queued-or-running on the execution lane before
    #: admission rejects with :class:`ServiceOverloaded`.
    max_queue_depth: int = 32
    #: Deadline applied to requests that do not carry their own.
    default_deadline_s: float = 30.0
    #: Mutations buffered before a group commit fires regardless of the
    #: linger timer.
    commit_max_batch: int = 128
    #: How long a lone mutation waits for company before committing.
    commit_linger_s: float = 0.005
    #: Pending-mutation buffer bound (admission backpressure for writers).
    max_pending_mutations: int = 1024
    #: Hard caps the per-request ``discover`` budgets clamp to.
    discover_max_rules: int = 100
    discover_max_levels: int = 3
    #: Whether ``validate`` responses carry violation samples / flagged
    #: node lists by default (requests can override per call).
    include_samples: bool = False
    include_nodes: bool = False
    #: The streaming violation monitor's estimator (satellite: live
    #: per-rule distinct-pivot gauges); ``None`` disables the monitor.
    monitor_backend: Optional[str] = "hll"
    monitor_precision: int = 12


def report_payload(
    report: EnforcementReport,
    include_nodes: bool = True,
    include_samples: bool = True,
    rules: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    """The deterministic read surface of a report (JSON-safe).

    Contains only state-derived fields — rule texts, counts, node sets,
    seeded samples — never timings, backend names, worker counts or the
    full/incremental mode, so the payload at a pinned version is
    *byte-identical* to a single-client Session replaying that version
    (the acceptance property the concurrency harness asserts).
    ``rules`` optionally restricts to those Σ positions.
    """
    positions = range(len(report.rules)) if rules is None else rules
    entries: List[Dict[str, Any]] = []
    total = 0
    for position in positions:
        rule = report.rules[position]
        total += rule.violation_count
        entry: Dict[str, Any] = {
            "position": int(position),
            "gfd": format_gfd(rule.gfd),
            "violations": rule.violation_count,
            "distinct_pivots": rule.distinct_pivots,
            "witnesses_truncated": rule.witnesses_truncated,
            "sample_truncated": rule.sample_truncated,
        }
        if include_nodes:
            entry["nodes"] = sorted(rule.nodes)
        if include_samples:
            entry["sample"] = [list(row) for row in rule.sample]
        entries.append(entry)
    return {
        "total_violations": total,
        "clean": total == 0,
        "rules": entries,
    }


class _LaneItem:
    """One unit of execution-lane work with its admission metadata."""

    __slots__ = ("fn", "deadline", "kind")

    def __init__(self, fn, deadline: float, kind: str) -> None:
        self.fn = fn
        self.deadline = deadline
        self.kind = kind


class EnforcementService:
    """The asyncio serving layer (see module docstring).

    Args:
        graph: the live graph to serve.
        sigma: the served rule set Σ.  ``None`` runs a budgeted discovery
            at startup (``ServeConfig.discover_max_rules``) and serves
            what it finds.
        config / enforcement / num_workers / backend / index_path /
            index_mmap / tracer: forwarded to the underlying
            :class:`~repro.session.Session` (the session is created with
            ``index_autosave=False`` — a serving process re-serializing
            the store file on every commit would dominate the write path).
        serve: the :class:`ServeConfig` policies.
        monitor: a pre-built (e.g. warm-started) monitor; default builds
            one per ``serve.monitor_backend``.

    Use ``async with`` (or :meth:`start` / :meth:`close`).  All public
    request methods are coroutines and must run on the loop that called
    :meth:`start`.
    """

    def __init__(
        self,
        graph: Graph,
        sigma: Optional[List[GFD]] = None,
        config: Optional[DiscoveryConfig] = None,
        enforcement: Optional[EnforcementConfig] = None,
        serve: Optional[ServeConfig] = None,
        num_workers: Optional[int] = None,
        backend: Optional[str] = None,
        index_path: Optional[Any] = None,
        index_mmap: bool = True,
        tracer: Optional[Any] = None,
        monitor: Optional[RuleSketchMonitor] = None,
    ) -> None:
        self.graph = graph
        self._initial_sigma = list(sigma) if sigma is not None else None
        self._session_kwargs = dict(
            config=config,
            enforcement=enforcement,
            num_workers=num_workers,
            backend=backend,
            index_path=index_path,
            index_mmap=index_mmap,
            index_autosave=False,
            tracer=tracer,
        )
        self.serve = serve if serve is not None else ServeConfig()
        if monitor is None and self.serve.monitor_backend is not None:
            monitor = RuleSketchMonitor(
                backend=self.serve.monitor_backend,
                precision=self.serve.monitor_precision,
            )
        self.monitor = monitor
        self.chain = SnapshotChain()
        self.session: Optional[Session] = None
        self.writer: Optional[GroupCommitWriter] = None
        self.registry = MetricsRegistry()
        #: Leases still held at shutdown (must be 0; the bench gates on it).
        self.leaked_leases: Optional[int] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._lane_depth = 0
        self._lane_futures: set = set()
        self._pending: List[Tuple[List[MutationOp], asyncio.Future]] = []
        self._pending_ops = 0
        self._flush_task: Optional[asyncio.Task] = None
        self._flush_now: Optional[asyncio.Event] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Build the session, compute version 0, open for requests.

        Everything engine-touching — session construction (worker pools),
        the optional startup discovery, the bootstrap validation — runs on
        the execution lane, the same thread every later commit uses.
        """
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._flush_now = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-lane"
        )

        def bootstrap() -> None:
            self.session = Session(
                self.graph, monitor=self.monitor, **self._session_kwargs
            )
            if self._initial_sigma is not None:
                self.session.set_sigma(self._initial_sigma)
            else:
                list(
                    self.session.discover_iter(
                        max_rules=self.serve.discover_max_rules,
                        max_levels=self.serve.discover_max_levels,
                    )
                )
            self.writer = GroupCommitWriter(self.session, self.chain)
            self.writer.bootstrap()

        await self._loop.run_in_executor(self._pool, bootstrap)

    async def close(self) -> None:
        """Drain, final-commit, retire every snapshot, release the session.

        Shutdown order matters: stop admitting, flush buffered mutations
        (writers holding a future must resolve), drain the lane, then
        close the chain (recording leaked leases) *before* the session —
        retiring a version may close its store mapping, which must happen
        while the process still owns it.
        """
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        # resolve buffered writers: one final commit
        if self._flush_task is not None:
            self._flush_now.set()
            try:
                await self._flush_task
            except Exception:
                pass
        await self._commit_pending()
        if self._lane_futures:
            await asyncio.gather(
                *list(self._lane_futures), return_exceptions=True
            )
        self.leaked_leases = self.chain.close()
        if self.session is not None:
            await self._loop.run_in_executor(self._pool, self.session.close)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "EnforcementService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # admission + the execution lane
    # ------------------------------------------------------------------
    def _deadline(self, deadline_s: Optional[float]) -> float:
        if deadline_s is None:
            deadline_s = self.serve.default_deadline_s
        return time.monotonic() + deadline_s

    def _admit(self, kind: str) -> None:
        if self._closed or not self._started:
            self._count(kind, "rejected_closed")
            raise ServiceClosed("service is not accepting requests")
        if self._lane_depth >= self.serve.max_queue_depth:
            self._count(kind, "rejected_queue")
            raise ServiceOverloaded(
                f"execution lane at max_queue_depth="
                f"{self.serve.max_queue_depth}"
            )

    async def _run_on_lane(self, kind: str, fn, deadline: float):
        """Queue ``fn`` on the single execution thread; shed if expired."""
        item = _LaneItem(fn, deadline, kind)

        def run():
            if time.monotonic() > item.deadline:
                raise DeadlineExceeded(
                    f"{item.kind} deadline passed while queued"
                )
            return item.fn()

        self._lane_depth += 1
        future = self._loop.run_in_executor(self._pool, run)
        self._lane_futures.add(future)
        future.add_done_callback(self._lane_futures.discard)
        try:
            return await future
        finally:
            self._lane_depth -= 1

    def _count(self, kind: str, outcome: str) -> None:
        self.registry.counter(
            "repro_serve_requests_total", kind=kind, outcome=outcome
        ).inc()

    def _observe(self, kind: str, seconds: float) -> None:
        self.registry.histogram(
            "repro_serve_request_seconds", kind=kind
        ).observe(seconds)

    # ------------------------------------------------------------------
    # read path: validate straight off a pinned snapshot
    # ------------------------------------------------------------------
    def pin(self, version: Optional[int] = None) -> SnapshotLease:
        """Pin a live version (default: current) — the reader's MVCC hook.

        Exposed for streaming/multi-step consumers; :meth:`validate` pins
        and releases internally.
        """
        return self.chain.pin(version)

    async def validate(
        self,
        rules: Optional[Sequence[int]] = None,
        include_nodes: Optional[bool] = None,
        include_samples: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The current (or a pinned, still-live) version's violation state.

        Pure read: served from the snapshot's stored report, never
        touching the execution lane — a validate at version ``N`` costs
        the same whether or not a commit is publishing ``N+1``.
        """
        started = time.perf_counter()
        if self._closed or not self._started:
            self._count("validate", "rejected_closed")
            raise ServiceClosed("service is not accepting requests")
        try:
            lease = self.chain.pin(version)
        except LookupError:
            self._count("validate", "rejected_version")
            raise
        try:
            payload = report_payload(
                lease.snapshot.report,
                include_nodes=(
                    self.serve.include_nodes
                    if include_nodes is None
                    else include_nodes
                ),
                include_samples=(
                    self.serve.include_samples
                    if include_samples is None
                    else include_samples
                ),
                rules=rules,
            )
            payload["kind"] = "validate"
            payload["version"] = lease.version
            payload["graph_version"] = lease.snapshot.graph_version
        finally:
            lease.release()
        self._count("validate", "ok")
        self._observe("validate", time.perf_counter() - started)
        return payload

    # ------------------------------------------------------------------
    # lane requests: discover / cover
    # ------------------------------------------------------------------
    async def discover(
        self,
        max_rules: Optional[int] = None,
        max_levels: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Budgeted, exploratory discovery against the current version.

        The request budgets clamp to the service caps; the served Σ is
        *not* replaced (``update_sigma=False``) — discovery here is a
        read-only analytics op whose answer is tagged with the version it
        ran against.
        """
        started = time.perf_counter()
        self._admit("discover")
        cap_rules = self.serve.discover_max_rules
        cap_levels = self.serve.discover_max_levels
        budget_rules = cap_rules if max_rules is None else min(max_rules, cap_rules)
        budget_levels = (
            cap_levels if max_levels is None else min(max_levels, cap_levels)
        )

        def work() -> Dict[str, Any]:
            version = self.chain.current_version
            found = list(
                self.session.discover_iter(
                    max_rules=budget_rules,
                    max_levels=budget_levels,
                    update_sigma=False,
                )
            )
            return {
                "kind": "discover",
                "version": version,
                "max_rules": budget_rules,
                "max_levels": budget_levels,
                "rules": [format_gfd(gfd) for gfd in found],
            }

        try:
            payload = await self._run_on_lane(
                "discover", work, self._deadline(deadline_s)
            )
        except DeadlineExceeded:
            self._count("discover", "rejected_deadline")
            raise
        except Exception:
            self._count("discover", "error")
            raise
        self._count("discover", "ok")
        self._observe("discover", time.perf_counter() - started)
        return payload

    async def cover(
        self, deadline_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """The minimal cover of the served Σ (read-only analytics).

        Runs ``ParCover`` over the session's chase-cost model (warm-started
        covers balance by measured unit costs) and *restores* the served Σ
        afterwards — minimizing what the service enforces is an operator
        decision, not a request side effect.
        """
        started = time.perf_counter()
        self._admit("cover")

        def work() -> Dict[str, Any]:
            version = self.chain.current_version
            keep_rules = self.session.sigma
            keep_supports = self.session.supports
            try:
                result = self.session.cover()
            finally:
                self.session.set_sigma(keep_rules, keep_supports)
            return {
                "kind": "cover",
                "version": version,
                "input_size": len(keep_rules),
                "cover_size": len(result.cover),
                "rules": [format_gfd(gfd) for gfd in result.cover],
            }

        try:
            payload = await self._run_on_lane(
                "cover", work, self._deadline(deadline_s)
            )
        except DeadlineExceeded:
            self._count("cover", "rejected_deadline")
            raise
        except Exception:
            self._count("cover", "error")
            raise
        self._count("cover", "ok")
        self._observe("cover", time.perf_counter() - started)
        return payload

    # ------------------------------------------------------------------
    # write path: group commit
    # ------------------------------------------------------------------
    async def mutate(
        self,
        ops: Sequence[Any],
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit mutations; resolves once their group commit publishes.

        ``ops`` are :class:`~repro.serve.writer.MutationOp` or their dict
        wire form.  The response carries the published version whose
        report first reflects the write — pin it for read-your-writes.
        """
        started = time.perf_counter()
        if self._closed or not self._started:
            self._count("mutate", "rejected_closed")
            raise ServiceClosed("service is not accepting requests")
        if self._pending_ops >= self.serve.max_pending_mutations:
            self._count("mutate", "rejected_queue")
            raise ServiceOverloaded(
                f"pending mutations at max_pending_mutations="
                f"{self.serve.max_pending_mutations}"
            )
        batch = [
            op if isinstance(op, MutationOp) else MutationOp.from_dict(op)
            for op in ops
        ]
        if not batch:
            raise ValueError("mutate requires at least one op")
        future: asyncio.Future = self._loop.create_future()
        self._pending.append((batch, future))
        self._pending_ops += len(batch)
        if self._pending_ops >= self.serve.commit_max_batch:
            self._flush_now.set()
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = self._loop.create_task(self._flush_soon())
        try:
            snapshot = await asyncio.wait_for(
                asyncio.shield(future),
                timeout=(
                    deadline_s
                    if deadline_s is not None
                    else self.serve.default_deadline_s
                ),
            )
        except asyncio.TimeoutError:
            self._count("mutate", "rejected_deadline")
            raise DeadlineExceeded(
                "mutation deadline passed before its commit published"
            ) from None
        except Exception:
            self._count("mutate", "error")
            raise
        self._count("mutate", "ok")
        self._observe("mutate", time.perf_counter() - started)
        return {
            "kind": "mutate",
            "version": snapshot.version,
            "graph_version": snapshot.graph_version,
            "ops": len(batch),
            "batched_ops": len(snapshot.ops),
        }

    async def _flush_soon(self) -> None:
        """The linger timer: wait for company, then commit the batch."""
        linger = self.serve.commit_linger_s
        if linger > 0 and self._pending_ops < self.serve.commit_max_batch:
            try:
                await asyncio.wait_for(self._flush_now.wait(), timeout=linger)
            except asyncio.TimeoutError:
                pass
        self._flush_now.clear()
        await self._commit_pending()
        # mutations that arrived while the commit ran are buffered but have
        # no scheduled flush (this task looked busy to them) — chain the
        # next linger window so no writer waits on nothing
        if self._pending and not self._closed:
            self._flush_task = self._loop.create_task(self._flush_soon())

    async def _commit_pending(self) -> None:
        """Drain the pending buffer through one group commit on the lane."""
        if not self._pending:
            return
        drained = self._pending
        self._pending = []
        self._pending_ops = 0
        ops: List[MutationOp] = []
        for batch, _ in drained:
            ops.extend(batch)

        def work():
            return self.writer.commit(ops)

        self._lane_depth += 1
        try:
            future = self._loop.run_in_executor(self._pool, work)
            self._lane_futures.add(future)
            future.add_done_callback(self._lane_futures.discard)
            try:
                snapshot = await future
            except Exception as exc:
                for _, waiter in drained:
                    if not waiter.done():
                        waiter.set_exception(exc)
                return
            for _, waiter in drained:
                if not waiter.done():
                    waiter.set_result(snapshot)
            self.registry.counter("repro_serve_commits_total").inc()
            self.registry.counter("repro_serve_committed_ops_total").inc(
                len(ops)
            )
        finally:
            self._lane_depth -= 1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _fill_gauges(self) -> None:
        stats = self.chain.stats()
        self.registry.gauge("repro_serve_queue_depth").set(self._lane_depth)
        self.registry.gauge("repro_serve_pending_mutations").set(
            self._pending_ops
        )
        self.registry.gauge("repro_serve_live_versions").set(
            stats["live_versions"]
        )
        self.registry.gauge("repro_serve_pinned_leases").set(
            stats["pinned_leases"]
        )
        self.registry.gauge("repro_serve_snapshots_retired").set(
            stats["retired"]
        )
        current = self.chain.current
        if current is not None:
            self.registry.gauge("repro_serve_current_version").set(
                current.version
            )
        if self.monitor is not None and self.session is not None:
            names = {
                format_gfd(gfd): f"sigma[{position}]"
                for position, gfd in enumerate(self.session.sigma)
            }
            self.monitor.fill_registry(self.registry, names=names)

    def stats(self) -> Dict[str, Any]:
        """A JSON-safe operational snapshot (the ``/stats`` surface)."""
        chain = self.chain.stats()
        payload: Dict[str, Any] = {
            "started": self._started,
            "closed": self._closed,
            "queue_depth": self._lane_depth,
            "pending_mutations": self._pending_ops,
            "chain": chain,
            "sigma_size": (
                len(self.session.sigma) if self.session is not None else 0
            ),
        }
        if self.writer is not None:
            payload["commits"] = self.writer.commits
            payload["mutations"] = self.writer.mutations
        if self.chain.current is not None:
            payload["version"] = self.chain.current.version
        return payload

    def metrics_text(self) -> str:
        """The ``/metrics`` Prometheus exposition (service + session)."""
        self._fill_gauges()
        text = self.registry.to_prometheus()
        if self.session is not None:
            text += self.session.metrics().registry().to_prometheus()
        return text
