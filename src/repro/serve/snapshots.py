"""The MVCC snapshot chain: refcounted versions of the served graph state.

The serving layer multiplexes many logical clients over one
:class:`~repro.session.Session`, whose engine state always tracks the
*newest* graph version.  Reads must nevertheless be consistent: a client
that was answered "version 7" may stream that answer out (or cross-check
it) while the group-commit writer publishes versions 8 and 9.  The
:class:`SnapshotChain` makes that safe without copying the graph:

* every published version is a :class:`Snapshot` — the commit id, the
  graph version it reflects, the frozen :class:`~repro.graph.index.
  GraphIndex` of that state, and the full
  :class:`~repro.enforce.engine.EnforcementReport` computed by the
  commit's delta-aware refresh.  The report *is* the read surface:
  ``validate`` requests at a pinned version are served from it in O(1)
  without touching the engine, which is what lets reads proceed while a
  commit runs;
* readers :meth:`~SnapshotChain.pin` the version for the life of their
  request and get a :class:`SnapshotLease`; the chain refcounts leases
  per version;
* publishing version ``N+1`` retires every *older, unpinned* version:
  its report and index references drop, and an index attached through the
  PR 9 on-disk store releases its ``mmap`` handle through
  :func:`~repro.graph.store.release_index` (which unregisters from the
  janitor).  A version still pinned survives until its last lease goes —
  then the release runs from :meth:`~SnapshotChain.release`.

Zero-leak accounting is explicit: :meth:`~SnapshotChain.stats` exposes
live/retired/pinned counts, and :meth:`~SnapshotChain.close` returns the
number of leases still outstanding (the bench gate asserts 0).

Thread-safety: all chain state is guarded by one lock — publishes come
from the writer's execution lane while pins/releases come from the event
loop.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..enforce.engine import EnforcementReport
from ..graph.index import GraphIndex
from ..graph.store import release_index

__all__ = ["Snapshot", "SnapshotLease", "SnapshotChain"]


@dataclass
class Snapshot:
    """One published, immutable version of the served state."""

    #: The serving-level commit id (0 for the startup snapshot, then one
    #: per group commit) — the version clients pin and replay against.
    version: int
    #: ``graph.version`` at the moment this snapshot was published (the
    #: engine stamps the same value into ``report.graph_version``).
    graph_version: int
    #: The frozen index of this state (``None`` on index-less sessions).
    index: Optional[GraphIndex]
    #: The full enforcement report for this state — the read surface.
    report: EnforcementReport
    #: Mutation ops this commit applied (what a replay needs); empty for
    #: the startup snapshot.
    ops: List[Any] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshot(version={self.version}, "
            f"graph_version={self.graph_version})"
        )


class SnapshotLease:
    """A reader's pin on one snapshot version (release exactly once).

    Usable as a context manager; double-release is tolerated (idempotent)
    so error paths can release defensively.
    """

    __slots__ = ("chain", "snapshot", "_released")

    def __init__(self, chain: "SnapshotChain", snapshot: Snapshot) -> None:
        self.chain = chain
        self.snapshot = snapshot
        self._released = False

    @property
    def version(self) -> int:
        return self.snapshot.version

    @property
    def report(self) -> EnforcementReport:
        return self.snapshot.report

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self.chain.release(self.snapshot.version)

    def __enter__(self) -> "SnapshotLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class SnapshotChain:
    """The refcounted version chain (publish / pin / release / retire)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: Dict[int, Snapshot] = {}
        self._refcounts: Dict[int, int] = {}
        self._current: Optional[Snapshot] = None
        #: Lifetime counters (monotone; exported as serving metrics).
        self.published = 0
        self.retired = 0
        self.pins = 0
        #: Store mappings closed through the release seam.
        self.mappings_released = 0

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def publish(self, snapshot: Snapshot) -> None:
        """Install ``snapshot`` as the current version; retire old ones.

        Versions must be published in strictly increasing order.  Every
        older version with no outstanding lease is retired immediately;
        pinned versions stay until their last :meth:`release`.
        """
        with self._lock:
            if self._current is not None and (
                snapshot.version <= self._current.version
            ):
                raise ValueError(
                    f"version {snapshot.version} not after current "
                    f"{self._current.version}"
                )
            self._snapshots[snapshot.version] = snapshot
            self._refcounts.setdefault(snapshot.version, 0)
            self._current = snapshot
            self.published += 1
            self._retire_unpinned_locked()

    def _retire_unpinned_locked(self) -> None:
        current = self._current.version if self._current is not None else None
        for version in sorted(self._snapshots):
            if version == current:
                continue
            if self._refcounts.get(version, 0) == 0:
                self._retire_locked(version)

    def _retire_locked(self, version: int) -> None:
        snapshot = self._snapshots.pop(version)
        self._refcounts.pop(version, None)
        self.retired += 1
        index = snapshot.index
        # release the store attachment only when no *other* live version
        # shares the same index object (the startup snapshot and version 1
        # share one index when the first commit's refresh found the index
        # cache warm — never the case today, but cheap to stay correct on)
        if index is not None and not any(
            other.index is index for other in self._snapshots.values()
        ):
            if release_index(index):
                self.mappings_released += 1
        snapshot.index = None

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def pin(self, version: Optional[int] = None) -> SnapshotLease:
        """Pin a version (default: the current one) for a request's life."""
        with self._lock:
            if version is None:
                snapshot = self._current
                if snapshot is None:
                    raise LookupError("no version published yet")
            else:
                snapshot = self._snapshots.get(version)
                if snapshot is None:
                    raise LookupError(f"version {version} is not live")
            self._refcounts[snapshot.version] += 1
            self.pins += 1
            return SnapshotLease(self, snapshot)

    def release(self, version: int) -> None:
        """Drop one lease on ``version``; retire it if now unpinned + old."""
        with self._lock:
            if version not in self._snapshots:
                return  # already retired via close()
            count = self._refcounts.get(version, 0)
            if count <= 0:
                raise RuntimeError(f"version {version} released more than pinned")
            self._refcounts[version] = count - 1
            current = (
                self._current.version if self._current is not None else None
            )
            if self._refcounts[version] == 0 and version != current:
                self._retire_locked(version)

    # ------------------------------------------------------------------
    # introspection / shutdown
    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[Snapshot]:
        with self._lock:
            return self._current

    @property
    def current_version(self) -> int:
        with self._lock:
            if self._current is None:
                raise LookupError("no version published yet")
            return self._current.version

    def live_versions(self) -> List[int]:
        """The versions currently held (retired ones are gone), sorted."""
        with self._lock:
            return sorted(self._snapshots)

    def pinned_leases(self) -> int:
        """Total outstanding leases across all live versions."""
        with self._lock:
            return sum(self._refcounts.values())

    def stats(self) -> Dict[str, int]:
        """Counters + live state for the metrics surface (JSON-safe)."""
        with self._lock:
            return {
                "published": self.published,
                "retired": self.retired,
                "pins": self.pins,
                "live_versions": len(self._snapshots),
                "pinned_leases": sum(self._refcounts.values()),
                "mappings_released": self.mappings_released,
            }

    def close(self) -> int:
        """Retire every version (current included); returns leaked leases.

        A clean shutdown drains requests first, so the return value is 0;
        anything else means a request path failed to release its lease —
        the bench gate and the concurrency suite assert on it.
        """
        with self._lock:
            leaked = sum(self._refcounts.values())
            self._current = None
            for version in sorted(self._snapshots):
                self._retire_locked(version)
            return leaked
