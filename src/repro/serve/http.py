"""A minimal asyncio HTTP/1.1 front for :class:`EnforcementService`.

Stdlib-only (``asyncio.start_server`` + hand-rolled request parsing) by
design: the container bakes no web framework, and the service needs five
routes, not middleware.  JSON in, JSON out; admission-control errors map
to the conventional status codes (503 overloaded, 504 deadline):

==========  ======  ====================================================
route       method  body / answer
==========  ======  ====================================================
/validate   POST    ``{"rules": [..], "include_samples": bool,
                    "include_nodes": bool, "version": int}`` (all
                    optional) → the pinned version's report payload
/discover   POST    ``{"max_rules": int, "max_levels": int,
                    "deadline_s": float}`` → budgeted rule list
/cover      POST    ``{"deadline_s": float}`` → minimal cover of Σ
/mutate     POST    ``{"ops": [{"op": "set_attr", ...}, ...],
                    "deadline_s": float}`` → the committed version
/stats      GET     operational snapshot (chain, queue, commits)
/metrics    GET     Prometheus text exposition (service + session)
/healthz    GET     ``{"ok": true}`` once a version is published
==========  ======  ====================================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from .service import (
    DeadlineExceeded,
    EnforcementService,
    ServiceClosed,
    ServiceOverloaded,
)

__all__ = ["serve_http"]

_MAX_BODY = 8 * 1024 * 1024
_MAX_HEADER_LINES = 100


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, Any]]]:
    """Parse one request; returns (method, path, json_body) or None on EOF."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ValueError("malformed request line")
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    for _ in range(_MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    else:
        raise ValueError("too many headers")
    if content_length > _MAX_BODY:
        raise ValueError("request body too large")
    body: Dict[str, Any] = {}
    if content_length:
        raw = await reader.readexactly(content_length)
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
    return method, path, body


def _response(
    status: int, payload: Any, content_type: str = "application/json"
) -> bytes:
    if content_type == "application/json":
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
    else:
        body = str(payload).encode("utf-8")
    reason = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


async def _dispatch(
    service: EnforcementService, method: str, path: str, body: Dict[str, Any]
) -> bytes:
    try:
        if path == "/metrics" and method == "GET":
            return _response(
                200, service.metrics_text(), content_type="text/plain"
            )
        if path == "/stats" and method == "GET":
            return _response(200, service.stats())
        if path == "/healthz" and method == "GET":
            live = service.chain.current is not None and not service._closed
            return _response(200 if live else 503, {"ok": live})
        if path not in ("/validate", "/discover", "/cover", "/mutate"):
            return _response(404, {"error": f"no route {path}"})
        if method != "POST":
            return _response(405, {"error": "method not allowed"})
        if path == "/validate":
            return _response(
                200,
                await service.validate(
                    rules=body.get("rules"),
                    include_nodes=body.get("include_nodes"),
                    include_samples=body.get("include_samples"),
                    version=body.get("version"),
                ),
            )
        if path == "/discover":
            return _response(
                200,
                await service.discover(
                    max_rules=body.get("max_rules"),
                    max_levels=body.get("max_levels"),
                    deadline_s=body.get("deadline_s"),
                ),
            )
        if path == "/cover":
            return _response(
                200, await service.cover(deadline_s=body.get("deadline_s"))
            )
        if path == "/mutate":
            return _response(
                200,
                await service.mutate(
                    body.get("ops", []), deadline_s=body.get("deadline_s")
                ),
            )
        raise AssertionError(path)  # unreachable: routed above
    except ServiceOverloaded as exc:
        return _response(503, {"error": "overloaded", "detail": str(exc)})
    except ServiceClosed as exc:
        return _response(503, {"error": "closed", "detail": str(exc)})
    except DeadlineExceeded as exc:
        return _response(504, {"error": "deadline", "detail": str(exc)})
    except (ValueError, KeyError, LookupError, TypeError) as exc:
        return _response(400, {"error": "bad request", "detail": str(exc)})
    except Exception as exc:  # pragma: no cover - last-resort mapping
        return _response(500, {"error": "internal", "detail": str(exc)})


async def serve_http(
    service: EnforcementService,
    host: str = "127.0.0.1",
    port: int = 8080,
) -> asyncio.AbstractServer:
    """Start the HTTP front; returns the (not yet awaited) server.

    The caller owns both lifetimes: ``server.close()`` +
    ``await server.wait_closed()`` stops accepting, then
    ``await service.close()`` drains the service.  Bind ``port=0`` for an
    ephemeral port (``server.sockets[0].getsockname()[1]``).
    """

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except (ValueError, json.JSONDecodeError) as exc:
                    writer.write(
                        _response(400, {"error": "bad request", "detail": str(exc)})
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, body = request
                writer.write(await _dispatch(service, method, path, body))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    return await asyncio.start_server(handle, host, port)
