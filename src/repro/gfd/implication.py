"""GFD implication ``Σ ⊨ φ`` — the FPT algorithm of Theorem 1(a).

``Σ ⊨ φ`` for ``φ = Q[x̄](X → l)`` holds iff ``closure(Σ_Q, X)`` is
conflicting or ``l ∈ closure(Σ_Q, X)`` (characterization of [20], reviewed
in Section 3).  The cost is ``O((|φ| + |Σ|) · k^k)``: embeddings of each
GFD's pattern into ``Q`` dominate and are bounded by ``k^k``.

Implication is the engine of cover computation (Sections 5.2 and 6.3).
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..pattern.embedding import may_embed
from ..pattern.pattern import Pattern
from .closure import chase, embedded_rules
from .gfd import GFD
from .literals import FalseLiteral, Literal

__all__ = [
    "implies",
    "implies_any",
    "ImplicationChecker",
    "greedy_group_elimination",
]


def implies(sigma: Sequence[GFD], gfd: GFD) -> bool:
    """Whether ``Σ ⊨ φ``.

    For positive ``φ``: the closure of ``X`` under ``Σ_Q`` entails ``l`` or
    is conflicting.  For negative ``φ`` (``l = false``): the closure must be
    conflicting — i.e. ``Σ`` already forbids ``Q ∧ X``.
    """
    closure = chase(gfd.pattern, sigma, gfd.lhs)
    if closure.conflicting:
        return True
    if isinstance(gfd.rhs, FalseLiteral):
        return False
    return closure.entails(gfd.rhs)


def implies_any(sigma: Sequence[GFD], candidates: Sequence[GFD]) -> List[bool]:
    """Vectorized :func:`implies` over several candidates (shared Σ)."""
    return [implies(sigma, candidate) for candidate in candidates]


class ImplicationChecker:
    """Amortized implication tests against a fixed ``Σ``.

    Cover computation tests ``Σ \\ {φ} ⊨ φ`` for many ``φ`` with the same
    ``Σ``; this caches the embedded-rule instantiation per target pattern so
    repeated chases over one pattern skip embedding enumeration.  Rules
    originating from a GFD are tagged so the "leave one out" variant can
    exclude them without re-instantiating.
    """

    def __init__(self, sigma: Sequence[GFD]) -> None:
        self._sigma = list(sigma)
        # pattern identity -> list of (source index, lhs, rhs)
        self._cache: dict = {}

    @property
    def sigma(self) -> List[GFD]:
        """The GFD set the checker was built over."""
        return list(self._sigma)

    def _rules_for(self, pattern: Pattern) -> List[Tuple[int, frozenset, Literal]]:
        key = pattern
        rules = self._cache.get(key)
        if rules is None:
            rules = []
            for index, gfd in enumerate(self._sigma):
                if not may_embed(gfd.pattern, pattern):
                    continue  # label-multiset prefilter: no embedding exists
                for lhs, rhs in embedded_rules([gfd], pattern):
                    rules.append((index, lhs, rhs))
            self._cache[key] = rules
        return rules

    def implies(
        self,
        gfd: GFD,
        exclude: Union[None, int, AbstractSet[int]] = None,
    ) -> bool:
        """``(Σ minus the GFDs at the ``exclude`` indices) ⊨ gfd``.

        ``exclude`` is an index or a set of indices into the ``Σ`` the
        checker was built over; excluded GFDs contribute no chase rules.
        The set form is what group-wise cover elimination uses: one checker
        (and its embedded-rule cache) serves every leave-``k``-out test.
        """
        if exclude is None:
            excluded: AbstractSet[int] = frozenset()
        elif isinstance(exclude, int):
            excluded = {exclude}
        else:
            excluded = exclude
        tagged = self._rules_for(gfd.pattern)
        rules = [
            (lhs, rhs) for index, lhs, rhs in tagged if index not in excluded
        ]
        closure = chase(gfd.pattern, [], gfd.lhs, rules=rules)
        if closure.conflicting:
            return True
        if isinstance(gfd.rhs, FalseLiteral):
            return False
        return closure.entails(gfd.rhs)

    def implied_by_rest(self, index: int) -> bool:
        """Whether ``Σ \\ {φ_index} ⊨ φ_index`` — the cover redundancy test."""
        return self.implies(self._sigma[index], exclude=index)


def greedy_group_elimination(
    sigma: Sequence[GFD],
    group: Sequence[int],
    embedded: Sequence[int],
    checker: Optional[ImplicationChecker] = None,
) -> List[int]:
    """``ParImp``: greedy redundancy elimination within one ``ParCover`` unit.

    Tests each group member against ``embedded`` minus already-removed group
    members minus itself (the ``Σ̄_Q`` context of Lemma 6) and returns the
    removed indices, sorted.  Members are scanned most-specific-first
    (larger patterns, then larger LHS) so the surviving cover prefers small
    general rules — the same tie-break as ``SeqCover``.

    ``checker`` optionally supplies a shared :class:`ImplicationChecker`
    over the *full* ``Σ``; restriction to the embedded context is implicit
    (a GFD whose pattern does not embed into the target's contributes no
    chase rules), so one checker's embedded-rule cache serves every unit of
    a worker's batch.  Results are identical either way.
    """
    if checker is None:
        checker = ImplicationChecker(sigma)
    removed: set = set()
    ordered = sorted(
        group,
        key=lambda index: (
            -sigma[index].pattern.num_edges,
            -len(sigma[index].lhs),
            str(sigma[index]),
        ),
    )
    embedded_set = frozenset(embedded)
    outside = frozenset(range(len(sigma))) - embedded_set
    for index in ordered:
        if checker.implies(sigma[index], exclude=outside | removed | {index}):
            removed.add(index)
    return sorted(removed)
