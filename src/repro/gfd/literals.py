"""Literals of GFDs (Section 2.2).

A literal of ``x̄`` is either

* a **constant literal** ``x.A = c`` binding attribute ``A`` of variable
  ``x`` to the constant ``c`` (the CFD-style constant binding), or
* a **variable literal** ``x.A = y.B`` equating attributes across variables,
  or
* the Boolean constant ``false`` (syntactic sugar allowed as the RHS of
  negative GFDs).

Variables are pattern-variable indices.  Literals are immutable and hashable
so literal sets ``X`` can be frozensets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple, Union

from ..pattern.pattern import variable_name

__all__ = [
    "ConstantLiteral",
    "VariableLiteral",
    "FalseLiteral",
    "FALSE",
    "Literal",
    "rename_literal",
    "literal_variables",
]


@dataclass(frozen=True)
class ConstantLiteral:
    """``x.A = c``: attribute ``attr`` of variable ``var`` equals ``value``."""

    var: int
    attr: str
    value: Any

    def __str__(self) -> str:
        return f"{variable_name(self.var)}.{self.attr}={self.value!r}"


@dataclass(frozen=True)
class VariableLiteral:
    """``x.A = y.B``: attributes of two variables are equal.

    Stored in a normalized orientation (smallest ``(var, attr)`` first) so
    the two spellings of the same equation compare equal.
    """

    var1: int
    attr1: str
    var2: int
    attr2: str

    def __post_init__(self) -> None:
        if (self.var2, self.attr2) < (self.var1, self.attr1):
            first = (self.var1, self.attr1)
            object.__setattr__(self, "var1", self.var2)
            object.__setattr__(self, "attr1", self.attr2)
            object.__setattr__(self, "var2", first[0])
            object.__setattr__(self, "attr2", first[1])

    def __str__(self) -> str:
        return (
            f"{variable_name(self.var1)}.{self.attr1}="
            f"{variable_name(self.var2)}.{self.attr2}"
        )


def make_variable_literal(
    var1: int, attr1: str, var2: int, attr2: str
) -> VariableLiteral:
    """Create a :class:`VariableLiteral` in normalized orientation."""
    if (var2, attr2) < (var1, attr1):
        var1, attr1, var2, attr2 = var2, attr2, var1, attr1
    return VariableLiteral(var1, attr1, var2, attr2)


@dataclass(frozen=True)
class FalseLiteral:
    """The Boolean constant ``false`` — RHS of negative GFDs."""

    def __str__(self) -> str:
        return "false"


#: The singleton ``false`` literal.
FALSE = FalseLiteral()

#: Any GFD literal.
Literal = Union[ConstantLiteral, VariableLiteral, FalseLiteral]


def rename_literal(literal: Literal, mapping) -> Literal:
    """Apply a variable substitution (e.g. an embedding) to a literal.

    ``mapping`` is indexable by variable: ``mapping[old_var] -> new_var``.
    """
    if isinstance(literal, ConstantLiteral):
        return ConstantLiteral(mapping[literal.var], literal.attr, literal.value)
    if isinstance(literal, VariableLiteral):
        return make_variable_literal(
            mapping[literal.var1], literal.attr1, mapping[literal.var2], literal.attr2
        )
    return literal


def literal_variables(literal: Literal) -> Tuple[int, ...]:
    """The pattern variables a literal mentions."""
    if isinstance(literal, ConstantLiteral):
        return (literal.var,)
    if isinstance(literal, VariableLiteral):
        return (literal.var1, literal.var2)
    return ()


def format_literal_set(literals: FrozenSet[Literal]) -> str:
    """Human-readable rendering of a literal set ``X``."""
    if not literals:
        return "∅"
    return " ∧ ".join(sorted(str(l) for l in literals))
