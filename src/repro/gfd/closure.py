"""Literal closure and the chase underlying implication/satisfiability.

Section 3 reviews the characterization of [20]:

* ``closure(Σ_Q, X)`` — the literals deduced by applying the GFDs of ``Σ``
  *embedded* in pattern ``Q`` and by transitivity of equality in ``X``;
* ``enforced(Σ_Q)`` — the same with empty ``X``;
* the closure is *conflicting* when it contains ``x.A = c`` and ``x.A = d``
  for distinct constants (or derives ``false``).

``Σ ⊨ φ`` for ``φ = Q[x̄](X → l)`` iff ``closure(Σ_Q, X)`` is conflicting or
``l ∈ closure(Σ_Q, X)``; ``Σ`` is satisfiable iff some pattern's enforced set
is non-conflicting.  With patterns bounded by ``k`` nodes, the number of
embeddings is at most ``k^k`` and the whole analysis is fixed-parameter
tractable (Theorem 1).

The closure is maintained as a union-find over *terms* ``x.A`` whose classes
may carry a constant tag; equality literals merge classes, constant literals
tag them, and a clash of tags is a conflict.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..pattern.embedding import cached_embeddings
from ..pattern.pattern import Pattern
from .gfd import GFD
from .literals import (
    FALSE,
    ConstantLiteral,
    FalseLiteral,
    Literal,
    VariableLiteral,
    rename_literal,
)

__all__ = ["LiteralClosure", "embedded_rules", "chase", "enforced"]

#: A union-find term: attribute ``A`` of pattern variable ``x``.
Term = Tuple[int, str]

#: A sentinel object distinguishing "no constant" from a None-valued constant.
_NO_CONSTANT = object()


class LiteralClosure:
    """Union-find closure over ``x.A`` terms with constant tags.

    Supports adding literals, testing entailment (``l ∈ closure``), and a
    ``conflicting`` flag that latches once two distinct constants meet in one
    class or ``false`` is added.
    """

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._constant: Dict[Term, Any] = {}
        self._conflicting = False

    # ------------------------------------------------------------------
    @property
    def conflicting(self) -> bool:
        """Whether the closure entails ``false``."""
        return self._conflicting

    def _find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent == term:
            return term
        root = self._find(parent)
        self._parent[term] = root
        return root

    def _constant_of(self, root: Term) -> Any:
        return self._constant.get(root, _NO_CONSTANT)

    def _union(self, first: Term, second: Term) -> None:
        root1, root2 = self._find(first), self._find(second)
        if root1 == root2:
            return
        const1, const2 = self._constant_of(root1), self._constant_of(root2)
        self._parent[root2] = root1
        if const2 is not _NO_CONSTANT:
            if const1 is not _NO_CONSTANT and const1 != const2:
                self._conflicting = True
            self._constant[root1] = const2 if const1 is _NO_CONSTANT else const1

    # ------------------------------------------------------------------
    def add(self, literal: Literal) -> None:
        """Add a literal to the closure (latching conflicts)."""
        if isinstance(literal, FalseLiteral):
            self._conflicting = True
        elif isinstance(literal, ConstantLiteral):
            root = self._find((literal.var, literal.attr))
            existing = self._constant_of(root)
            if existing is _NO_CONSTANT:
                self._constant[root] = literal.value
            elif existing != literal.value:
                self._conflicting = True
        else:
            self._union(
                (literal.var1, literal.attr1), (literal.var2, literal.attr2)
            )

    def entails(self, literal: Literal) -> bool:
        """Whether ``literal`` belongs to the closure.

        A conflicting closure entails everything (ex falso).
        """
        if self._conflicting:
            return True
        if isinstance(literal, FalseLiteral):
            return False
        if isinstance(literal, ConstantLiteral):
            root = self._find((literal.var, literal.attr))
            return self._constant_of(root) == literal.value
        root1 = self._find((literal.var1, literal.attr1))
        root2 = self._find((literal.var2, literal.attr2))
        if root1 == root2:
            return True
        const1, const2 = self._constant_of(root1), self._constant_of(root2)
        return const1 is not _NO_CONSTANT and const1 == const2

    def entails_all(self, literals: Iterable[Literal]) -> bool:
        """Whether every literal of ``literals`` is entailed."""
        return all(self.entails(literal) for literal in literals)

    def copy(self) -> "LiteralClosure":
        """An independent copy (used by speculative chase steps)."""
        clone = LiteralClosure()
        clone._parent = dict(self._parent)
        clone._constant = dict(self._constant)
        clone._conflicting = self._conflicting
        return clone


def embedded_rules(
    sigma: Sequence[GFD], pattern: Pattern, max_embeddings_per_gfd: int = 64
) -> List[Tuple[frozenset, Literal]]:
    """Instantiate ``Σ_Q``: every embedding of every GFD of ``Σ`` into ``pattern``.

    Each result is the embedded GFD's ``(renamed LHS, renamed RHS)`` over the
    variables of ``pattern`` — a ground implication rule for the chase.
    The per-GFD embedding count is capped defensively; the theoretical bound
    is ``k^k`` (Theorem 1).
    """
    rules: List[Tuple[frozenset, Literal]] = []
    for gfd in sigma:
        rules.extend(
            _embedded_rules_single(gfd, pattern, max_embeddings_per_gfd)
        )
    return rules


@lru_cache(maxsize=262144)
def _embedded_rules_single(
    gfd: "GFD", pattern: Pattern, cap: int
) -> Tuple[Tuple[frozenset, Literal], ...]:
    """Instantiated rules of one GFD over one host pattern (memoized).

    GFDs and patterns are immutable and cover checking revisits the same
    (GFD, pattern) pairs once per candidate exclusion — global memoization
    collapses that to one instantiation per pair.
    """
    rules: List[Tuple[frozenset, Literal]] = []
    for mapping in cached_embeddings(gfd.pattern, pattern, max_results=cap):
        lhs = frozenset(rename_literal(l, mapping) for l in gfd.lhs)
        rhs = rename_literal(gfd.rhs, mapping)
        rules.append((lhs, rhs))
    return tuple(rules)


def chase(
    pattern: Pattern,
    sigma: Sequence[GFD],
    literals: Iterable[Literal] = (),
    rules: Optional[List[Tuple[frozenset, Literal]]] = None,
) -> LiteralClosure:
    """Compute ``closure(Σ_Q, X)`` for ``X = literals`` by chasing to fixpoint.

    Pass ``rules`` (from :func:`embedded_rules`) to amortize embedding
    enumeration across multiple chases over the same pattern.
    """
    closure = LiteralClosure()
    for literal in literals:
        closure.add(literal)
    if rules is None:
        rules = embedded_rules(sigma, pattern)
    pending = list(rules)
    changed = True
    while changed and not closure.conflicting:
        changed = False
        remaining = []
        for lhs, rhs in pending:
            if closure.entails_all(lhs):
                if not closure.entails(rhs):
                    closure.add(rhs)
                    changed = True
                # applied rules never need to fire again
            else:
                remaining.append((lhs, rhs))
        pending = remaining
    return closure


def enforced(pattern: Pattern, sigma: Sequence[GFD]) -> LiteralClosure:
    """``enforced(Σ_Q)``: the closure with empty ``X`` (Section 3)."""
    return chase(pattern, sigma)
