"""Graph functional dependencies ``Q[x̄](X → l)`` (Section 2.2).

GFDs are kept in the paper's *normal form*: the RHS ``Y`` is a single
literal ``l`` (a positive GFD with multi-literal ``Y`` is equivalent to one
GFD per RHS literal); negative GFDs have ``l = false``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from ..pattern.pattern import Pattern, variable_name
from .literals import (
    FALSE,
    ConstantLiteral,
    FalseLiteral,
    Literal,
    VariableLiteral,
    format_literal_set,
    literal_variables,
    rename_literal,
)

__all__ = ["GFD", "is_trivial"]


@dataclass(frozen=True)
class GFD:
    """A graph functional dependency in normal form.

    Attributes:
        pattern: the topological scope ``Q[x̄]`` (with its pivot).
        lhs: the literal set ``X``.
        rhs: the single RHS literal ``l`` (``FALSE`` for negative GFDs).
    """

    pattern: Pattern
    lhs: FrozenSet[Literal]
    rhs: Literal

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, frozenset):
            object.__setattr__(self, "lhs", frozenset(self.lhs))
        for literal in self.lhs:
            if isinstance(literal, FalseLiteral):
                raise ValueError("false cannot appear in the LHS")
            self._check_scope(literal)
        if not isinstance(self.rhs, FalseLiteral):
            self._check_scope(self.rhs)

    def _check_scope(self, literal: Literal) -> None:
        for variable in literal_variables(literal):
            if not 0 <= variable < self.pattern.num_nodes:
                raise ValueError(
                    f"literal {literal} references variable {variable} outside "
                    f"the {self.pattern.num_nodes}-variable pattern"
                )

    # ------------------------------------------------------------------
    @property
    def is_negative(self) -> bool:
        """Whether the GFD has the negative form ``Q[x̄](X → false)``."""
        return isinstance(self.rhs, FalseLiteral)

    @property
    def is_positive(self) -> bool:
        """Whether the GFD is positive (RHS is an ordinary literal)."""
        return not self.is_negative

    @property
    def size(self) -> int:
        """Pattern size in edges (the generation-tree level)."""
        return self.pattern.num_edges

    def attributes(self) -> FrozenSet[str]:
        """All attribute names the GFD mentions."""
        names = set()
        for literal in list(self.lhs) + [self.rhs]:
            if isinstance(literal, ConstantLiteral):
                names.add(literal.attr)
            elif isinstance(literal, VariableLiteral):
                names.add(literal.attr1)
                names.add(literal.attr2)
        return frozenset(names)

    def rename(self, mapping) -> "GFD":
        """The GFD with variables substituted through ``mapping`` (embedding).

        The caller supplies the target pattern implicitly; this only rewrites
        the literals — use together with :mod:`repro.pattern.embedding`.
        """
        return GFD(
            self.pattern,
            frozenset(rename_literal(l, mapping) for l in self.lhs),
            rename_literal(self.rhs, mapping),
        )

    def with_pattern(self, pattern: Pattern) -> "GFD":
        """The same dependency re-scoped onto ``pattern``."""
        return GFD(pattern, self.lhs, self.rhs)

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        variables = ",".join(variable_name(v) for v in self.pattern.variables())
        edges = ", ".join(
            f"({variable_name(e.src)}:{self.pattern.labels[e.src]})"
            f"-[{e.label}]->"
            f"({variable_name(e.dst)}:{self.pattern.labels[e.dst]})"
            for e in self.pattern.edges
        )
        if not edges:
            edges = " ".join(
                f"({variable_name(v)}:{label})"
                for v, label in enumerate(self.pattern.labels)
            )
        return f"Q[{variables}]{{{edges}}}({format_literal_set(self.lhs)} → {self.rhs})"


def is_trivial(gfd: GFD) -> bool:
    """Triviality test (Section 4.1).

    A GFD ``Q[x̄](X → l)`` is trivial when (a) ``X`` cannot be satisfied
    (it equates one attribute with two distinct constants, directly or via
    the transitivity of equality), or (b) ``l`` is derivable from ``X`` by
    transitivity of equality.
    """
    from .closure import LiteralClosure  # local import: closure builds on gfd

    closure = LiteralClosure()
    for literal in gfd.lhs:
        closure.add(literal)
    if closure.conflicting:
        return True
    if isinstance(gfd.rhs, FalseLiteral):
        # Q(X → false) is trivial only when X is unsatisfiable (case (a)),
        # which was checked above; otherwise it is a genuine negative GFD.
        return False
    return closure.entails(gfd.rhs)
