"""Future-work extension: GFDs with built-in comparison predicates.

The paper's conclusion sketches "GFDs with built-in comparison predicates
and arithmetic expressions" as ongoing work.  This module ships a
restricted form: **comparison literals** ``x.A op c`` with
``op ∈ {<, <=, >, >=, !=}`` usable in the LHS of an extended GFD.  They
keep the schemaless semantics (a missing attribute satisfies nothing) and
compose with the standard validator through :class:`ExtendedGFD`.

Discovery does not mine these (matching the paper, which leaves that to
future work); they are for *writing* richer quality rules by hand, e.g.::

    films released before 1928 (y.year < 1928) cannot have won an Oscar

Comparison literals never appear in closure/implication analyses — the
characterization of Section 3 covers equality literals only, so
:class:`ExtendedGFD` deliberately does not subclass :class:`~repro.gfd.gfd.GFD`.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Union

from ..graph.graph import Graph
from ..pattern.matcher import Match, find_matches
from ..pattern.pattern import Pattern, variable_name
from .gfd import GFD
from .literals import Literal
from .satisfaction import satisfies_all, satisfies_literal

__all__ = ["ComparisonLiteral", "ExtendedGFD", "find_extended_violations"]

_MISSING = object()

_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class ComparisonLiteral:
    """``x.A op c`` for a built-in comparison operator.

    Comparisons against a missing attribute are unsatisfied; comparisons
    that raise ``TypeError`` (e.g. string vs int) are unsatisfied too, so a
    rule never crashes on heterogeneous data.
    """

    var: int
    attr: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise ValueError(
                f"unsupported operator {self.op!r}; use one of {sorted(_OPERATORS)}"
            )

    def satisfied(self, graph: Graph, match: Match) -> bool:
        """Whether the match satisfies the comparison."""
        value = graph.get_attr(match[self.var], self.attr, _MISSING)
        if value is _MISSING:
            return False
        try:
            return _OPERATORS[self.op](value, self.value)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{variable_name(self.var)}.{self.attr}{self.op}{self.value!r}"


#: LHS elements of an extended GFD: equality or comparison literals.
ExtendedLiteral = Union[Literal, ComparisonLiteral]


@dataclass(frozen=True)
class ExtendedGFD:
    """A GFD whose LHS may mix equality and comparison literals.

    The RHS stays an ordinary literal (or ``FALSE``) — exactly the
    restricted extension the paper's conclusion names.
    """

    pattern: Pattern
    lhs: FrozenSet[ExtendedLiteral]
    rhs: Literal

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, frozenset):
            object.__setattr__(self, "lhs", frozenset(self.lhs))

    def satisfied_by(self, graph: Graph, match: Match) -> bool:
        """``h(x̄) ⊨ X → l`` with mixed-literal ``X``."""
        equalities = [
            l for l in self.lhs if not isinstance(l, ComparisonLiteral)
        ]
        comparisons = [l for l in self.lhs if isinstance(l, ComparisonLiteral)]
        if not satisfies_all(graph, match, equalities):
            return True
        if not all(c.satisfied(graph, match) for c in comparisons):
            return True
        return satisfies_literal(graph, match, self.rhs)

    def core_gfd(self) -> Optional[GFD]:
        """The equality-only core (None when comparisons are present).

        An extended GFD without comparison literals *is* an ordinary GFD
        and can flow into implication/cover machinery.
        """
        if any(isinstance(l, ComparisonLiteral) for l in self.lhs):
            return None
        return GFD(self.pattern, frozenset(self.lhs), self.rhs)

    def __str__(self) -> str:
        lhs = " ∧ ".join(sorted(str(l) for l in self.lhs)) or "∅"
        return f"Q[{self.pattern.num_nodes} vars]({lhs} → {self.rhs})"


def find_extended_violations(
    graph: Graph,
    gfd: ExtendedGFD,
    max_violations: Optional[int] = None,
) -> List[Match]:
    """Matches of the pattern violating an extended GFD."""
    violations: List[Match] = []
    for match in find_matches(graph, gfd.pattern):
        if not gfd.satisfied_by(graph, match):
            violations.append(match)
            if max_violations is not None and len(violations) >= max_violations:
                break
    return violations
