"""GFD model, semantics, closure, implication and satisfiability."""

from .closure import LiteralClosure, chase, embedded_rules, enforced
from .extensions import ComparisonLiteral, ExtendedGFD, find_extended_violations
from .gfd import GFD, is_trivial
from .implication import ImplicationChecker, implies
from .literals import (
    FALSE,
    ConstantLiteral,
    FalseLiteral,
    Literal,
    VariableLiteral,
    format_literal_set,
    literal_variables,
    make_variable_literal,
    rename_literal,
)
from .parser import (
    GFDSyntaxError,
    dumps_sigma,
    format_gfd,
    loads_sigma,
    parse_gfd,
)
from .satisfaction import (
    Violation,
    find_violations,
    graph_satisfies,
    satisfies_all,
    satisfies_gfd,
    satisfies_literal,
    validate_set,
)
from .satisfiability import build_model, is_satisfiable, satisfiable_patterns

__all__ = [
    "GFD",
    "FALSE",
    "ConstantLiteral",
    "VariableLiteral",
    "FalseLiteral",
    "Literal",
    "LiteralClosure",
    "ImplicationChecker",
    "Violation",
    "GFDSyntaxError",
    "ComparisonLiteral",
    "ExtendedGFD",
    "find_extended_violations",
    "is_trivial",
    "make_variable_literal",
    "rename_literal",
    "literal_variables",
    "format_literal_set",
    "chase",
    "enforced",
    "embedded_rules",
    "implies",
    "is_satisfiable",
    "satisfiable_patterns",
    "build_model",
    "satisfies_literal",
    "satisfies_all",
    "satisfies_gfd",
    "graph_satisfies",
    "find_violations",
    "validate_set",
    "parse_gfd",
    "format_gfd",
    "dumps_sigma",
    "loads_sigma",
]
