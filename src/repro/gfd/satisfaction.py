"""Match-level satisfaction and graph-level validation of GFDs.

Semantics (Section 2.2), including the schemaless subtleties:

* ``h(x̄) ⊨ x.A = c`` iff node ``h(x)`` *has* attribute ``A`` and its value
  is ``c`` (similarly for ``x.A = y.B``).
* ``h(x̄) ⊨ X → Y`` iff ``h(x̄) ⊨ X`` implies ``h(x̄) ⊨ Y``; a missing LHS
  attribute therefore satisfies the implication vacuously, while a RHS
  literal *requires* the attribute to exist.
* ``G ⊨ φ`` iff every match of ``Q`` in ``G`` satisfies ``X → Y``.

Validation enumerates matches (``O(|G|^k)``; the problem is co-W[1]-hard —
Theorem 1(b) — so enumeration is what a sequential algorithm can do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from ..pattern.matcher import Match, find_matches
from .gfd import GFD
from .literals import ConstantLiteral, FalseLiteral, Literal, VariableLiteral

__all__ = [
    "Violation",
    "satisfies_literal",
    "satisfies_all",
    "satisfies_gfd",
    "graph_satisfies",
    "find_violations",
    "validate_set",
]

#: A sentinel distinguishing a missing attribute from a stored None.
_MISSING = object()


@dataclass(frozen=True)
class Violation:
    """A match witnessing ``G ⊭ φ``: ``h ⊨ X`` but ``h ⊭ Y``."""

    gfd: GFD
    match: Match

    def nodes(self) -> Tuple[int, ...]:
        """The graph nodes of the violating match (the inconsistent entity)."""
        return self.match


def satisfies_literal(graph: Graph, match: Match, literal: Literal) -> bool:
    """Whether ``h(x̄) = match`` satisfies a single literal."""
    if isinstance(literal, FalseLiteral):
        return False
    if isinstance(literal, ConstantLiteral):
        value = graph.get_attr(match[literal.var], literal.attr, _MISSING)
        return value is not _MISSING and value == literal.value
    value1 = graph.get_attr(match[literal.var1], literal.attr1, _MISSING)
    if value1 is _MISSING:
        return False
    value2 = graph.get_attr(match[literal.var2], literal.attr2, _MISSING)
    return value2 is not _MISSING and value1 == value2


def satisfies_all(graph: Graph, match: Match, literals: Iterable[Literal]) -> bool:
    """Whether the match satisfies every literal of ``literals``."""
    return all(satisfies_literal(graph, match, l) for l in literals)


def satisfies_gfd(graph: Graph, match: Match, gfd: GFD) -> bool:
    """``h(x̄) ⊨ X → l`` for this particular match."""
    if not satisfies_all(graph, match, gfd.lhs):
        return True
    return satisfies_literal(graph, match, gfd.rhs)


def find_violations(
    graph: Graph,
    gfd: GFD,
    max_violations: Optional[int] = None,
    matches: Optional[Iterable[Match]] = None,
) -> List[Violation]:
    """All matches violating ``gfd`` in ``graph`` (capped if requested).

    Pass precomputed ``matches`` to reuse stored match sets (the discovery
    algorithms keep them per pattern).
    """
    violations: List[Violation] = []
    pool = matches if matches is not None else find_matches(graph, gfd.pattern)
    for match in pool:
        if not satisfies_gfd(graph, match, gfd):
            violations.append(Violation(gfd, match))
            if max_violations is not None and len(violations) >= max_violations:
                break
    return violations


def graph_satisfies(
    graph: Graph, gfd: GFD, matches: Optional[Iterable[Match]] = None
) -> bool:
    """``G ⊨ φ`` — no violating match exists."""
    return not find_violations(graph, gfd, max_violations=1, matches=matches)


def validate_set(graph: Graph, sigma: Sequence[GFD]) -> bool:
    """``G ⊨ Σ`` — every GFD of the set holds (the validation problem)."""
    return all(graph_satisfies(graph, gfd) for gfd in sigma)
