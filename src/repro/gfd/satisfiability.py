"""GFD satisfiability — the FPT algorithm of Theorem 1(a).

A set ``Σ`` is *satisfiable* when some graph ``G`` satisfies ``Σ`` while at
least one pattern of ``Σ`` has a match in ``G`` (Section 3).  Following the
characterization of [20] and the algorithm in the proof of Theorem 1:
compute ``enforced(Σ_Q)`` for every pattern ``Q`` of ``Σ``; ``Σ`` is
satisfiable iff at least one of them is non-conflicting (cost
``O(|Σ|² · k^k)``).

:func:`build_model` additionally constructs a witnessing graph for
satisfiable sets — useful for tests and for explaining discovered rule sets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from ..pattern.pattern import WILDCARD, Pattern
from .closure import LiteralClosure, enforced
from .gfd import GFD
from .literals import ConstantLiteral, VariableLiteral

__all__ = ["is_satisfiable", "satisfiable_patterns", "build_model"]


def satisfiable_patterns(sigma: Sequence[GFD]) -> List[int]:
    """Indices of GFDs whose pattern's enforced closure is non-conflicting."""
    good: List[int] = []
    for index, gfd in enumerate(sigma):
        if not enforced(gfd.pattern, sigma).conflicting:
            good.append(index)
    return good


def is_satisfiable(sigma: Sequence[GFD]) -> bool:
    """Whether ``Σ`` has a model in which some pattern matches."""
    if not sigma:
        return False
    return bool(satisfiable_patterns(sigma))


def _fresh_label(used: set, base: str = "node") -> str:
    index = 0
    label = base
    while label in used:
        index += 1
        label = f"{base}{index}"
    return label


def build_model(sigma: Sequence[GFD]) -> Optional[Graph]:
    """Construct a graph witnessing satisfiability, or None if unsatisfiable.

    The model realizes one non-conflicting pattern ``Q`` directly as a graph
    (wildcards instantiated with fresh labels so no *other* pattern in ``Σ``
    is accidentally matched more specifically than the closure accounts for)
    and assigns attributes according to ``enforced(Σ_Q)``.
    """
    if not sigma:
        return None
    used_labels = set()
    for gfd in sigma:
        used_labels.update(gfd.pattern.labels)
        used_labels.update(edge.label for edge in gfd.pattern.edges)
    for index, gfd in enumerate(sigma):
        closure = enforced(gfd.pattern, sigma)
        if closure.conflicting:
            continue
        pattern = gfd.pattern
        graph = Graph()
        for variable in pattern.variables():
            label = pattern.labels[variable]
            if label == WILDCARD:
                label = _fresh_label(used_labels)
                used_labels.add(label)
            graph.add_node(label)
        for edge in pattern.edges:
            label = edge.label
            if label == WILDCARD:
                label = _fresh_label(used_labels, base="edge")
                used_labels.add(label)
            graph.add_edge(edge.src, edge.dst, label)
        _assign_closure_attributes(graph, pattern, closure)
        return graph
    return None


def _assign_closure_attributes(
    graph: Graph, pattern: Pattern, closure: LiteralClosure
) -> None:
    """Populate node attributes so the model satisfies the enforced literals.

    Every union-find class with a constant gets that constant on all its
    terms; classes without a constant get a shared fresh value so variable
    literals ``x.A = y.B`` hold.
    """
    fresh = 0
    class_values: Dict[Tuple[int, str], object] = {}
    for term in list(closure._parent):  # noqa: SLF001 - model builder is a friend
        root = closure._find(term)
        if root not in class_values:
            constant = closure._constant.get(root, None)
            if constant is None and root not in closure._constant:
                constant = f"__fresh_{fresh}"
                fresh += 1
            class_values[root] = constant
        variable, attr = term
        graph.set_attr(variable, attr, class_values[root])
