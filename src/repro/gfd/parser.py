"""Textual syntax for GFDs.

The concrete syntax mirrors the paper's examples::

    Q[x, y] { (x:person)-[create]->(y:product) } (y.type="film" -> x.type="producer")
    Q[x, y, z] { (x:city)-[located]->(y:_), (x)-[located]->(z:_) } ( -> y.name=z.name)
    Q[x*, y] { (x:person)-[parent]->(y:person), (y)-[parent]->(x) } ( -> false)

* variables are declared in ``Q[...]``; a ``*`` suffix marks the pivot
  (default: the first variable);
* each pattern element is a node ``(x:label)`` or an edge
  ``(x)-[label]->(y)`` — labels may be ``_`` (wildcard) and may be omitted
  after the first mention of a variable;
* the dependency is ``(X -> l)`` with ``∧``/``&``-separated literals;
  an empty LHS and the RHS ``false`` are allowed.

:func:`parse_gfd` and :func:`format_gfd` round-trip.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..pattern.pattern import Pattern, variable_name
from .gfd import GFD
from .literals import (
    FALSE,
    ConstantLiteral,
    FalseLiteral,
    Literal,
    VariableLiteral,
    make_variable_literal,
)

__all__ = [
    "parse_gfd",
    "format_gfd",
    "dumps_sigma",
    "loads_sigma",
    "GFDSyntaxError",
]

#: JSON envelope identifier of :func:`dumps_sigma` documents.
SIGMA_FORMAT = "repro-gfd-sigma"

#: Version of the Σ JSON schema (bump on incompatible change).
SIGMA_VERSION = 1


class GFDSyntaxError(ValueError):
    """Raised when GFD text cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<arrow>->)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<symbol>[\[\]{}().,*=&∧:>\-])
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise GFDSyntaxError(f"unexpected character {text[position]!r} at {position}")
        kind = match.lastgroup
        if kind != "space":
            tokens.append((kind, match.group()))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise GFDSyntaxError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        kind, text = self._next()
        if text != value:
            raise GFDSyntaxError(f"expected {value!r}, got {text!r}")

    def _accept(self, value: str) -> bool:
        token = self._peek()
        if token is not None and token[1] == value:
            self._index += 1
            return True
        return False

    # ------------------------------------------------------------------
    def parse(self) -> GFD:
        variables, pivot = self._parse_header()
        var_index = {name: i for i, name in enumerate(variables)}
        labels, edges = self._parse_pattern(var_index)
        lhs, rhs = self._parse_dependency(var_index)
        pattern = Pattern(labels, edges, pivot)
        return GFD(pattern, frozenset(lhs), rhs)

    def _parse_header(self) -> Tuple[List[str], int]:
        kind, text = self._next()
        if text != "Q":
            raise GFDSyntaxError(f"GFD must start with 'Q', got {text!r}")
        self._expect("[")
        variables: List[str] = []
        pivot = 0
        while True:
            kind, name = self._next()
            if kind != "name":
                raise GFDSyntaxError(f"expected variable name, got {name!r}")
            if self._accept("*"):
                pivot = len(variables)
            variables.append(name)
            if self._accept("]"):
                break
            self._expect(",")
        return variables, pivot

    def _parse_pattern(
        self, var_index: Dict[str, int]
    ) -> Tuple[List[str], List[Tuple[int, int, str]]]:
        from ..pattern.pattern import WILDCARD

        labels: List[Optional[str]] = [None] * len(var_index)
        edges: List[Tuple[int, int, str]] = []
        self._expect("{")
        while not self._accept("}"):
            src = self._parse_node(var_index, labels)
            if self._accept("-"):
                self._expect("[")
                kind, edge_label = self._next()
                if kind != "name":
                    raise GFDSyntaxError(f"expected edge label, got {edge_label!r}")
                self._expect("]")
                self._expect("->")
                dst = self._parse_node(var_index, labels)
                edges.append((src, dst, edge_label))
            if not self._accept(","):
                self._expect("}")
                break
        resolved = [label if label is not None else WILDCARD for label in labels]
        return resolved, edges

    def _parse_node(self, var_index: Dict[str, int], labels: List[Optional[str]]) -> int:
        self._expect("(")
        kind, name = self._next()
        if kind != "name":
            raise GFDSyntaxError(f"expected variable, got {name!r}")
        if name not in var_index:
            raise GFDSyntaxError(f"undeclared variable {name!r}")
        index = var_index[name]
        if self._accept(":"):
            kind, label = self._next()
            if kind != "name":
                raise GFDSyntaxError(f"expected node label, got {label!r}")
            if labels[index] is not None and labels[index] != label:
                raise GFDSyntaxError(
                    f"conflicting labels for {name!r}: {labels[index]!r} vs {label!r}"
                )
            labels[index] = label
        self._expect(")")
        return index

    def _parse_dependency(
        self, var_index: Dict[str, int]
    ) -> Tuple[List[Literal], Literal]:
        self._expect("(")
        lhs: List[Literal] = []
        token = self._peek()
        if token is not None and token[1] != "->":
            while True:
                lhs.append(self._parse_literal(var_index))
                token = self._peek()
                if token is not None and token[1] in ("&", "∧"):
                    self._next()
                    continue
                break
        kind, text = self._next()
        if text != "->":
            raise GFDSyntaxError(f"expected '->', got {text!r}")
        rhs = self._parse_literal(var_index)
        self._expect(")")
        if self._peek() is not None:
            raise GFDSyntaxError("trailing input after GFD")
        return lhs, rhs

    def _parse_literal(self, var_index: Dict[str, int]) -> Literal:
        kind, name = self._next()
        if kind == "name" and name == "false":
            return FALSE
        if kind != "name" or name not in var_index:
            raise GFDSyntaxError(f"expected variable or 'false', got {name!r}")
        var = var_index[name]
        self._expect(".")
        kind, attr = self._next()
        if kind != "name":
            raise GFDSyntaxError(f"expected attribute name, got {attr!r}")
        self._expect("=")
        kind, value = self._next()
        if kind == "string":
            return ConstantLiteral(var, attr, _unescape(value))
        if kind == "number":
            number = float(value) if "." in value else int(value)
            return ConstantLiteral(var, attr, number)
        if kind == "name" and value in var_index:
            other = var_index[value]
            self._expect(".")
            kind, attr2 = self._next()
            if kind != "name":
                raise GFDSyntaxError(f"expected attribute name, got {attr2!r}")
            return make_variable_literal(var, attr, other, attr2)
        raise GFDSyntaxError(f"expected constant or variable, got {value!r}")


def _unescape(quoted: str) -> str:
    body = quoted[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def _escape(value: str) -> str:
    return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'


def parse_gfd(text: str) -> GFD:
    """Parse the textual GFD syntax into a :class:`~repro.gfd.gfd.GFD`."""
    return _Parser(text).parse()


def _format_value(value: Any) -> str:
    if isinstance(value, str):
        return _escape(value)
    return repr(value)


def _format_literal(literal: Literal) -> str:
    if isinstance(literal, FalseLiteral):
        return "false"
    if isinstance(literal, ConstantLiteral):
        return (
            f"{variable_name(literal.var)}.{literal.attr}"
            f"={_format_value(literal.value)}"
        )
    assert isinstance(literal, VariableLiteral)
    return (
        f"{variable_name(literal.var1)}.{literal.attr1}"
        f"={variable_name(literal.var2)}.{literal.attr2}"
    )


def format_gfd(gfd: GFD) -> str:
    """Serialize a GFD to parseable text (inverse of :func:`parse_gfd`)."""
    pattern = gfd.pattern
    variables = []
    for index in pattern.variables():
        name = variable_name(index)
        variables.append(f"{name}*" if index == pattern.pivot else name)
    header = f"Q[{', '.join(variables)}]"
    elements: List[str] = []
    mentioned = set()
    for edge in pattern.edges:
        src_txt = _format_node(pattern, edge.src, mentioned)
        dst_txt = _format_node(pattern, edge.dst, mentioned)
        elements.append(f"{src_txt}-[{edge.label}]->{dst_txt}")
    for index in pattern.variables():
        if index not in mentioned:
            elements.append(_format_node(pattern, index, mentioned))
    body = "{ " + ", ".join(elements) + " }"
    lhs = " & ".join(sorted(_format_literal(l) for l in gfd.lhs))
    dependency = f"({lhs} -> {_format_literal(gfd.rhs)})"
    return f"{header} {body} {dependency}"


def dumps_sigma(
    sigma: Sequence[GFD],
    supports: Optional[Dict[GFD, int]] = None,
    indent: Optional[int] = 2,
) -> str:
    """Serialize a rule set ``Σ`` to a JSON document.

    The envelope carries one :func:`format_gfd` string per rule (the
    textual syntax is the canonical wire format — everything the parser
    round-trips, including wildcards, pivots and negative GFDs) plus an
    optional per-rule support.  ``loads_sigma(dumps_sigma(sigma)) == sigma``
    for any rules whose constants are strings, ints or floats (the value
    types graph attributes use); other constant types are rejected by
    :func:`format_gfd`'s syntax on the way back in.

    This is the bridge between ``repro discover --output rules.json`` and
    ``repro enforce``: a discovered rule set survives the process boundary.
    """
    entries: List[Dict[str, Any]] = []
    for gfd in sigma:
        entry: Dict[str, Any] = {"gfd": format_gfd(gfd)}
        if supports is not None and gfd in supports:
            entry["support"] = supports[gfd]
        entries.append(entry)
    payload = {
        "format": SIGMA_FORMAT,
        "version": SIGMA_VERSION,
        "gfds": entries,
    }
    return json.dumps(payload, indent=indent)


def loads_sigma(text: str) -> Tuple[List[GFD], Dict[GFD, int]]:
    """Parse a :func:`dumps_sigma` document back into ``(Σ, supports)``.

    ``supports`` holds only the rules whose entry carried one.  Raises
    :class:`GFDSyntaxError` on a malformed envelope or rule text.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise GFDSyntaxError(f"not a Σ JSON document: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != SIGMA_FORMAT:
        raise GFDSyntaxError(
            f"not a Σ JSON document (missing format={SIGMA_FORMAT!r})"
        )
    if payload.get("version") != SIGMA_VERSION:
        raise GFDSyntaxError(
            f"unsupported Σ format version {payload.get('version')!r} "
            f"(this reader understands {SIGMA_VERSION})"
        )
    sigma: List[GFD] = []
    supports: Dict[GFD, int] = {}
    for position, entry in enumerate(payload.get("gfds", [])):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("gfd"), str)
        ):
            raise GFDSyntaxError(
                f"gfds[{position}]: expected an object with a 'gfd' string"
            )
        gfd = parse_gfd(entry["gfd"])
        sigma.append(gfd)
        if "support" in entry:
            support = entry["support"]
            if isinstance(support, bool) or not isinstance(support, (int, float)):
                raise GFDSyntaxError(
                    f"gfds[{position}]: 'support' must be a number, "
                    f"got {support!r}"
                )
            supports[gfd] = int(support)
    return sigma, supports


def _format_node(pattern: Pattern, index: int, mentioned: set) -> str:
    name = variable_name(index)
    if index in mentioned:
        return f"({name})"
    mentioned.add(index)
    return f"({name}:{pattern.labels[index]})"
