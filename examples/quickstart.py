"""Quickstart: the paper's Example 1, end to end.

Builds the three Figure-1 graphs with their real-world errors, states the
GFDs φ1–φ3, detects every inconsistency, and then *discovers* rules from a
clean knowledge graph — including a φ1-equivalent found automatically.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DiscoveryConfig, discover, find_violations, format_gfd
from repro.datasets import KB_ATTRIBUTES, load_figure1, yago2_like


def main() -> None:
    figure1 = load_figure1()

    print("== Validation: catching the errors of Figure 1 ==")
    cases = [
        ("G1 (wrong producer credit)", figure1.g1, figure1.phi1),
        ("G2 (city located twice)", figure1.g2, figure1.phi2),
        ("G3 (mutual parents)", figure1.g3, figure1.phi3),
    ]
    for name, graph, gfd in cases:
        violations = find_violations(graph, gfd)
        print(f"\n{name}")
        print(f"  rule     : {format_gfd(gfd)}")
        print(f"  violations: {len(violations)}")
        for violation in violations:
            nodes = ", ".join(
                f"{node}:{graph.node_label(node)}" for node in violation.match
            )
            print(f"    match [{nodes}]")

    print("\n== Discovery: mining rules from a clean knowledge graph ==")
    graph = yago2_like(scale=0.5, seed=42)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    config = DiscoveryConfig(
        k=2,
        sigma=30,
        max_lhs_size=1,
        active_attributes=list(KB_ATTRIBUTES),
    )
    result = discover(graph, config)
    print(
        f"found {len(result.gfds)} GFDs "
        f"({len(result.positives)} positive, {len(result.negatives)} negative) "
        f"in {result.stats.elapsed_seconds:.2f}s"
    )
    print("\ntop rules by support:")
    for gfd in result.sorted_by_support()[:8]:
        print(f"  supp={result.supports[gfd]:>4}  {format_gfd(gfd)}")

    phi1_like = [
        gfd
        for gfd in result.positives
        if "film" in str(gfd) and "producer" in str(gfd)
    ]
    print(f"\nφ1-equivalent rules rediscovered: {len(phi1_like)}")
    for gfd in phi1_like[:2]:
        print(f"  {format_gfd(gfd)}")


if __name__ == "__main__":
    main()
