"""Quickstart: the paper's Example 1, then the full pipeline in one Session.

Builds the three Figure-1 graphs with their real-world errors, states the
GFDs φ1–φ3 and detects every inconsistency.  Then runs the whole workflow —
discover → cover → enforce → refresh — on a single resource-owning
:class:`repro.Session`: worker pools start once, the frozen graph index is
attached once, and the unified ``session.metrics()`` ledger (written to
``benchmarks/results/session_metrics.json``) proves it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import DiscoveryConfig, Session, find_violations, format_gfd
from repro.datasets import KB_ATTRIBUTES, load_figure1, yago2_like

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def main() -> None:
    figure1 = load_figure1()

    print("== Validation: catching the errors of Figure 1 ==")
    cases = [
        ("G1 (wrong producer credit)", figure1.g1, figure1.phi1),
        ("G2 (city located twice)", figure1.g2, figure1.phi2),
        ("G3 (mutual parents)", figure1.g3, figure1.phi3),
    ]
    for name, graph, gfd in cases:
        violations = find_violations(graph, gfd)
        print(f"\n{name}")
        print(f"  rule     : {format_gfd(gfd)}")
        print(f"  violations: {len(violations)}")
        for violation in violations:
            nodes = ", ".join(
                f"{node}:{graph.node_label(node)}" for node in violation.match
            )
            print(f"    match [{nodes}]")

    print("\n== One session: discover → cover → enforce → refresh ==")
    graph = yago2_like(scale=0.5, seed=42)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    config = DiscoveryConfig(
        k=2,
        sigma=30,
        max_lhs_size=1,
        active_attributes=list(KB_ATTRIBUTES),
    )
    with Session(graph, config) as session:
        result = session.discover()
        print(
            f"discovered {len(result.gfds)} GFDs "
            f"({len(result.positives)} positive, "
            f"{len(result.negatives)} negative) "
            f"in {result.stats.elapsed_seconds:.2f}s"
        )
        print("\ntop rules by support:")
        for gfd in result.sorted_by_support()[:8]:
            print(f"  supp={result.supports[gfd]:>4}  {format_gfd(gfd)}")

        phi1_like = [
            gfd
            for gfd in result.positives
            if "film" in str(gfd) and "producer" in str(gfd)
        ]
        print(f"\nφ1-equivalent rules rediscovered: {len(phi1_like)}")
        for gfd in phi1_like[:2]:
            print(f"  {format_gfd(gfd)}")

        cover = session.cover()
        print(
            f"\ncover keeps {len(cover.cover)} of "
            f"{len(cover.cover) + len(cover.removed)} "
            f"({cover.reduction_ratio:.0%} redundant)"
        )

        report = session.enforce()
        print(f"source graph satisfies its own rules: {report.is_clean}")

        # mutate the live graph; the refresh re-matches only the delta ball
        node = graph.add_node("person", {"type": "producer"})
        graph.add_edge(node, node + 1 if node + 1 < graph.num_nodes else 0,
                       "knows")
        report = session.refresh()
        print(
            f"after mutation: mode={report.mode}, "
            f"groups revalidated {report.groups_revalidated} of "
            f"{report.patterns_matched}"
        )

        metrics = session.metrics()
        print(
            f"\nresources: backend started {metrics.backend_starts}x, "
            f"index attached {metrics.lifecycle.index_attaches}x "
            f"(+{metrics.lifecycle.index_refreshes} refresh), "
            f"{metrics.cluster.supersteps} supersteps"
        )
        assert metrics.backend_starts == 1
        assert metrics.lifecycle.index_attaches == 1
        RESULTS.mkdir(parents=True, exist_ok=True)
        out = RESULTS / "session_metrics.json"
        # the same documented schema v2 (sorted keys) bench_session.py
        # writes to session_metrics_bench.json — the two artifacts diff
        # cleanly, modulo the "timings" key
        out.write_text(
            json.dumps(metrics.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"session metrics written to {out}")


if __name__ == "__main__":
    main()
