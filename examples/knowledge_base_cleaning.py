"""Knowledge-base cleaning: discover rules, inject errors, detect them.

Reproduces the paper's Exp-5 protocol as an application: one
:class:`repro.Session` mines GFDs from a YAGO2-shaped knowledge graph and
reduces them to a cover; copies are corrupted with unseen values (the α/β
noise model) and each dirty graph gets its own serving session (a session
is bound to one graph) through which the rules flag dirty entities, scored
against ground truth and against AMIE rules mined from the same graph.

Run:  python examples/knowledge_base_cleaning.py
"""

from __future__ import annotations

from repro import DiscoveryConfig, EnforcementConfig, Session
from repro.baselines import AmieMiner, mine_amie
from repro.datasets import KB_ATTRIBUTES, inject_noise, yago2_like
from repro.quality import amie_detection, gfd_detection


def main() -> None:
    graph = yago2_like(scale=0.8, seed=7)
    print(f"knowledge graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    config = DiscoveryConfig(
        k=3,
        sigma=45,
        max_lhs_size=1,
        active_attributes=list(KB_ATTRIBUTES),
    )
    with Session(graph, config) as session:
        result = session.discover()
        cover = session.cover()
        print(
            f"discovered {len(result.gfds)} GFDs, cover keeps "
            f"{len(cover.cover)} ({cover.reduction_ratio:.0%} redundant)"
        )
        sigma = session.sigma

    amie = mine_amie(graph, min_support=config.sigma)
    print(f"AMIE baseline: {len(amie.rules)} Horn rules")

    for alpha, beta in [(0.05, 0.5), (0.10, 0.5), (0.10, 0.8)]:
        dirty, report = inject_noise(
            graph, alpha=alpha, beta=beta, attributes=KB_ATTRIBUTES, seed=11
        )
        # one serving session per dirty graph (a session is bound to one
        # graph); passing it to the detector would let further detection
        # calls on this graph reuse the backend and compiled plan
        with Session(
            dirty,
            enforcement=EnforcementConfig(max_violation_samples=10_000),
            backend="serial",
            num_workers=1,
        ) as serving:
            gfd_metrics = gfd_detection(
                dirty, sigma, report.dirty_nodes, session=serving
            )
        amie_metrics = amie_detection(
            dirty,
            amie.rules,
            report.dirty_nodes,
            AmieMiner(dirty, min_support=config.sigma),
        )
        print(
            f"\nnoise α={alpha:.0%} β={beta:.0%}: "
            f"{len(report.dirty_nodes)} dirty nodes, "
            f"{report.total_changes} perturbations"
        )
        print(
            f"  GFD detection : accuracy={gfd_metrics.accuracy:.2f} "
            f"precision={gfd_metrics.precision:.2f} "
            f"(flagged {gfd_metrics.flagged})"
        )
        print(
            f"  AMIE detection: accuracy={amie_metrics.accuracy:.2f} "
            f"precision={amie_metrics.precision:.2f} "
            f"(flagged {amie_metrics.flagged})"
        )


if __name__ == "__main__":
    main()
