"""Rule analysis: satisfiability, implication and covers on GFD sets.

Exercises the reasoning layer (Section 3's FPT analyses): builds a rule set
with redundancies and contradictions, checks satisfiability, explains which
rules are implied by which, computes a cover, and constructs a model graph
witnessing satisfiability.

Run:  python examples/rule_analysis.py
"""

from __future__ import annotations

from repro import format_gfd, implies, is_satisfiable, parse_gfd, sequential_cover
from repro.gfd import build_model, graph_satisfies


def main() -> None:
    rules = [
        # base rule: film creators are producers
        parse_gfd(
            'Q[x, y] { (x:person)-[create]->(y:product) } '
            '(y.type="film" -> x.type="producer")'
        ),
        # redundant: weaker (extra LHS literal)
        parse_gfd(
            'Q[x, y] { (x:person)-[create]->(y:product) } '
            '(y.type="film" & y.lang="en" -> x.type="producer")'
        ),
        # redundant: bigger pattern, same dependency
        parse_gfd(
            'Q[x, y, z] { (x:person)-[create]->(y:product), '
            '(y)-[receive]->(z:award) } '
            '(y.type="film" -> x.type="producer")'
        ),
        # independent negative rule
        parse_gfd(
            "Q[x, y] { (x:person)-[parent]->(y:person), (y)-[parent]->(x) } "
            "( -> false)"
        ),
        # chained rule: producers have studios
        parse_gfd(
            'Q[x, y] { (x:person)-[create]->(y:product) } '
            '(x.type="producer" -> x.has_studio="yes")'
        ),
    ]
    print("rule set:")
    for index, rule in enumerate(rules):
        print(f"  [{index}] {format_gfd(rule)}")

    print(f"\nsatisfiable: {is_satisfiable(rules)}")

    derived = parse_gfd(
        'Q[x, y] { (x:person)-[create]->(y:product) } '
        '(y.type="film" -> x.has_studio="yes")'
    )
    print(f"\nderived rule: {format_gfd(derived)}")
    print(f"implied by the set (via transitivity): {implies(rules, derived)}")
    print(f"implied by rule [0] alone: {implies(rules[:1], derived)}")

    cover = sequential_cover(rules)
    print(f"\ncover keeps {len(cover.cover)} of {len(rules)} rules:")
    for rule in cover.cover:
        print(f"  {format_gfd(rule)}")
    print("removed as redundant:")
    for rule in cover.removed:
        print(f"  {format_gfd(rule)}")

    model = build_model(cover.cover)
    assert model is not None
    print(
        f"\nwitness model: {model.num_nodes} nodes, {model.num_edges} edges; "
        f"satisfies every kept rule: "
        f"{all(graph_satisfies(model, rule) for rule in cover.cover if rule.is_positive)}"
    )


if __name__ == "__main__":
    main()
