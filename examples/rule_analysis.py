"""Rule analysis: satisfiability, implication and covers on GFD sets.

Exercises the reasoning layer (Section 3's FPT analyses): builds a rule set
with redundancies and contradictions, checks satisfiability, explains which
rules are implied by which, computes a cover, constructs a model graph
witnessing satisfiability — and then *serves* the cover against that model
through a :class:`repro.Session` (load Σ from its JSON envelope, enforce,
mutate, refresh), showing the reasoning and serving layers meet.

Run:  python examples/rule_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Session, format_gfd, implies, is_satisfiable, parse_gfd, sequential_cover
from repro.gfd import build_model, dumps_sigma, graph_satisfies


def main() -> None:
    rules = [
        # base rule: film creators are producers
        parse_gfd(
            'Q[x, y] { (x:person)-[create]->(y:product) } '
            '(y.type="film" -> x.type="producer")'
        ),
        # redundant: weaker (extra LHS literal)
        parse_gfd(
            'Q[x, y] { (x:person)-[create]->(y:product) } '
            '(y.type="film" & y.lang="en" -> x.type="producer")'
        ),
        # redundant: bigger pattern, same dependency
        parse_gfd(
            'Q[x, y, z] { (x:person)-[create]->(y:product), '
            '(y)-[receive]->(z:award) } '
            '(y.type="film" -> x.type="producer")'
        ),
        # independent negative rule
        parse_gfd(
            "Q[x, y] { (x:person)-[parent]->(y:person), (y)-[parent]->(x) } "
            "( -> false)"
        ),
        # chained rule: producers have studios
        parse_gfd(
            'Q[x, y] { (x:person)-[create]->(y:product) } '
            '(x.type="producer" -> x.has_studio="yes")'
        ),
    ]
    print("rule set:")
    for index, rule in enumerate(rules):
        print(f"  [{index}] {format_gfd(rule)}")

    print(f"\nsatisfiable: {is_satisfiable(rules)}")

    derived = parse_gfd(
        'Q[x, y] { (x:person)-[create]->(y:product) } '
        '(y.type="film" -> x.has_studio="yes")'
    )
    print(f"\nderived rule: {format_gfd(derived)}")
    print(f"implied by the set (via transitivity): {implies(rules, derived)}")
    print(f"implied by rule [0] alone: {implies(rules[:1], derived)}")

    cover = sequential_cover(rules)
    print(f"\ncover keeps {len(cover.cover)} of {len(rules)} rules:")
    for rule in cover.cover:
        print(f"  {format_gfd(rule)}")
    print("removed as redundant:")
    for rule in cover.removed:
        print(f"  {format_gfd(rule)}")

    model = build_model(cover.cover)
    assert model is not None
    print(
        f"\nwitness model: {model.num_nodes} nodes, {model.num_edges} edges; "
        f"satisfies every kept rule: "
        f"{all(graph_satisfies(model, rule) for rule in cover.cover if rule.is_positive)}"
    )

    # serve the cover against the witness model through a Session: persist
    # Σ, load it into the session, validate, mutate, refresh incrementally
    sigma_path = Path(tempfile.gettempdir()) / "rule_analysis_sigma.json"
    sigma_path.write_text(dumps_sigma(cover.cover) + "\n")
    with Session(model) as session:
        session.load_sigma(sigma_path)
        report = session.enforce()
        print(
            f"\nsession over the model: {len(session.sigma)} rules loaded "
            f"from {sigma_path.name}, clean={report.is_clean}"
        )
        # break the producer rule on the live model and catch it
        # incrementally: declaring the product a film obliges its creator
        # to be a producer, which the witness model's creator is not
        product = next(
            node
            for node in range(model.num_nodes)
            if model.node_label(node) == "product"
        )
        model.set_attr(product, "type", "film")
        report = session.refresh()
        print(
            f"after declaring node {product} a film: mode={report.mode}, "
            f"violations={report.total_violations}"
        )
        assert not report.is_clean
    sigma_path.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
