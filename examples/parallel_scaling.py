"""Parallel scalability: one Session per worker count (Theorem 5 in action).

Runs the discover → cover pipeline on a :class:`repro.Session` for
n ∈ {1, 2, 4, 8}, prints the modeled parallel response time (makespan +
master + modeled communication) and verifies the result set never changes —
parallelism buys time, not different rules.  Each session starts its worker
pools exactly once and shares them between the discovery and cover phases
(asserted from ``session.metrics()``).

Run:  python examples/parallel_scaling.py
"""

from __future__ import annotations

from repro import DiscoveryConfig, Session
from repro.core import gfd_identity
from repro.datasets import KB_ATTRIBUTES, yago2_like


def main() -> None:
    graph = yago2_like(scale=1.2, seed=3)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    config = DiscoveryConfig(
        k=3,
        sigma=70,
        max_lhs_size=1,
        active_attributes=list(KB_ATTRIBUTES),
    )

    reference = None
    cover_size = None
    base = None
    print("\nSession pipeline (modeled cluster time):")
    print("  n   parallel_s   makespan_s   master_s   speedup_vs_n=1")
    for workers in (1, 2, 4, 8):
        with Session(graph, config, num_workers=workers) as session:
            result = session.discover()
            cover = session.cover()
            metrics = session.metrics()
            identities = {gfd_identity(gfd) for gfd in result.gfds}
            if reference is None:
                reference = identities
                cover_size = len(cover.cover)
            assert identities == reference, "result set drifted with n"
            assert len(cover.cover) == cover_size, "cover drifted with n"
            assert metrics.backend_starts == 1, "pools must start once"
            elapsed = metrics.cluster.elapsed_parallel
            if base is None:
                base = elapsed
            print(
                f"  {workers:>2}   {elapsed:>9.3f}   "
                f"{metrics.cluster.parallel_seconds:>9.3f}   "
                f"{metrics.cluster.master_seconds:>7.3f}   "
                f"{base / elapsed:>6.2f}x"
            )
    print(f"\ncover: {cover_size} rules at every n — scalability is free of")
    print("semantic drift (the property the paper's Theorem 5 relies on),")
    print("and each session ran discovery and cover on ONE pool set.")


if __name__ == "__main__":
    main()
