"""Parallel scalability: DisGFD across worker counts (Theorem 5 in action).

Runs ParDis over the metered cluster simulation for n ∈ {1, 2, 4, 8, 16},
prints the modeled parallel response time (makespan + master + modeled
communication) and verifies the result set never changes — parallelism buys
time, not different rules.

Run:  python examples/parallel_scaling.py
"""

from __future__ import annotations

from repro import DiscoveryConfig, discover
from repro.core import gfd_identity
from repro.datasets import KB_ATTRIBUTES, yago2_like
from repro.parallel import discover_parallel


def main() -> None:
    graph = yago2_like(scale=1.2, seed=3)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    config = DiscoveryConfig(
        k=3,
        sigma=70,
        max_lhs_size=1,
        active_attributes=list(KB_ATTRIBUTES),
    )

    sequential = discover(graph, config)
    print(
        f"\nSeqDis: {len(sequential.gfds)} GFDs in "
        f"{sequential.stats.elapsed_seconds:.2f}s (single process)"
    )
    reference = {gfd_identity(gfd) for gfd in sequential.gfds}

    print("\nParDis (modeled cluster time):")
    print("  n   parallel_s   makespan_s   master_s   speedup_vs_n=1")
    base = None
    for workers in (1, 2, 4, 8, 16):
        result, cluster = discover_parallel(graph, config, num_workers=workers)
        assert {gfd_identity(gfd) for gfd in result.gfds} == reference
        elapsed = cluster.metrics.elapsed_parallel
        if base is None:
            base = elapsed
        print(
            f"  {workers:>2}   {elapsed:>9.3f}   "
            f"{cluster.metrics.parallel_seconds:>9.3f}   "
            f"{cluster.metrics.master_seconds:>7.3f}   {base / elapsed:>6.2f}x"
        )
    print("\nresult sets identical across all runs — scalability is free of")
    print("semantic drift (the property the paper's Theorem 5 relies on).")


if __name__ == "__main__":
    main()
