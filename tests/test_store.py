"""Persistence suite: the on-disk index store, attach transports, janitor.

Covers the ``repro.graph.store`` format end to end: property-based
save/load round trips (every export buffer byte-identical under both the
mmap and the eager loader, deterministic file bytes), typed corruption
detection (truncation, flipped header/region bytes, wrong schema), the
stale-fingerprint guards, Session ``index_path`` semantics, a
fresh-process attach that answers a pinned query with *zero* index
rebuilds, differential discover → cover → enforce identity on both
backends, and the janitor regression: a live mmap attachment must survive
``sweep_orphans`` and repeated backend shutdowns untouched.
"""

from __future__ import annotations

import os
import struct
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiscoveryConfig, Session, format_gfd
from repro.datasets import scale_graph
from repro.graph import (
    Graph,
    IndexStoreCorrupt,
    IndexStoreError,
    IndexStoreStale,
    inspect_index,
    load_index,
    save_index,
)
from repro.graph.index import GraphIndex
from repro.graph.store import _PREAMBLE, SCHEMA_VERSION
from repro.parallel import janitor, shared_memory_available
from repro.pattern import Pattern
from repro.pattern.matcher import count_matches


def store_graph(num_people: int = 24) -> Graph:
    """A small deterministic graph with enough structure to index."""
    graph = Graph()
    people = [
        graph.add_node(
            "person", {"kind": "a" if i % 2 else "b", "year": 2000 + i % 3}
        )
        for i in range(num_people)
    ]
    cities = [graph.add_node("city", {"kind": "c"}) for _ in range(8)]
    for i, person in enumerate(people):
        graph.add_edge(person, cities[i % len(cities)], "live_in")
        graph.add_edge(person, people[(i + 1) % len(people)], "like")
    return graph


def assert_buffers_identical(built: GraphIndex, loaded: GraphIndex) -> None:
    """Every export buffer must match bytewise, dtype included."""
    meta_b, arrays_b = built.export_buffers()
    meta_l, arrays_l = loaded.export_buffers()
    assert meta_b == meta_l
    assert set(arrays_b) == set(arrays_l)
    for name in arrays_b:
        assert arrays_b[name].dtype == arrays_l[name].dtype, name
        assert arrays_b[name].tobytes() == arrays_l[name].tobytes(), name


@st.composite
def graphs(draw) -> Graph:
    """Random small graphs with JSON-stable attribute values."""
    num_nodes = draw(st.integers(1, 40))
    num_labels = draw(st.integers(1, 4))
    graph = Graph()
    for _ in range(num_nodes):
        attrs = {}
        for slot in range(draw(st.integers(0, 2))):
            attrs[f"a{slot}"] = draw(
                st.one_of(
                    st.integers(-5, 5),
                    st.text(alphabet="abcxyz", min_size=0, max_size=4),
                )
            )
        graph.add_node(f"L{draw(st.integers(0, num_labels - 1))}", attrs)
    for _ in range(draw(st.integers(0, 3 * num_nodes))):
        src = draw(st.integers(0, num_nodes - 1))
        dst = draw(st.integers(0, num_nodes - 1))
        if src != dst:
            graph.add_edge(src, dst, f"e{draw(st.integers(0, 2))}")
    return graph


class TestRoundTrip:
    @settings(deadline=None, max_examples=30)
    @given(graph=graphs())
    def test_save_load_byte_identity(self, graph):
        """Property: both loaders reproduce every buffer bytewise."""
        index = GraphIndex.build(graph)
        with tempfile.TemporaryDirectory() as temp:
            path = Path(temp) / "g.rgix"
            save_index(index, path)
            first_bytes = path.read_bytes()
            save_index(index, path)
            assert path.read_bytes() == first_bytes  # deterministic bytes

            attached = load_index(path, mmap=True)
            eager = load_index(path, mmap=False, verify=True)
            try:
                assert_buffers_identical(index, attached)
                assert_buffers_identical(index, eager)
                for label in {graph.node_label(v) for v in graph.nodes()}:
                    assert sorted(attached.nodes_with_label(label)) == sorted(
                        index.nodes_with_label(label)
                    )
            finally:
                attached.store_mapping.close()

    def test_load_binds_graph(self, tmp_path):
        graph = store_graph()
        path = save_index(GraphIndex.build(graph), tmp_path / "g.rgix")
        loaded = load_index(path, graph=graph, mmap=False)
        assert loaded.graph is graph
        assert loaded.is_fresh()
        pattern = Pattern(["person", "city"], [(0, 1, "live_in")])
        assert count_matches(graph, pattern, index=loaded) == count_matches(
            graph, pattern, index=graph.index()
        )

    def test_inspect_reports_layout(self, tmp_path):
        graph = store_graph()
        index = GraphIndex.build(graph)
        path = save_index(index, tmp_path / "g.rgix")
        facts = inspect_index(path)
        assert facts["schema"] == SCHEMA_VERSION
        assert facts["fingerprint"]["num_nodes"] == graph.num_nodes
        assert facts["fingerprint"]["num_edges"] == graph.num_edges
        _, arrays = index.export_buffers()
        assert set(arrays) <= set(facts["arrays"])

    def test_save_stamps_store_path(self, tmp_path):
        graph = store_graph()
        index = graph.index()
        path = save_index(index, tmp_path / "g.rgix")
        assert index.store_path == str(path)


class TestCorruption:
    @pytest.fixture
    def saved(self, tmp_path):
        graph = store_graph()
        return save_index(GraphIndex.build(graph), tmp_path / "g.rgix")

    def test_truncated_preamble(self, saved):
        saved.write_bytes(saved.read_bytes()[:3])
        with pytest.raises(IndexStoreCorrupt):
            load_index(saved)

    def test_truncated_data(self, saved):
        blob = saved.read_bytes()
        saved.write_bytes(blob[:-10])
        with pytest.raises(IndexStoreCorrupt, match="truncated data"):
            load_index(saved, mmap=False)

    def test_flipped_header_byte(self, saved):
        blob = bytearray(saved.read_bytes())
        blob[_PREAMBLE.size + 5] ^= 0xFF
        saved.write_bytes(bytes(blob))
        with pytest.raises(IndexStoreCorrupt, match="header checksum"):
            load_index(saved)

    def test_flipped_region_byte(self, saved):
        blob = bytearray(saved.read_bytes())
        blob[-1] ^= 0xFF  # the final region's last byte
        saved.write_bytes(bytes(blob))
        with pytest.raises(IndexStoreCorrupt, match="checksum mismatch"):
            load_index(saved, mmap=False)
        with pytest.raises(IndexStoreCorrupt, match="checksum mismatch"):
            index = load_index(saved, mmap=True, verify=True)
            index.store_mapping.close()
        # the documented trade-off: an unverified mmap attach stays cheap
        index = load_index(saved, mmap=True)
        index.store_mapping.close()

    def test_wrong_schema_version(self, saved):
        blob = bytearray(saved.read_bytes())
        magic, _, crc, length = _PREAMBLE.unpack(blob[: _PREAMBLE.size])
        blob[: _PREAMBLE.size] = _PREAMBLE.pack(
            magic, SCHEMA_VERSION + 7, crc, length
        )
        saved.write_bytes(bytes(blob))
        with pytest.raises(IndexStoreError, match="schema version") as info:
            load_index(saved)
        assert not isinstance(info.value, IndexStoreCorrupt)

    def test_wrong_magic(self, saved):
        blob = bytearray(saved.read_bytes())
        blob[:4] = b"NOPE"
        saved.write_bytes(bytes(blob))
        with pytest.raises(IndexStoreCorrupt, match="magic"):
            load_index(saved)

    def test_atomic_write_leaves_no_temp(self, saved):
        assert list(saved.parent.glob("*.tmp*")) == []


class TestStaleGuards:
    def test_load_rejects_mutated_graph(self, tmp_path):
        graph = store_graph()
        path = save_index(GraphIndex.build(graph), tmp_path / "g.rgix")
        graph.add_node("person", {"kind": "z"})
        with pytest.raises(IndexStoreStale):
            load_index(path, graph=graph)

    def test_save_rejects_stale_index(self, tmp_path):
        graph = store_graph()
        index = graph.index()
        graph.add_node("person", {"kind": "z"})
        with pytest.raises(IndexStoreStale):
            save_index(index, tmp_path / "g.rgix")

    def test_fingerprint_collision_caught_by_spot_check(self, tmp_path):
        """Same shape + mutation count but different content must not bind.

        ``Graph.version`` counts mutations, so two graphs replaying the
        same construction sequence with different attribute values share
        the whole fingerprint — the bind-time sample must still refuse.
        """

        def build(kind_of):
            graph = Graph()
            for i in range(30):
                graph.add_node("person", {"kind": kind_of(i)})
            for i in range(29):
                graph.add_edge(i, i + 1, "knows")
            return graph

        clean = build(lambda i: f"k{i % 3}")
        dirty = build(lambda i: f"k{(i + 1) % 3}")
        assert (clean.num_nodes, clean.num_edges, clean.version) == (
            dirty.num_nodes, dirty.num_edges, dirty.version
        )
        path = save_index(GraphIndex.build(clean), tmp_path / "g.rgix")
        with pytest.raises(IndexStoreStale, match="different content"):
            load_index(path, graph=dirty)
        load_index(path, graph=clean, mmap=False)  # the true graph binds


class TestSessionIndexPath:
    CONFIG = dict(k=2, sigma=4, max_lhs_size=1, active_attributes=["kind"])

    def test_missing_file_builds_and_saves(self, tmp_path):
        path = tmp_path / "session.rgix"
        with Session(store_graph(), DiscoveryConfig(**self.CONFIG),
                     index_path=path) as session:
            session.discover()
        assert path.exists()
        assert inspect_index(path)["schema"] == SCHEMA_VERSION

    def test_valid_file_loads_without_rebuild(self, tmp_path):
        path = save_index(
            GraphIndex.build(store_graph()), tmp_path / "session.rgix"
        )
        graph = store_graph()  # same construction → same fingerprint
        before = GraphIndex.builds_performed
        with Session(graph, DiscoveryConfig(**self.CONFIG),
                     index_path=path) as session:
            session.discover()
        assert GraphIndex.builds_performed == before

    def test_stale_file_rebuilds_and_resaves(self, tmp_path):
        path = save_index(
            GraphIndex.build(store_graph(num_people=12)),
            tmp_path / "session.rgix",
        )
        graph = store_graph()
        with Session(graph, DiscoveryConfig(**self.CONFIG),
                     index_path=path) as session:
            session.discover()
        assert inspect_index(path)["fingerprint"]["num_nodes"] == (
            graph.num_nodes
        )

    def test_corrupt_file_raises(self, tmp_path):
        path = save_index(
            GraphIndex.build(store_graph()), tmp_path / "session.rgix"
        )
        blob = bytearray(path.read_bytes())
        blob[_PREAMBLE.size + 5] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexStoreCorrupt):
            Session(store_graph(), DiscoveryConfig(**self.CONFIG),
                    index_path=path)


_CHILD_ATTACH = """
import sys

from repro.graph import load_index
from repro.graph.index import GraphIndex
from repro.pattern import Pattern
from repro.pattern.matcher import count_matches

index = load_index(sys.argv[1], mmap=True)
assert GraphIndex.builds_performed == 0, (
    f"attach rebuilt the index {GraphIndex.builds_performed} time(s)"
)
pattern = Pattern(["L0", "L1"], [(0, 1, "e0")])
print(count_matches(None, pattern, index=index))
"""


class TestFreshProcessAttach:
    def test_subprocess_answers_pinned_query_without_rebuild(self, tmp_path):
        graph = scale_graph(100_000, seed=3)
        index = GraphIndex.build(graph)
        path = save_index(index, tmp_path / "scale.rgix")
        pattern = Pattern(["L0", "L1"], [(0, 1, "e0")])
        expected = count_matches(None, pattern, index=index)
        assert expected > 0  # the planted L0 -e0-> L1 regularity

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", _CHILD_ATTACH, str(path)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert int(out.stdout.strip()) == expected

    @pytest.mark.skipif(
        not shared_memory_available(), reason="platform lacks shared memory"
    )
    def test_multiprocess_workers_take_mmap_route(self, tmp_path):
        graph = store_graph()
        path = save_index(graph.index(), tmp_path / "g.rgix")
        with Session(
            graph,
            DiscoveryConfig(**TestSessionIndexPath.CONFIG),
            num_workers=2,
            backend="multiprocess",
            index_path=path,
        ) as session:
            session.discover()
            backend = session.backend()
            assert backend.index_transport == "mmap"
            assert backend.lifecycle.index_attaches == 1


class TestDifferentialIdentity:
    """Loaded-index pipelines ≡ built-index pipelines, per backend."""

    BACKENDS = ["serial"] + (
        ["multiprocess"] if shared_memory_available() else []
    )

    @staticmethod
    def _signature(session: Session):
        result = session.discover()
        cover = session.cover()
        report = session.enforce()
        rules = sorted(
            (format_gfd(gfd), result.supports.get(gfd, 0))
            for gfd in result.gfds
        )
        return (
            rules,
            sorted(format_gfd(gfd) for gfd in cover.cover),
            sorted(
                (format_gfd(rule.gfd), rule.violation_count,
                 rule.distinct_pivots)
                for rule in report.rules
            ),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pipeline_identity(self, backend, tmp_path, film_graph,
                               film_config):
        with Session(film_graph, film_config, num_workers=2,
                     backend=backend) as session:
            built = self._signature(session)
        assert built[0], "no rules discovered — the identity would be vacuous"

        path = save_index(GraphIndex.build(film_graph), tmp_path / "f.rgix")
        with Session(film_graph, film_config, num_workers=2,
                     backend=backend, index_path=path) as session:
            loaded = self._signature(session)
        assert built == loaded


@pytest.mark.skipif(
    not shared_memory_available(), reason="platform lacks shared memory"
)
class TestJanitorMmapRegression:
    """sweep/shutdown must never unlink or double-close a live mmap attach."""

    def test_live_mapping_survives_sweep_orphans(self, tmp_path):
        graph = store_graph()
        path = save_index(GraphIndex.build(graph), tmp_path / "g.rgix")
        index = load_index(path, mmap=True)
        mapping = index.store_mapping
        assert mapping in janitor.live_mappings()
        try:
            janitor.sweep_orphans()
            assert path.exists()
            # the mapped views must still be readable after the sweep
            _, arrays = index.export_buffers()
            for array in arrays.values():
                np.asarray(array).tobytes()
        finally:
            mapping.close()
        assert mapping not in janitor.live_mappings()
        assert path.exists()

    def test_mapping_close_is_idempotent(self, tmp_path):
        graph = store_graph()
        path = save_index(GraphIndex.build(graph), tmp_path / "g.rgix")
        index = load_index(path, mmap=True)
        index.store_mapping.close()
        index.store_mapping.close()  # second close must be a no-op
        assert path.exists()
        load_index(path, mmap=False, verify=True)  # file intact

    def test_backend_shutdown_leaves_store_intact(self, tmp_path):
        graph = store_graph()
        path = save_index(graph.index(), tmp_path / "g.rgix")
        config = DiscoveryConfig(**TestSessionIndexPath.CONFIG)
        with Session(graph, config, num_workers=2, backend="multiprocess",
                     index_path=path) as session:
            session.discover()
            backend = session.backend()
            assert backend.index_transport == "mmap"
            backend.shutdown()
            backend.shutdown()  # double shutdown must not double-close
        assert path.exists()
        reloaded = load_index(path, mmap=False, verify=True)
        assert reloaded.num_nodes == graph.num_nodes
