"""Unit tests for the property-graph substrate."""

from __future__ import annotations

import pytest

from repro.graph import (
    Graph,
    GraphBuilder,
    compute_statistics,
    fragment_graph,
    graph_from_json,
    graph_to_json,
    load_json,
    load_tsv,
    partition_edges,
    save_json,
    save_tsv,
)
from repro.graph.partition import edge_balance, replication_factor


def build_sample() -> Graph:
    graph = Graph()
    a = graph.add_node("person", {"name": "Ann", "age": 30})
    b = graph.add_node("person", {"name": "Bob"})
    c = graph.add_node("city", {"name": "Paris"})
    graph.add_edge(a, b, "knows")
    graph.add_edge(a, c, "livesIn")
    graph.add_edge(b, c, "livesIn")
    return graph


class TestGraphBasics:
    def test_counts(self):
        graph = build_sample()
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_node_labels_and_attrs(self):
        graph = build_sample()
        assert graph.node_label(0) == "person"
        assert graph.get_attr(0, "name") == "Ann"
        assert graph.get_attr(1, "age") is None
        assert graph.has_attr(0, "age")
        assert not graph.has_attr(1, "age")

    def test_duplicate_edge_rejected(self):
        graph = build_sample()
        assert not graph.add_edge(0, 1, "knows")
        assert graph.num_edges == 3

    def test_parallel_edge_different_label(self):
        graph = build_sample()
        assert graph.add_edge(0, 1, "admires")
        assert graph.edge_labels(0, 1) == {"knows", "admires"}

    def test_has_edge(self):
        graph = build_sample()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 1, "knows")
        assert not graph.has_edge(0, 1, "livesIn")
        assert not graph.has_edge(1, 0)

    def test_neighbors(self):
        graph = build_sample()
        assert set(graph.out_neighbors(0)) == {1, 2}
        assert set(graph.in_neighbors(2)) == {0, 1}

    def test_degrees(self):
        graph = build_sample()
        assert graph.out_degree(0) == 2
        assert graph.in_degree(2) == 2
        assert graph.degree(1) == 2

    def test_remove_edge(self):
        graph = build_sample()
        assert graph.remove_edge(0, 1, "knows")
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 2
        assert not graph.remove_edge(0, 1, "knows")

    def test_relabel_node(self):
        graph = build_sample()
        graph.relabel_node(0, "robot")
        assert graph.node_label(0) == "robot"
        assert 0 in graph.nodes_with_label("robot")
        assert 0 not in graph.nodes_with_label("person")

    def test_relabel_edge(self):
        graph = build_sample()
        assert graph.relabel_edge(0, 1, "knows", "met")
        assert graph.has_edge(0, 1, "met")
        assert not graph.has_edge(0, 1, "knows")
        assert not graph.relabel_edge(0, 1, "gone", "met")

    def test_set_and_remove_attr(self):
        graph = build_sample()
        graph.set_attr(1, "age", 44)
        assert graph.get_attr(1, "age") == 44
        graph.remove_attr(1, "age")
        assert not graph.has_attr(1, "age")

    def test_label_index(self):
        graph = build_sample()
        assert graph.nodes_with_label("person") == [0, 1]
        assert graph.node_labels() == {"person", "city"}
        assert graph.label_count("person") == 2

    def test_edge_label_counts(self):
        graph = build_sample()
        assert graph.edge_label_counts() == {"knows": 1, "livesIn": 2}

    def test_edges_iteration(self):
        graph = build_sample()
        assert sorted(graph.edges()) == [
            (0, 1, "knows"),
            (0, 2, "livesIn"),
            (1, 2, "livesIn"),
        ]

    def test_induced_subgraph(self):
        graph = build_sample()
        sub = graph.induced_subgraph([0, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.node_label(0) == "person"
        assert sub.has_edge(0, 1, "livesIn")

    def test_copy_independent(self):
        graph = build_sample()
        clone = graph.copy()
        clone.add_edge(2, 0, "contains")
        clone.set_attr(0, "name", "Zoe")
        assert not graph.has_edge(2, 0)
        assert graph.get_attr(0, "name") == "Ann"

    def test_missing_node_raises(self):
        graph = build_sample()
        with pytest.raises(KeyError):
            graph.add_edge(0, 99, "x")


class TestGraphBuilder:
    def test_keyed_construction(self):
        builder = GraphBuilder()
        builder.node("a", "person", name="Ann")
        builder.node("b", "person")
        builder.edge("a", "b", "knows")
        graph, ids = builder.build()
        assert graph.num_nodes == 2
        assert graph.has_edge(ids["a"], ids["b"], "knows")

    def test_attribute_extension(self):
        builder = GraphBuilder()
        builder.node("a", "person")
        builder.node("a", age=9)
        graph, ids = builder.build()
        assert graph.get_attr(ids["a"], "age") == 9

    def test_label_conflict_raises(self):
        builder = GraphBuilder()
        builder.node("a", "person")
        with pytest.raises(ValueError):
            builder.node("a", "robot")

    def test_unknown_endpoint_raises(self):
        builder = GraphBuilder()
        builder.node("a", "person")
        with pytest.raises(KeyError):
            builder.edge("a", "missing", "knows")

    def test_first_reference_needs_label(self):
        builder = GraphBuilder()
        with pytest.raises(ValueError):
            builder.node("a")


class TestIO:
    def test_json_round_trip(self, tmp_path):
        graph = build_sample()
        path = tmp_path / "graph.json"
        save_json(graph, path)
        loaded = load_json(path)
        assert graph_to_json(loaded) == graph_to_json(graph)

    def test_json_dict_round_trip(self):
        graph = build_sample()
        clone = graph_from_json(graph_to_json(graph))
        assert sorted(clone.edges()) == sorted(graph.edges())
        assert clone.node_attrs(0) == graph.node_attrs(0)

    def test_tsv_round_trip(self, tmp_path):
        graph = build_sample()
        path = tmp_path / "graph.tsv"
        save_tsv(graph, path)
        loaded = load_tsv(path)
        assert sorted(loaded.edges()) == sorted(graph.edges())
        assert loaded.node_attrs(0) == graph.node_attrs(0)
        assert loaded.node_label(2) == "city"

    def test_tsv_rejects_out_of_order(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("#nodes\n1\tperson\n")
        with pytest.raises(ValueError):
            load_tsv(path)

    def test_tsv_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\tperson\n")
        with pytest.raises(ValueError):
            load_tsv(path)


class TestPartition:
    def test_block_partition_covers_all_edges(self):
        graph = build_sample()
        buckets = partition_edges(graph, 2, strategy="block")
        merged = sorted(edge for bucket in buckets for edge in bucket)
        assert merged == sorted(graph.edges())

    def test_hash_partition_covers_all_edges(self):
        graph = build_sample()
        buckets = partition_edges(graph, 2, strategy="hash")
        merged = sorted(edge for bucket in buckets for edge in bucket)
        assert merged == sorted(graph.edges())

    def test_even_balance(self):
        graph = Graph()
        nodes = [graph.add_node("n") for _ in range(20)]
        for index in range(19):
            graph.add_edge(nodes[index], nodes[index + 1], "e")
        fragments = fragment_graph(graph, 4)
        low, high = edge_balance(fragments)
        assert high - low <= 1

    def test_border_nodes(self):
        graph = build_sample()
        fragments = fragment_graph(graph, 3)
        for fragment in fragments:
            for src, dst, _ in fragment.edges:
                assert src in fragment.border_nodes
                assert dst in fragment.border_nodes

    def test_replication_factor_at_least_one(self):
        graph = build_sample()
        fragments = fragment_graph(graph, 2)
        assert replication_factor(fragments) >= 1.0

    def test_invalid_fragment_count(self):
        with pytest.raises(ValueError):
            partition_edges(build_sample(), 0)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            partition_edges(build_sample(), 2, strategy="magic")

    def test_edges_with_label(self):
        graph = build_sample()
        fragments = fragment_graph(graph, 1)
        assert len(fragments[0].edges_with_label("livesIn")) == 2


class TestStatistics:
    def test_label_counts(self):
        stats = compute_statistics(build_sample())
        assert stats.node_label_counts == {"person": 2, "city": 1}
        assert stats.edge_label_counts == {"knows": 1, "livesIn": 2}

    def test_triples(self):
        stats = compute_statistics(build_sample())
        assert stats.triple_counts[("person", "livesIn", "city")] == 2
        assert stats.frequent_triples(2) == [("person", "livesIn", "city")]

    def test_attr_counts(self):
        stats = compute_statistics(build_sample())
        assert stats.attr_counts == {"name": 3, "age": 1}
        assert stats.top_attributes(1) == ["name"]

    def test_top_values(self):
        graph = Graph()
        for value in ["x", "x", "y"]:
            graph.add_node("n", {"a": value})
        stats = compute_statistics(graph)
        assert stats.top_values("n", "a", 2) == ["x", "y"]
        assert stats.top_values("n", "missing", 2) == []

    def test_max_degree(self):
        stats = compute_statistics(build_sample())
        assert stats.max_degree == 2
