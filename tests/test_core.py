"""Tests for match tables, support, reduction, discovery and cover."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DiscoveryConfig,
    MatchTable,
    correlation,
    discover,
    gfd_identity,
    gfd_reduces,
    gfd_support,
    gfd_support_any,
    minimal_cover_by_reduction,
    negative_base_support,
    normalize_gfd,
    pattern_support,
    sequential_cover,
)
from repro.core.config import CandidateBudgetExceeded
from repro.gfd import (
    FALSE,
    GFD,
    ConstantLiteral,
    graph_satisfies,
    implies,
    make_variable_literal,
    validate_set,
)
from repro.graph import Graph
from repro.pattern import WILDCARD, Pattern, find_matches


def table_fixture():
    graph = Graph()
    values = ["red", "red", "blue", None]
    pivots = []
    for value in values:
        attrs = {"color": value} if value is not None else {}
        pivots.append(graph.add_node("thing", attrs))
    matches = [(node,) for node in pivots]
    return graph, MatchTable(graph, Pattern(["thing"]), matches, ["color"])


class TestMatchTable:
    def test_columns_and_missing(self):
        graph, table = table_fixture()
        assert table.num_rows == 4
        red = ConstantLiteral(0, "color", "red")
        assert table.literal_count(red) == 2
        missing = ConstantLiteral(0, "color", "green")
        assert table.literal_count(missing) == 0

    def test_masks_and_support(self):
        graph, table = table_fixture()
        red = ConstantLiteral(0, "color", "red")
        mask = table.literal_mask(red)
        assert table.mask_count(mask) == 2
        assert table.mask_support(mask) == 2
        assert table.mask_support(np.zeros(4, dtype=bool)) == 0

    def test_rows_sorted_by_pivot(self):
        graph = Graph()
        a, b = graph.add_node("t"), graph.add_node("t")
        table = MatchTable(graph, Pattern(["t"]), [(b,), (a,), (b,)], [])
        assert [m[0] for m in table.matches] == [a, b, b]

    def test_stack_supports(self):
        graph = Graph()
        a, b = graph.add_node("t"), graph.add_node("t")
        # two matches share pivot a, one has pivot b
        pattern = Pattern(["t", "t"], [(0, 1, "e")], pivot=0)
        graph.add_edge(a, b, "e")
        graph.add_edge(b, a, "e")
        table = MatchTable(graph, pattern, [(a, b), (b, a)], [])
        stack = np.array([[True, True], [True, False], [False, False]])
        assert list(table.stack_supports(stack)) == [2, 1, 0]

    def test_rows_satisfying_variable_literal(self):
        graph = Graph()
        a = graph.add_node("p", {"u": 1, "v": 1})
        b = graph.add_node("p", {"u": 1, "v": 2})
        graph.add_edge(a, b, "e")
        graph.add_edge(b, a, "e")
        pattern = Pattern(["p", "p"], [(0, 1, "e")])
        matches = list(find_matches(graph, pattern))
        table = MatchTable(graph, pattern, matches, ["u", "v"])
        literal = make_variable_literal(0, "u", 1, "u")
        assert len(table.rows_satisfying(literal, set(table.all_rows()))) == 2
        other = make_variable_literal(0, "v", 1, "v")
        assert len(table.rows_satisfying(other, set(table.all_rows()))) == 0

    def test_candidate_constants_ranked(self):
        graph, table = table_fixture()
        literals = table.candidate_constant_literals(max_constants=1)
        assert literals == [ConstantLiteral(0, "color", "red")]

    def test_candidate_min_rows(self):
        graph, table = table_fixture()
        literals = table.candidate_constant_literals(max_constants=5, min_rows=2)
        assert literals == [ConstantLiteral(0, "color", "red")]

    def test_truncated_flag(self):
        graph, _ = table_fixture()
        table = MatchTable(graph, Pattern(["thing"]), [(0,)], [], truncated=True)
        assert table.truncated


class TestSupport:
    def build(self):
        graph = Graph()
        person = graph.add_node("person", {"kind": "producer"})
        others = [graph.add_node("person", {"kind": "actor"}) for _ in range(2)]
        films = []
        for index in range(3):
            film = graph.add_node("product", {"kind": "film"})
            graph.add_edge(person, film, "create")
            films.append(film)
        graph.add_edge(others[0], films[0], "create")
        return graph

    def test_pattern_support_counts_pivots(self):
        graph = self.build()
        pattern = Pattern(["person", "product"], [(0, 1, "create")], pivot=0)
        assert pattern_support(graph, pattern) == 2
        assert pattern_support(graph, pattern.with_pivot(1)) == 3

    def test_gfd_support(self):
        graph = self.build()
        pattern = Pattern(["person", "product"], [(0, 1, "create")], pivot=0)
        gfd = GFD(
            pattern,
            frozenset(),
            ConstantLiteral(0, "kind", "producer"),
        )
        assert gfd_support(graph, gfd) == 1

    def test_correlation(self):
        graph = self.build()
        pattern = Pattern(["person", "product"], [(0, 1, "create")], pivot=0)
        gfd = GFD(pattern, frozenset(), ConstantLiteral(0, "kind", "producer"))
        assert correlation(graph, gfd) == pytest.approx(0.5)

    def test_negative_base_support_structural(self):
        graph = self.build()
        mutual = Pattern(
            ["person", "product"],
            [(0, 1, "create"), (1, 0, "create")],
            pivot=0,
        )
        negative = GFD(mutual, frozenset(), FALSE)
        # base: remove one edge -> the plain create pattern, support 2
        assert negative_base_support(graph, negative) == 2
        assert gfd_support_any(graph, negative) == 2

    def test_negative_base_support_literal(self):
        graph = self.build()
        pattern = Pattern(["person", "product"], [(0, 1, "create")], pivot=0)
        negative = GFD(
            pattern,
            frozenset(
                {
                    ConstantLiteral(0, "kind", "producer"),
                    ConstantLiteral(1, "kind", "book"),
                }
            ),
            FALSE,
        )
        assert negative_base_support(graph, negative) >= 1

    def test_anti_monotonicity_on_extension(self):
        """Theorem 3: extending the pattern cannot raise support."""
        graph = self.build()
        small = Pattern(["person", "product"], [(0, 1, "create")], pivot=0)
        big = small.with_new_node("product", 0, True, "create")
        small_gfd = GFD(small, frozenset(), ConstantLiteral(0, "kind", "producer"))
        big_gfd = GFD(big, frozenset(), ConstantLiteral(0, "kind", "producer"))
        assert gfd_reduces(small_gfd, big_gfd)
        assert gfd_support(graph, small_gfd) >= gfd_support(graph, big_gfd)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_anti_monotonicity_property(self, seed):
        """supp is anti-monotone in the ≪ order on random graphs."""
        import random

        rng = random.Random(seed)
        graph = Graph()
        for _ in range(12):
            graph.add_node(rng.choice("ab"), {"v": rng.choice([1, 2])})
        for _ in range(20):
            s, d = rng.randrange(12), rng.randrange(12)
            if s != d:
                graph.add_edge(s, d, rng.choice("ef"))
        base = Pattern(["a", WILDCARD], [(0, 1, "e")], pivot=0)
        bigger = base.with_new_node(WILDCARD, 1, True, "f")
        base_gfd = GFD(base, frozenset(), ConstantLiteral(0, "v", 1))
        bigger_gfd = GFD(bigger, frozenset(), ConstantLiteral(0, "v", 1))
        assert gfd_support(graph, base_gfd) >= gfd_support(graph, bigger_gfd)


PHI1 = GFD(
    Pattern(["person", "product"], [(0, 1, "create")], pivot=0),
    frozenset({ConstantLiteral(1, "type", "film")}),
    ConstantLiteral(0, "type", "producer"),
)


class TestReduction:
    def test_reduces_by_lhs_subset(self):
        stronger = GFD(
            PHI1.pattern,
            PHI1.lhs | {ConstantLiteral(1, "year", 2000)},
            PHI1.rhs,
        )
        assert gfd_reduces(PHI1, stronger)
        assert not gfd_reduces(stronger, PHI1)

    def test_reduces_by_pattern_extension(self):
        bigger = PHI1.pattern.with_new_node("award", 1, True, "receive")
        extended = GFD(bigger, PHI1.lhs, PHI1.rhs)
        assert gfd_reduces(PHI1, extended)

    def test_reduces_by_wildcard_upgrade(self):
        general = GFD(
            Pattern([WILDCARD, "product"], [(0, 1, "create")], pivot=0),
            PHI1.lhs,
            ConstantLiteral(0, "type", "producer"),
        )
        assert gfd_reduces(general, PHI1)

    def test_no_reduction_between_different_rhs(self):
        other = GFD(PHI1.pattern, PHI1.lhs, ConstantLiteral(0, "type", "actor"))
        assert not gfd_reduces(PHI1, other)
        assert not gfd_reduces(other, PHI1)

    def test_pivot_must_be_preserved(self):
        re_pivoted = GFD(PHI1.pattern.with_pivot(1), PHI1.lhs, PHI1.rhs)
        assert not gfd_reduces(PHI1, re_pivoted)

    def test_normalize_stable_across_renaming(self):
        renamed_pattern = Pattern(
            ["product", "person"], [(1, 0, "create")], pivot=1
        )
        renamed = GFD(
            renamed_pattern,
            frozenset({ConstantLiteral(0, "type", "film")}),
            ConstantLiteral(1, "type", "producer"),
        )
        assert gfd_identity(renamed) == gfd_identity(PHI1)
        assert normalize_gfd(renamed) == normalize_gfd(PHI1)

    def test_minimal_cover_removes_dominated(self):
        stronger = GFD(
            PHI1.pattern,
            PHI1.lhs | {ConstantLiteral(1, "year", 2000)},
            PHI1.rhs,
        )
        survivors = minimal_cover_by_reduction([PHI1, stronger])
        assert survivors == [PHI1]

    def test_minimal_cover_dedupes(self):
        duplicate = GFD(PHI1.pattern, PHI1.lhs, PHI1.rhs)
        assert len(minimal_cover_by_reduction([PHI1, duplicate])) == 1


class TestDiscovery:
    def test_finds_planted_rules(self, film_graph, film_config):
        result = discover(film_graph, film_config)
        texts = {str(gfd) for gfd in result.gfds}
        assert any(
            "x.type='producer' → y.type='film'" in text
            or "y.type='film'" in text and "producer" in text
            for text in texts
        )
        assert validate_set(film_graph, result.gfds)

    def test_finds_structural_negative(self, film_graph, film_config):
        result = discover(film_graph, film_config)
        negatives = [gfd for gfd in result.negatives if not gfd.lhs]
        assert negatives, "mutual-parent negative expected"
        mutual = [g for g in negatives if g.pattern.num_edges == 2]
        assert mutual

    def test_finds_literal_negative(self, film_graph, film_config):
        result = discover(film_graph, film_config)
        literal_negatives = [gfd for gfd in result.negatives if gfd.lhs]
        assert literal_negatives
        # e.g. actor ∧ film → false
        assert any(len(gfd.lhs) == 2 for gfd in literal_negatives)

    def test_supports_respect_sigma(self, film_graph, film_config):
        result = discover(film_graph, film_config)
        assert all(
            supp >= film_config.sigma for supp in result.supports.values()
        )

    def test_results_are_minimal(self, film_graph, film_config):
        result = discover(film_graph, film_config)
        for gfd in result.gfds:
            for other in result.gfds:
                if gfd is other:
                    continue
                assert not gfd_reduces(other, gfd)

    def test_all_positives_hold(self, film_graph, film_config):
        result = discover(film_graph, film_config)
        for gfd in result.positives:
            assert graph_satisfies(film_graph, gfd)

    def test_negative_mining_disabled(self, film_graph, film_config):
        from dataclasses import replace

        config = replace(film_config, mine_negative=False)
        result = discover(film_graph, config)
        assert not result.negatives

    def test_higher_sigma_finds_subset(self, film_graph, film_config):
        from dataclasses import replace

        low = discover(film_graph, film_config)
        high = discover(film_graph, replace(film_config, sigma=70))
        low_ids = {gfd_identity(g) for g in low.gfds}
        high_ids = {gfd_identity(g) for g in high.gfds}
        assert high_ids <= low_ids

    def test_candidate_budget(self, film_graph, film_config):
        from dataclasses import replace

        config = replace(film_config, max_candidates=5)
        with pytest.raises(CandidateBudgetExceeded):
            discover(film_graph, config)

    def test_stats_populated(self, film_graph, film_config):
        result = discover(film_graph, film_config)
        assert result.stats.patterns_spawned > 0
        assert result.stats.candidates_checked > 0
        assert result.stats.elapsed_seconds > 0
        assert result.stats.positives_found == len(result.positives)

    def test_average_support_and_order(self, film_graph, film_config):
        result = discover(film_graph, film_config)
        assert result.average_support() >= film_config.sigma
        ordered = result.sorted_by_support()
        supports = [result.supports[g] for g in ordered]
        assert supports == sorted(supports, reverse=True)


class TestCover:
    def test_cover_is_equivalent_and_minimal(self, film_graph, film_config):
        result = discover(film_graph, film_config)
        cover = sequential_cover(result.gfds)
        # equivalence: every removed GFD implied by the cover
        for removed in cover.removed:
            assert implies(cover.cover, removed)
        # minimality: nothing in the cover implied by the rest
        for index, gfd in enumerate(cover.cover):
            rest = cover.cover[:index] + cover.cover[index + 1:]
            assert not implies(rest, gfd)

    def test_cover_of_duplicate_set(self):
        cover = sequential_cover([PHI1, GFD(PHI1.pattern, PHI1.lhs, PHI1.rhs)])
        assert len(cover.cover) == 1
        assert cover.reduction_ratio == pytest.approx(0.5)

    def test_cover_of_empty(self):
        cover = sequential_cover([])
        assert cover.cover == []
        assert cover.reduction_ratio == 0
