"""Execution-backend tests: shared-memory lifecycle, fallbacks, the cap.

Covers the multiprocess plumbing the differential harness treats as a black
box: buffer export/attach round trips, stale-index export refusal, segment
cleanup after shutdown (name probing — an unlinked segment must not be
re-attachable), the pickle fallback transport, and the per-shard
``max_matches_per_pattern`` enforcement that keeps both engines in
agreement when the cap binds.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import DiscoveryConfig, discover, gfd_identity
from repro.graph import Graph
from repro.graph.index import GraphIndex
from repro.parallel import (
    MultiprocessBackend,
    ParallelDiscovery,
    SerialBackend,
    SharedIndexBuffers,
    discover_parallel,
    make_backend,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="platform lacks shared memory"
)


def _probe_segment(name: str):
    """Attach an existing segment by name (caller closes)."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def small_graph() -> Graph:
    graph = Graph()
    people = [
        graph.add_node("person", {"kind": "a" if i % 2 else "b", "year": 2000 + i % 3})
        for i in range(24)
    ]
    cities = [graph.add_node("city", {"kind": "c"}) for _ in range(8)]
    for i, person in enumerate(people):
        graph.add_edge(person, cities[i % len(cities)], "live_in")
        graph.add_edge(person, people[(i + 1) % len(people)], "like")
    return graph


def small_config(**overrides) -> DiscoveryConfig:
    defaults = dict(
        k=2, sigma=4, max_lhs_size=1, active_attributes=["kind", "year"]
    )
    defaults.update(overrides)
    return DiscoveryConfig(**defaults)


class TestBufferExport:
    def test_round_trip_preserves_arrays(self):
        graph = small_graph()
        index = graph.index()
        meta, arrays = index.export_buffers()
        rebuilt = GraphIndex.from_buffers(meta, arrays)
        assert rebuilt.detached and rebuilt.is_fresh()
        assert rebuilt.num_nodes == index.num_nodes
        assert rebuilt.num_edges == index.num_edges
        np.testing.assert_array_equal(
            rebuilt.node_label_codes, index.node_label_codes
        )
        np.testing.assert_array_equal(rebuilt.out_indptr, index.out_indptr)
        np.testing.assert_array_equal(
            rebuilt.nodes_with_label("person"), index.nodes_with_label("person")
        )
        for attr in index.attr_names:
            np.testing.assert_array_equal(
                rebuilt.attr_code_array(attr), index.attr_code_array(attr)
            )
        # value interning survives (code 0 re-anchors on this process's
        # MISSING sentinel)
        assert rebuilt.code_of_value == index.code_of_value
        # statistics compute detached (no backing graph needed)
        assert (
            rebuilt.statistics().edge_label_counts
            == index.statistics().edge_label_counts
        )
        assert (
            rebuilt.statistics().node_label_counts
            == index.statistics().node_label_counts
        )

    def test_stale_index_export_raises(self):
        graph = small_graph()
        index = graph.index()
        graph.add_node("person", {})
        assert not index.is_fresh()
        with pytest.raises(RuntimeError, match="stale"):
            index.export_buffers()

    def test_shared_buffers_attach_by_name_then_unlink(self):
        graph = small_graph()
        buffers = SharedIndexBuffers(graph.index())
        name = buffers.name
        probe = _probe_segment(name)  # attachable while alive
        probe.close()
        buffers.close()
        with pytest.raises(FileNotFoundError):
            _probe_segment(name)
        buffers.close()  # idempotent


class TestBackendLifecycle:
    def test_shutdown_unlinks_segment(self):
        graph = small_graph()
        index = graph.index()
        backend = MultiprocessBackend(2, index, ["kind", "year"])
        name = backend.shm_name
        assert name is not None
        probe = _probe_segment(name)
        probe.close()
        backend.shutdown()
        with pytest.raises(FileNotFoundError):
            _probe_segment(name)
        backend.shutdown()  # idempotent

    def test_engine_run_leaves_no_segment(self):
        graph = small_graph()
        config = small_config(parallel_backend="multiprocess")
        engine = ParallelDiscovery(graph, config, num_workers=2)
        tracked = {}
        original = SharedIndexBuffers.__init__

        def spy(self, index):
            original(self, index)
            tracked["name"] = self.name

        SharedIndexBuffers.__init__ = spy
        try:
            engine.run()
        finally:
            SharedIndexBuffers.__init__ = original
        assert "name" in tracked
        with pytest.raises(FileNotFoundError):
            _probe_segment(tracked["name"])

    def test_pickle_fallback_path(self):
        graph = small_graph()
        config = small_config()
        reference = {gfd_identity(g) for g in discover(graph, config).gfds}
        fallback_config = replace(
            config, parallel_backend="multiprocess", shared_memory=False
        )
        engine = ParallelDiscovery(graph, fallback_config, num_workers=2)
        assert engine.backend_name == "multiprocess"
        result = engine.run()
        assert {gfd_identity(g) for g in result.gfds} == reference

    def test_external_backend_reused_across_runs(self):
        graph = small_graph()
        config = small_config()
        reference = {gfd_identity(g) for g in discover(graph, config).gfds}
        backend = make_backend(
            "multiprocess", 2, graph, graph.index(),
            ["kind", "year"],
        )
        try:
            for _ in range(2):
                result, _ = discover_parallel(
                    graph, config, num_workers=2, backend=backend
                )
                assert {gfd_identity(g) for g in result.gfds} == reference
        finally:
            backend.shutdown()

    def test_multiprocess_requires_index(self):
        graph = small_graph()
        config = small_config(use_index=False, parallel_backend="multiprocess")
        with pytest.raises(ValueError, match="use_index"):
            ParallelDiscovery(graph, config, num_workers=2)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="parallel_backend"):
            small_config(parallel_backend="ray")
        graph = small_graph()
        with pytest.raises(ValueError, match="unknown parallel backend"):
            ParallelDiscovery(
                graph, small_config(), num_workers=2, backend="ray"
            )

    def test_default_backend_follows_config_and_env(self):
        import os

        expected = os.environ.get("REPRO_PARALLEL_BACKEND", "serial")
        engine = ParallelDiscovery(small_graph(), small_config(), num_workers=2)
        assert engine.backend_name == expected
        pinned = ParallelDiscovery(
            small_graph(),
            small_config(parallel_backend="serial"),
            num_workers=2,
        )
        assert pinned.backend_name == "serial"
        assert isinstance(
            make_backend("serial", 2, None, None, []), SerialBackend
        )


class TestMatchCapAgreement:
    """``max_matches_per_pattern`` per-shard enforcement (both engines)."""

    def _engines(self, graph, config):
        runs = {"seq": discover(graph, config)}
        runs["serial"], _ = discover_parallel(
            graph, config, num_workers=3, backend="serial"
        )
        runs["multiprocess"], _ = discover_parallel(
            graph, config, num_workers=3, backend="multiprocess"
        )
        return runs

    def test_engines_agree_when_cap_binds(self):
        graph = small_graph()
        config = small_config(max_matches_per_pattern=10)
        runs = self._engines(graph, config)
        fingerprints = {
            name: frozenset(gfd_identity(g) for g in result.gfds)
            for name, result in runs.items()
        }
        assert fingerprints["seq"] == fingerprints["serial"]
        assert fingerprints["seq"] == fingerprints["multiprocess"]
        # the cap did bind: truncated patterns were counted on every engine
        assert runs["seq"].stats.truncated_patterns > 0
        assert runs["serial"].stats.truncated_patterns > 0
        assert runs["multiprocess"].stats.truncated_patterns > 0

    def test_capped_run_is_subset_of_uncapped(self):
        graph = small_graph()
        uncapped = {
            gfd_identity(g)
            for g in discover(graph, small_config()).gfds
        }
        capped_result = discover(
            graph, small_config(max_matches_per_pattern=10)
        )
        capped = {gfd_identity(g) for g in capped_result.gfds}
        # truncation only suppresses rules; it never invents them
        assert capped <= uncapped

    def test_truncated_patterns_are_leaves(self):
        """A truncated pattern spawns no children on the sequential engine."""
        graph = small_graph()
        result = discover(graph, small_config(max_matches_per_pattern=10))
        tree = result.tree
        truncated = {
            id(node)
            for node in tree.all_nodes()
            if node.table is not None and node.table.truncated
        }
        assert truncated  # the cap did bind
        for node in tree.all_nodes():
            assert not any(id(parent) in truncated for parent in node.parents)


class TestWorkerToWorkerStaging:
    """Rebalanced pivot groups ship worker-to-worker, not through the master."""

    def _skewed_graph(self, num_workers: int = 3) -> Graph:
        """Hub pivots colocated on worker 0 so rebalancing must move groups."""
        graph = Graph()
        nodes = []
        for i in range(3 * num_workers):
            if i % num_workers == 0:
                nodes.append(graph.add_node("hub", {"kind": "h"}))
            else:
                nodes.append(
                    graph.add_node("person", {"kind": "a", "year": 2000})
                )
        hubs = [n for n in nodes if graph.node_label(n) == "hub"]
        people = [
            graph.add_node("person", {"kind": "ab"[i % 2], "year": 2000 + i % 3})
            for i in range(60)
        ]
        for i, person in enumerate(people):
            graph.add_edge(person, hubs[i % len(hubs)], "link")
            if i % 2:
                graph.add_edge(person, people[(i * 7 + 1) % 60], "like")
        return graph

    def test_plan_matches_array_rebalance_loads(self):
        """The summary-based plan lands the same loads and group homes as
        the master-side array rebalance it replaces."""
        from repro.parallel.balancer import (
            plan_pivot_group_moves,
            rebalance_pivot_group_arrays,
        )

        rng = np.random.default_rng(5)
        for _ in range(20):
            num_shards = int(rng.integers(2, 5))
            shards = []
            for worker in range(num_shards):
                rows = int(rng.integers(0, 40))
                pivots = rng.integers(0, 9, size=rows)
                shards.append(
                    np.stack([pivots, rng.integers(0, 100, size=rows)], axis=1)
                    if rows
                    else np.empty((0, 2), dtype=np.int64)
                )
            summaries = [
                np.unique(shard[:, 0], return_counts=True) for shard in shards
            ]
            moves, received = plan_pivot_group_moves(summaries)
            planned_loads = [int(s[1].sum()) for s in summaries]
            for (src, dst), (pivots, rows) in moves.items():
                planned_loads[src] -= rows
                planned_loads[dst] += rows
            rebalanced, _ = rebalance_pivot_group_arrays(shards, 0)
            actual_loads = [int(shard.shape[0]) for shard in rebalanced]
            assert planned_loads == actual_loads
            # pivot-disjointness: after applying the plan no pivot lives on
            # two shards
            homes = {}
            for worker, (pivots, counts) in enumerate(summaries):
                for pivot in pivots.tolist():
                    homes[pivot] = {worker}
            for (src, dst), (pivots, rows) in moves.items():
                for pivot in pivots:
                    homes[pivot] = {dst}
            assert all(len(workers) == 1 for workers in homes.values())

    def test_direct_shipping_keeps_rows_off_the_master(self):
        """With staging on, the skewed-join rebalance moves rows through
        shared memory: the ledger shows staged rows and zero fetches."""
        graph = self._skewed_graph()
        config = small_config(
            k=3, sigma=3, active_attributes=["kind", "year"]
        )
        results = {}
        ledgers = {}
        for direct in (True, False):
            run_config = replace(config, direct_shipping=direct)
            runner = ParallelDiscovery(
                graph, run_config, num_workers=3, backend="multiprocess"
            )
            backend = make_backend(
                "multiprocess", 3, graph, graph.index(), runner.gamma
            )
            try:
                runner = ParallelDiscovery(
                    graph, run_config, backend=backend
                )
                result = runner.run()
                results[direct] = {gfd_identity(g) for g in result.gfds}
                ledgers[direct] = backend.transfers.snapshot()
                staged_metric = sum(
                    w.items_staged for w in runner.cluster.workers
                )
                if direct:
                    assert backend.transfers.rows_staged > 0
                    assert staged_metric > 0
                else:
                    assert backend.transfers.rows_staged == 0
            finally:
                backend.shutdown()
        assert results[True] == results[False]
        # the fallback route fetches rows to the master; staging must not
        assert ledgers[False].rows_to_master > ledgers[True].rows_to_master
        assert ledgers[True].rows_to_master == 0
        # both routes ship the cold-start seeds; the fallback additionally
        # re-ships every fetched row back out, the staging route none
        assert (
            ledgers[False].rows_to_workers - ledgers[True].rows_to_workers
            == ledgers[False].rows_to_master
        )

    def test_no_segment_leak_after_staged_run(self):
        graph = self._skewed_graph()
        config = small_config(k=3, sigma=3, active_attributes=["kind", "year"])
        runner = ParallelDiscovery(
            graph, config, num_workers=3, backend="multiprocess"
        )
        runner.run()  # owned backend: shutdown inside run()
        # the index segment is gone; staging segments were per-exchange
        assert runner._backend is None


class TestGraphFreeAndIndexRefresh:
    def test_graph_free_multiprocess_backend(self):
        """Cover-phase workers need processes but no graph."""
        backend = make_backend("multiprocess", 2, None, None, [])
        try:
            assert backend.shm_name is None
            results = backend.run_unmetered(
                [(w, "drop_sigma", 0, {}) for w in range(2)]
            )
            assert results == [None, None]
        finally:
            backend.shutdown()

    def test_refresh_index_swaps_segment_and_keeps_state(self):
        graph = small_graph()
        index = graph.index()
        backend = MultiprocessBackend(2, index, ["kind", "year"])
        try:
            first_segment = backend.shm_name
            # park enforcement state worker-side
            from repro.pattern import Pattern

            pattern = Pattern(["person", "city"], [(0, 1, "live_in")], pivot=0)
            from repro.pattern.matcher import find_matches

            rows = np.asarray(
                list(find_matches(graph, pattern, index=index)), dtype=np.int64
            )
            from repro.gfd.literals import ConstantLiteral

            rules = [((ConstantLiteral(0, "kind", "a"),), None)]
            install = backend.run_unmetered(
                [
                    (0, "enforce_install", 7,
                     {"pattern": pattern, "matches": rows, "rules": rules}),
                ]
            )
            before = install[0][0][0]
            # mutate the graph, ship the new snapshot
            node = graph.add_node("person", {"kind": "a"})
            new_index = graph.index()
            backend.refresh_index(new_index)
            assert backend.shm_name != first_segment
            with pytest.raises(FileNotFoundError):
                _probe_segment(first_segment)
            # resident state survived the swap
            after = backend.run_unmetered([(0, "enforce", 7, {})])
            assert after[0][0][0] == before
        finally:
            backend.shutdown()
        if backend.shm_name is not None:
            with pytest.raises(FileNotFoundError):
                _probe_segment(backend.shm_name)
