"""Property tests for the pivot-disjoint sharding invariants of ParDis.

The parallel algorithm's integer-sum support aggregation is sound only if
every pivot's matches live on exactly one worker; these tests pin that
invariant through seeding, incremental joins and rebalancing.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.parallel import rebalance_pivot_groups
from repro.pattern import Extension, Pattern, extend_matches, find_matches


def _pivot_locations(shards, pivot_var):
    locations = {}
    for worker, shard in enumerate(shards):
        for match in shard:
            locations.setdefault(match[pivot_var], set()).add(worker)
    return locations


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), workers=st.integers(2, 6))
def test_extension_preserves_pivot_disjointness(seed, workers):
    rng = random.Random(seed)
    graph = Graph()
    for _ in range(14):
        graph.add_node(rng.choice("ab"))
    for _ in range(24):
        s, d = rng.randrange(14), rng.randrange(14)
        if s != d:
            graph.add_edge(s, d, rng.choice("ef"))
    base = Pattern(["a"])
    shards = [[] for _ in range(workers)]
    for v in graph.nodes_with_label("a"):
        shards[v % workers].append((v,))
    extension = Extension(src=0, dst=1, edge_label="e", new_node_label="b")
    extended = [
        extend_matches(graph, shard, extension) for shard in shards
    ]
    locations = _pivot_locations(extended, 0)
    assert all(len(where) == 1 for where in locations.values())
    # union equals from-scratch matching of the extended pattern
    big = Pattern(["a", "b"], [(0, 1, "e")])
    merged = {match for shard in extended for match in shard}
    assert merged == set(find_matches(graph, big))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_rebalance_keeps_disjointness_and_items(seed):
    rng = random.Random(seed)
    workers = rng.randint(2, 5)
    shards = [[] for _ in range(workers)]
    total = 0
    for pivot in range(rng.randint(1, 12)):
        group_size = rng.randint(1, 10)
        worker = rng.randrange(workers)
        for item in range(group_size):
            shards[worker].append((pivot, item))
            total += 1
    balanced, moved = rebalance_pivot_groups(shards, pivot_var=0)
    locations = _pivot_locations(balanced, 0)
    assert all(len(where) == 1 for where in locations.values())
    assert sum(len(shard) for shard in balanced) == total
    assert sum(moved.values()) <= total
